"""Fleet-wide profiling: fold one run's spans into flame + contention.

Where :func:`repro.obs.assemble.explain_trace` budgets ONE request,
:func:`build_profile` runs that exact partition over EVERY assembled
tree in a traced workload run and aggregates the result three ways:

* a **folded-stack flame profile** — each critical-path slice becomes
  one ``op;frame;...;[stage]`` stack keyed by the causal span chain,
  weighted by simulated microseconds; emitted as collapsed-stack text
  (:func:`render_folded`, flamegraph.pl-compatible integer values) and
  as an inline ASCII renderer (:func:`render_flame`);
* **per-stage totals** — the explain budget summed over all requests,
  with the ``cpu.*`` share split out of the vmmc stage so handler and
  DMA compute are visible separately (``PROFILE_STAGES``);
* **per-resource contention** — queueing delay vs service time,
  utilization, and time-weighted queue depth per registered resource,
  sourced from the metrics registry snapshot the engine attaches to
  traced reports, plus the top-k hottest spans per stage.

Conservation is by construction: the explain slices partition each
root interval exactly, and the engine tags each root span with its
dispatch ``arrival`` so open-loop queue wait (which precedes the root
span) is charged to queueing — per-request stage sums equal the
recorded completion-minus-arrival latency on the plain request path.

This module only CONSUMES spans — it never emits any, so it carries
no tracer guards (and is exempt from the span-guard audit the way
``obs/assemble.py`` is).  The one hook that runs inside the engine,
:func:`tag_root`, mutates an already-recorded span's data dict and is
called behind the engine's ``if traced:`` guard.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis import percentile
from ..sim.trace import Span
from .assemble import STAGE_ORDER, TraceTree, assemble_traces, explain_trace

__all__ = ["PROFILE_STAGES", "RequestProfile", "Profile", "build_profile",
           "render_folded", "render_flame", "tag_root"]

#: Profile stages, in report order: the explain budget's stages with
#: the CPU share of "vmmc" (``cpu.*`` categories: word stores, handler
#: compute, DMA programming) broken out as its own stage.
PROFILE_STAGES = ("library", "vmmc", "nic", "bus", "mesh", "cpu",
                  "queueing")

#: The folded-stack frame charged for open-loop dispatch-queue wait
#: (arrival to root-span start, before the client library runs).
DISPATCH_FRAME = "dispatch.wait"


def tag_root(client, arrival: Optional[float] = None,
             tenant: Optional[str] = None) -> None:
    """Tag the client's most recent root span for the profiler.

    Called by the workload engine (behind its ``if traced:`` guard)
    right after a request completes: stamps the dispatch ``arrival``
    time and the spec's ``tenant`` label into the root span's data
    dict, then clears the client's ``last_span`` slot so a later
    untagged request can never inherit a stale root.
    """
    span = getattr(client, "last_span", None)
    client.last_span = None
    if span is None:
        return
    tags = span.data if isinstance(span.data, dict) else {}
    if arrival is not None and arrival <= span.start:
        tags["arrival"] = arrival
    if tenant:
        tags["tenant"] = tenant
    span.data = tags


def _stage_of(segment) -> str:
    """A path segment's profile stage: the explain stage, with the
    ``cpu.*`` share of vmmc split out."""
    if segment.stage == "vmmc" and segment.category.startswith("cpu."):
        return "cpu"
    return segment.stage


def _hot_stage(category: str) -> str:
    """A raw span category's profile stage (for the hot-span table)."""
    if category.startswith("cpu."):
        return "cpu"
    if category.startswith("vmmc."):
        return "vmmc"
    if category.startswith("nic."):
        return "nic"
    if category.startswith("mesh."):
        return "mesh"
    if category == "bus" or category.startswith("bus."):
        return "bus"
    return "library"


def _frames(tree: TraceTree, sid: Optional[int]) -> List[str]:
    """Span categories from just below the root down to ``sid``."""
    frames: List[str] = []
    while sid is not None and sid in tree.by_sid and len(frames) < 64:
        span = tree.by_sid[sid]
        if tree.root is not None and sid == tree.root.sid:
            break
        frames.append(span.category)
        ref = tree.parent_ref(span)
        if ref == sid:
            break
        sid = ref
    frames.reverse()
    return frames


@dataclass
class RequestProfile:
    """One request's stage decomposition (one assembled tree)."""

    tid: int
    op: str
    tenant: str
    total_us: float                # dispatch wait + root span duration
    dispatch_us: float             # arrival -> root start (open loop)
    stages: Dict[str, float]       # PROFILE_STAGES -> microseconds


@dataclass
class Profile:
    """A whole run's time, folded: stages, stacks, contention."""

    requests: List[RequestProfile] = field(default_factory=list)
    stage_totals: Dict[str, float] = field(default_factory=dict)
    folded: Dict[str, float] = field(default_factory=dict)
    total_us: float = 0.0          # sum of per-request totals
    span_count: int = 0
    skipped_trees: int = 0         # trees without a closed root span
    problems: List[str] = field(default_factory=list)
    contention: List[dict] = field(default_factory=list)
    hot: Dict[str, List[tuple]] = field(default_factory=dict)
    now_us: float = 0.0            # registry snapshot time (0 = none)

    @property
    def conservation_error(self) -> float:
        """Relative gap between the stage totals and the request time.

        Zero by construction: the explain slices partition each root
        interval exactly and dispatch wait is charged to queueing; any
        drift here means the folding bookkeeping broke."""
        if self.total_us <= 0.0:
            return 0.0
        attributed = sum(self.stage_totals.values())
        return abs(attributed - self.total_us) / self.total_us

    def mean_us(self) -> float:
        """Mean per-request time (dispatch wait included)."""
        if not self.requests:
            return 0.0
        return self.total_us / len(self.requests)

    def stage_means(self) -> Dict[str, float]:
        """Per-request mean microseconds per stage."""
        n = len(self.requests) or 1
        return {s: self.stage_totals.get(s, 0.0) / n
                for s in PROFILE_STAGES}

    def p99_us(self) -> float:
        """p99 of the per-request totals (0 when empty)."""
        if not self.requests:
            return 0.0
        return percentile([r.total_us for r in self.requests], 99.0)

    def tail_requests(self) -> List[RequestProfile]:
        """The requests at or above the p99 total."""
        if not self.requests:
            return []
        cut = self.p99_us()
        return [r for r in self.requests if r.total_us >= cut]

    def tenants(self) -> Dict[str, List[RequestProfile]]:
        """Requests grouped by tenant tag ('' = untagged)."""
        groups: Dict[str, List[RequestProfile]] = {}
        for req in self.requests:
            groups.setdefault(req.tenant, []).append(req)
        return groups

    def report(self, top: int = 3, flame_lines: int = 24) -> str:
        """The deterministic text profile: stages, flame, contention."""
        lines = ["profile: %d requests, %d spans, %.2f us attributed "
                 "(conservation error %.4f%%)"
                 % (len(self.requests), self.span_count, self.total_us,
                    100.0 * self.conservation_error)]
        if self.skipped_trees:
            lines.append("  (%d trees without a closed root were skipped)"
                         % self.skipped_trees)
        n = len(self.requests) or 1
        rows = [["stage", "total us", "share", "us/request"]]
        for stage in PROFILE_STAGES:
            total = self.stage_totals.get(stage, 0.0)
            share = total / self.total_us if self.total_us > 0 else 0.0
            rows.append([stage, "%.2f" % total, "%.1f%%" % (100.0 * share),
                         "%.2f" % (total / n)])
        rows.append(["TOTAL", "%.2f" % self.total_us, "100.0%",
                     "%.2f" % self.mean_us()])
        lines.append("")
        lines.append("per-stage totals (queueing = dispatch wait + poll "
                     "gaps + remote queues):")
        lines.extend("  " + row for row in _format_rows(rows))
        lines.append("")
        lines.append("flame (folded causal stacks, hottest paths):")
        lines.append(render_flame(self, max_lines=flame_lines))
        if self.contention:
            lines.append("")
            lines.append("contention (service vs queueing per registered "
                         "resource):")
            crows = [["resource", "kind", "service us", "queueing us",
                      "util", "mean depth", "high", "count"]]
            for row in self.contention:
                crows.append([
                    row["name"], row["kind"],
                    "%.2f" % row["service_us"],
                    "%.2f" % row["queueing_us"],
                    "%.1f%%" % (100.0 * row["utilization"]),
                    "%.2f" % row["mean_depth"],
                    "%d" % row["high_water"],
                    "%d" % row["count"]])
            lines.extend("  " + row for row in _format_rows(crows))
        if self.hot:
            lines.append("")
            lines.append("hot spans (top %d by duration per stage):" % top)
            for stage in PROFILE_STAGES:
                for dur, cat, name, track, start in \
                        self.hot.get(stage, [])[:top]:
                    lines.append("  [%-8s] %9.2f us  %-12s %-18s %-14s "
                                 "@ %.1f"
                                 % (stage, dur, cat, name[:18], track,
                                    start))
        tenants = self.tenants()
        if any(tenants) and set(tenants) != {""}:
            lines.append("")
            lines.append("per-tenant stage means (us/request):")
            trows = [["tenant", "requests"] + list(PROFILE_STAGES)
                     + ["total"]]
            for tenant in sorted(tenants):
                reqs = tenants[tenant]
                n_t = len(reqs) or 1
                sums = {s: sum(r.stages.get(s, 0.0) for r in reqs)
                        for s in PROFILE_STAGES}
                trows.append([tenant or "(untagged)", "%d" % len(reqs)]
                             + ["%.2f" % (sums[s] / n_t)
                                for s in PROFILE_STAGES]
                             + ["%.2f" % (sum(r.total_us for r in reqs)
                                          / n_t)])
            lines.extend("  " + row for row in _format_rows(trows))
        if self.problems:
            lines.append("")
            lines.append("audit problems:")
            lines.extend("  " + p for p in self.problems)
        return "\n".join(lines)


def _format_rows(rows: Sequence[Sequence[str]]) -> List[str]:
    """Fixed-width column alignment (local copy: no bench import)."""
    widths = [max(len(row[col]) for row in rows)
              for col in range(len(rows[0]))]
    return ["  ".join(cell.rjust(width)
                      for cell, width in zip(row, widths))
            for row in rows]


def build_profile(spans: Sequence[Span],
                  metrics: Optional[dict] = None,
                  top_k: int = 3) -> Profile:
    """Fold a traced run's spans into a :class:`Profile`.

    ``spans`` is ``WorkloadReport.spans``; ``metrics`` is the report's
    registry snapshot (``{"now": ..., "entries": [...]}``) and feeds
    the contention table when present.
    """
    profile = Profile(span_count=len(spans))
    trees = assemble_traces(spans)
    for tid in sorted(trees):
        tree = trees[tid]
        profile.problems.extend(tree.problems)
        if tree.root is None or tree.root.end is None:
            profile.skipped_trees += 1
            continue
        result = explain_trace(tree, spans)
        tags = tree.root.data if isinstance(tree.root.data, dict) else {}
        tenant = str(tags.get("tenant", ""))
        arrival = tags.get("arrival")
        dispatch = (max(0.0, tree.root.start - arrival)
                    if arrival is not None else 0.0)
        op = tree.root.name or tree.root.category
        stages = {s: 0.0 for s in PROFILE_STAGES}
        stages["queueing"] += dispatch
        prefix = ("tenant:%s;" % tenant) if tenant else ""
        if dispatch > 0.0:
            key = "%s%s;%s;[queueing]" % (prefix, op, DISPATCH_FRAME)
            profile.folded[key] = profile.folded.get(key, 0.0) + dispatch
        for seg in result.segments:
            if seg.duration_us <= 0.0:
                continue
            stage = _stage_of(seg)
            stages[stage] += seg.duration_us
            frames = [op] + _frames(tree, seg.sid) + ["[%s]" % stage]
            key = prefix + ";".join(frames)
            profile.folded[key] = (profile.folded.get(key, 0.0)
                                   + seg.duration_us)
        total = dispatch + tree.duration_us
        profile.requests.append(RequestProfile(
            tid=tid, op=op, tenant=tenant, total_us=total,
            dispatch_us=dispatch, stages=stages))
        profile.total_us += total
        for stage, us in stages.items():
            profile.stage_totals[stage] = (
                profile.stage_totals.get(stage, 0.0) + us)

    hot: Dict[str, List[tuple]] = {}
    for span in spans:
        if span.end is None:
            continue
        dur = span.end - span.start
        if dur <= 0.0:
            continue
        stage = _hot_stage(span.category)
        hot.setdefault(stage, []).append(
            (dur, span.category, span.name, span.track, span.start))
    for stage, entries in hot.items():
        entries.sort(key=lambda e: (-e[0], e[4], e[1]))
        profile.hot[stage] = entries[:max(top_k, 1)]

    if metrics:
        now = float(metrics.get("now", 0.0))
        profile.now_us = now
        rows = []
        for entry in metrics.get("entries", []):
            count = int(entry.get("count", 0) or 0)
            if count <= 0:
                continue
            service = float(entry.get("busy_time", 0.0) or 0.0)
            queueing = float(entry.get("wait_time", 0.0) or 0.0)
            rows.append({
                "name": entry.get("name", "?"),
                "kind": entry.get("kind", "?"),
                "service_us": service,
                "queueing_us": queueing,
                "utilization": service / now if now > 0 else 0.0,
                "mean_depth": float(entry.get("mean_depth", 0.0) or 0.0),
                "high_water": int(entry.get("high_water", 0) or 0),
                "count": count,
            })
        rows.sort(key=lambda r: (-(r["service_us"] + r["queueing_us"]),
                                 r["name"]))
        profile.contention = rows
    return profile


def render_folded(profile: Profile) -> str:
    """The profile as collapsed-stack text, one ``stack count`` line
    per unique stack — integer nanoseconds, so standard flamegraph
    tooling ingests it unchanged."""
    lines = []
    for stack in sorted(profile.folded):
        value = int(round(profile.folded[stack] * 1000.0))
        if value > 0:
            lines.append("%s %d" % (stack, value))
    return "\n".join(lines)


def render_flame(profile: Profile, width: int = 30,
                 max_lines: int = 24) -> str:
    """An inline ASCII flame rendering of the folded stacks.

    A depth-indented trie of the stack frames, each with a ``#`` bar
    scaled to its share of total attributed time; deterministic order
    (time descending, then name)."""
    if not profile.folded or profile.total_us <= 0.0:
        return "  (no samples)"
    root: dict = {}
    for stack, us in profile.folded.items():
        node = root
        for frame in stack.split(";"):
            node = node.setdefault(frame, [0.0, {}])
            node[0] += us
            node = node[1]
    lines: List[str] = []
    total = profile.total_us

    def visit(children: dict, depth: int) -> None:
        entries = sorted(children.items(),
                         key=lambda kv: (-kv[1][0], kv[0]))
        for frame, (us, sub) in entries:
            if len(lines) >= max_lines:
                return
            share = us / total
            bar = "#" * max(1, int(round(share * width)))
            lines.append("  %-48s %s %5.1f%% %10.2f us"
                         % ("  " * depth + frame, bar.ljust(width),
                            100.0 * share, us))
            visit(sub, depth + 1)

    visit(root, 0)
    if len(lines) >= max_lines:
        lines.append("  ... (%d stacks folded)" % len(profile.folded))
    return "\n".join(lines)
