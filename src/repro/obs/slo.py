"""SLO objectives, burn-rate alerting, and the flight recorder.

An :class:`SloMonitor` watches the sampler's window stream against two
kinds of objectives:

* **latency** — the fraction of requests slower than the objective's
  threshold must stay under the error budget;
* **error rate** — the fraction of requests that failed must stay
  under the error budget.

Alerting uses the standard two-window burn-rate rule: an alert fires
when the budget is being consumed at more than ``burn_factor`` times
the sustainable rate over *both* a short and a long window — the short
window makes the alert fast, the long window keeps a single bad sample
from paging.  Everything is driven by simulated time and the
deterministic sample stream, so the same seed produces the same
alerts.

The :class:`FlightRecorder` keeps nothing during normal operation; on
``capture`` (an SLO breach, a ``VmmcTimeoutError`` surfacing as a
request error) it snapshots the last N spans and telemetry samples
into a bounded dump list for post-mortem inspection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Deque, List, Optional, Tuple

from collections import deque

__all__ = ["SloObjective", "SloAlert", "SloMonitor", "FlightRecorder"]


@dataclass(frozen=True)
class SloObjective:
    """One objective: bound the bad-request fraction by a budget."""

    name: str                 # "latency" | "errors" (report label)
    kind: str                 # "slow" | "error" — which window counter
    budget: float             # allowed bad fraction (e.g. 0.01)

    def __post_init__(self):
        if self.kind not in ("slow", "error"):
            raise ValueError("unknown SLO kind %r" % self.kind)
        if not 0.0 < self.budget < 1.0:
            raise ValueError("error budget must be in (0, 1)")


@dataclass
class SloAlert:
    """One burn-rate alert (the monitor keeps every one it raised)."""

    time_us: float
    objective: str
    burn_short: float
    burn_long: float

    def describe(self) -> str:
        """One human-readable line for reports and flight dumps."""
        return ("t=%.0f us  %s burn rate %.1fx short / %.1fx long"
                % (self.time_us, self.objective, self.burn_short,
                   self.burn_long))


class SloMonitor:
    """Burn-rate evaluation over the sampler's window stream.

    ``observe`` is called once per sampling tick with that tick's
    :class:`~repro.obs.timeseries.WindowSample`; it returns the name of
    a newly-breached objective (for flight-recorder triggering) or
    None.  ``short_windows``/``long_windows`` are tick counts.
    """

    def __init__(self, objectives: List[SloObjective],
                 short_windows: int = 4, long_windows: int = 24,
                 burn_factor: float = 4.0):
        if short_windows < 1 or long_windows < short_windows:
            raise ValueError("need 1 <= short_windows <= long_windows")
        self.objectives = list(objectives)
        self.short_windows = short_windows
        self.long_windows = long_windows
        self.burn_factor = burn_factor
        self.alerts: List[SloAlert] = []
        self.total = 0
        self.bad = {obj.name: 0 for obj in self.objectives}
        self._history: Deque[Tuple[int, dict]] = deque(maxlen=long_windows)

    @classmethod
    def from_thresholds(cls, latency_budget: float = 0.0,
                        error_budget: float = 0.0,
                        **kwargs) -> "SloMonitor":
        """Monitor with the standard latency and/or error objectives."""
        objectives = []
        if latency_budget > 0.0:
            objectives.append(SloObjective("latency", "slow", latency_budget))
        if error_budget > 0.0:
            objectives.append(SloObjective("errors", "error", error_budget))
        return cls(objectives, **kwargs)

    def observe(self, now_us: float, window) -> Optional[str]:
        """Fold one window sample in; returns a breached objective name."""
        bad = {"slow": window.slow, "error": window.errors}
        self.total += window.count
        for obj in self.objectives:
            self.bad[obj.name] += bad[obj.kind]
        self._history.append((window.count, bad))
        breached = None
        for obj in self.objectives:
            burn_s = self._burn(obj, self.short_windows)
            burn_l = self._burn(obj, self.long_windows)
            if burn_s >= self.burn_factor and burn_l >= self.burn_factor:
                self.alerts.append(SloAlert(now_us, obj.name, burn_s, burn_l))
                if breached is None:
                    breached = obj.name
        return breached

    def _burn(self, obj: SloObjective, windows: int) -> float:
        """Bad fraction over the last ``windows`` ticks, over the budget."""
        recent = list(self._history)[-windows:]
        count = sum(c for c, _ in recent)
        if count == 0:
            return 0.0
        bad = sum(b[obj.kind] for _, b in recent)
        return (bad / count) / obj.budget

    @property
    def breached(self) -> bool:
        return bool(self.alerts)

    def report(self) -> str:
        """Objective compliance plus every alert raised, as text."""
        lines = ["slo: %d objectives, %d requests observed, %d alerts"
                 % (len(self.objectives), self.total, len(self.alerts))]
        for obj in self.objectives:
            bad = self.bad[obj.name]
            frac = bad / self.total if self.total else 0.0
            verdict = "OK" if frac <= obj.budget else "VIOLATED"
            lines.append(
                "  %-8s budget %.3f%%  observed %.3f%% (%d/%d)  %s"
                % (obj.name, 100.0 * obj.budget, 100.0 * frac, bad,
                   self.total, verdict))
        for alert in self.alerts[:8]:
            lines.append("  ALERT " + alert.describe())
        if len(self.alerts) > 8:
            lines.append("  ... %d more alerts" % (len(self.alerts) - 8))
        return "\n".join(lines)


class FlightRecorder:
    """Bounded post-mortem dumps of recent spans and telemetry.

    ``capture`` snapshots the tracer's last ``span_limit`` spans and
    the sampler's last ``sample_limit`` samples under a reason string;
    at most ``max_dumps`` dumps are kept (first-come, so the dumps
    bracket the *earliest* incidents, which is what a post-mortem
    wants).
    """

    def __init__(self, tracer, sampler=None, span_limit: int = 200,
                 sample_limit: int = 32, max_dumps: int = 4):
        self.tracer = tracer
        self.sampler = sampler
        self.span_limit = span_limit
        self.sample_limit = sample_limit
        self.max_dumps = max_dumps
        self.dumps: List[dict] = []
        self.suppressed = 0

    def capture(self, reason: str, now_us: float) -> Optional[dict]:
        """Snapshot now; returns the dump (None when at capacity)."""
        if len(self.dumps) >= self.max_dumps:
            self.suppressed += 1
            return None
        spans = self.tracer.spans[-self.span_limit:]
        dump = {
            "reason": reason,
            "time_us": now_us,
            "spans": [{
                "sid": s.sid, "category": s.category, "name": s.name,
                "track": s.track, "start": s.start, "end": s.end,
                "data": s.data if isinstance(s.data, dict) else None,
            } for s in spans],
            "samples": (self.sampler.samples.last(self.sample_limit)
                        if self.sampler is not None else []),
        }
        self.dumps.append(dump)
        return dump

    def report(self) -> str:
        """One line per dump (what fired, when, how much was kept)."""
        if not self.dumps:
            return "flight recorder: no incidents"
        lines = ["flight recorder: %d dump(s)%s"
                 % (len(self.dumps),
                    ", %d suppressed" % self.suppressed
                    if self.suppressed else "")]
        for dump in self.dumps:
            lines.append("  t=%.0f us  %-16s  %d spans, %d samples"
                         % (dump["time_us"], dump["reason"],
                            len(dump["spans"]), len(dump["samples"])))
        return "\n".join(lines)
