"""Differential trace attribution: explain WHY two runs differ.

The paired record/replay machinery (docs/WORKLOADS.md) guarantees two
runs of the same recorded stream see byte-identical offered traffic,
op for op — so any latency difference between them is attributable to
the serving-stack knobs that changed.  :func:`diff_profiles` takes the
two runs' :class:`~repro.obs.profile.Profile`\\ s and splits the mean
(and p99-tail) latency delta into per-stage contributions, closing
against the measured end-to-end delta the same way ``explain``'s
budget closes against one request's latency: the per-run stage means
sum to the per-run measured means by construction, so the stage
deltas sum to the measured delta up to the histogram's bucket
quantization (the 5% acceptance gate in docs/OBSERVABILITY.md).

:func:`diff_bench_payloads` is the artifact-level companion: it takes
two validated bench documents (any schema the shared writer in
:mod:`repro.bench.report` knows) and reports what moved — knees and
per-point tails for capacity sweeps, event rates for simspeed,
convergence for anti-entropy — which is what the CI bench-history
step posts to the job summary.

Pure span/report consumers, like :mod:`repro.obs.profile`: nothing
here emits spans or runs on the simulation hot path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from .profile import PROFILE_STAGES, Profile

__all__ = ["StageDelta", "DiffResult", "diff_profiles",
           "diff_bench_payloads"]


@dataclass
class StageDelta:
    """One stage's contribution to the A->B latency delta (us/request)."""

    stage: str
    a_us: float
    b_us: float

    @property
    def delta_us(self) -> float:
        return self.b_us - self.a_us


@dataclass
class DiffResult:
    """The stage-attributed difference between two paired runs."""

    stages: List[StageDelta] = field(default_factory=list)
    tail_stages: List[StageDelta] = field(default_factory=list)
    a_requests: int = 0
    b_requests: int = 0
    #: Measured end-to-end mean latency per side (the workload
    #: report's histogram when available, else the profile mean).
    measured_a_us: float = 0.0
    measured_b_us: float = 0.0
    p99_a_us: float = 0.0
    p99_b_us: float = 0.0
    label: str = ""

    @property
    def measured_delta_us(self) -> float:
        return self.measured_b_us - self.measured_a_us

    @property
    def attributed_delta_us(self) -> float:
        return sum(s.delta_us for s in self.stages)

    @property
    def closure_error(self) -> float:
        """|attributed - measured| relative to the measured delta.

        Floored at 1 us of measured delta so a near-zero difference
        between two equivalent runs cannot blow the ratio up."""
        denom = max(abs(self.measured_delta_us), 1.0)
        return abs(self.attributed_delta_us - self.measured_delta_us) \
            / denom

    def report(self) -> str:
        """The attribution table plus the closure verdict."""
        lines = ["stage attribution (B - A, per-request means)%s"
                 % ((": " + self.label) if self.label else "")]
        rows = [["stage", "A us", "B us", "delta us", "share"]]
        total_delta = self.attributed_delta_us
        for entry in self.stages:
            share = (entry.delta_us / total_delta
                     if abs(total_delta) > 1e-12 else 0.0)
            rows.append([entry.stage, "%.2f" % entry.a_us,
                         "%.2f" % entry.b_us, "%+.2f" % entry.delta_us,
                         "%.0f%%" % (100.0 * share)])
        rows.append(["SUM", "%.2f" % sum(s.a_us for s in self.stages),
                     "%.2f" % sum(s.b_us for s in self.stages),
                     "%+.2f" % total_delta, ""])
        lines.extend("  " + row for row in _format_rows(rows))
        lines.append("measured mean: A %.2f us -> B %.2f us "
                     "(delta %+.2f us)"
                     % (self.measured_a_us, self.measured_b_us,
                        self.measured_delta_us))
        lines.append("closure: attributed %+.2f us vs measured %+.2f us "
                     "-> error %.2f%% [%s]"
                     % (self.attributed_delta_us, self.measured_delta_us,
                        100.0 * self.closure_error,
                        "OK" if self.closure_error <= 0.05
                        else "VIOLATED"))
        if self.p99_a_us or self.p99_b_us:
            lines.append("p99: A %.2f us -> B %.2f us (delta %+.2f us)"
                         % (self.p99_a_us, self.p99_b_us,
                            self.p99_b_us - self.p99_a_us))
            movers = sorted(self.tail_stages,
                            key=lambda s: (-abs(s.delta_us), s.stage))
            moved = ["%s %+.2f" % (s.stage, s.delta_us)
                     for s in movers if abs(s.delta_us) > 0.005]
            if moved:
                lines.append("p99 tail attribution (per tail request): "
                             + ", ".join(moved[:4]))
        return "\n".join(lines)


def _format_rows(rows) -> List[str]:
    widths = [max(len(row[col]) for row in rows)
              for col in range(len(rows[0]))]
    return ["  ".join(cell.rjust(width)
                      for cell, width in zip(row, widths))
            for row in rows]


def _stage_means(requests, stages=PROFILE_STAGES):
    n = len(requests) or 1
    return {s: sum(r.stages.get(s, 0.0) for r in requests) / n
            for s in stages}


def diff_profiles(a: Profile, b: Profile,
                  measured_a: Optional[float] = None,
                  measured_b: Optional[float] = None,
                  p99_a: Optional[float] = None,
                  p99_b: Optional[float] = None,
                  label: str = "") -> DiffResult:
    """Attribute the A->B latency delta to per-stage contributions.

    ``measured_*`` override the end-to-end means (pass the workload
    reports' histogram means so closure is scored against what the
    run actually recorded); they default to the profile means, which
    equal them exactly on the plain request path.
    """
    mean_a = _stage_means(a.requests)
    mean_b = _stage_means(b.requests)
    tail_a = _stage_means(a.tail_requests())
    tail_b = _stage_means(b.tail_requests())
    return DiffResult(
        stages=[StageDelta(s, mean_a[s], mean_b[s])
                for s in PROFILE_STAGES],
        tail_stages=[StageDelta(s, tail_a[s], tail_b[s])
                     for s in PROFILE_STAGES],
        a_requests=len(a.requests),
        b_requests=len(b.requests),
        measured_a_us=(measured_a if measured_a is not None
                       else a.mean_us()),
        measured_b_us=(measured_b if measured_b is not None
                       else b.mean_us()),
        p99_a_us=(p99_a if p99_a is not None else a.p99_us()),
        p99_b_us=(p99_b if p99_b is not None else b.p99_us()),
        label=label)


# ---------------------------------------------------------------- bench


def _pct(a: float, b: float) -> str:
    if a == 0.0:
        return "n/a" if b else "+0%"
    return "%+.1f%%" % (100.0 * (b - a) / a)


def _knee_line(title: str, a, b) -> str:
    if a is not None and b is not None:
        return "%s: A ~%.0f -> B ~%.0f ops/s (%s)" % (title, a, b,
                                                      _pct(a, b))
    return "%s: A %s -> B %s" % (
        title,
        "~%.0f ops/s" % a if a is not None else "no knee in range",
        "~%.0f ops/s" % b if b is not None else "no knee in range")


def _sweep_lines(side: str, a: dict, b: dict) -> List[str]:
    """Knee + per-point comparison for one CapacityResult payload."""
    lines = [_knee_line("knee%s" % (" (%s)" % side if side else ""),
                        a.get("knee_load"), b.get("knee_load"))]
    points_b = {pt["offered_load"]: pt for pt in b.get("points", [])}
    rows = [["offered", "thr A", "thr B", "d thr", "p99 A", "p99 B",
             "d p99"]]
    for pt in a.get("points", []):
        other = points_b.get(pt["offered_load"])
        if other is None:
            continue
        rows.append(["%.0f" % pt["offered_load"],
                     "%.0f" % pt["throughput"],
                     "%.0f" % other["throughput"],
                     _pct(pt["throughput"], other["throughput"]),
                     "%.1f" % pt["p99_us"],
                     "%.1f" % other["p99_us"],
                     _pct(pt["p99_us"], other["p99_us"])])
    if len(rows) > 1:
        lines.extend("  " + row for row in _format_rows(rows))
    else:
        lines.append("  (no offered loads in common)")
    return lines


def diff_bench_payloads(a: dict, b: dict) -> str:
    """What moved between two validated bench artifacts, as text.

    Both payloads must carry the same schema (validated by
    :func:`repro.bench.report.load_bench_json`); the comparison is
    schema-specific and A-relative.
    """
    schema_a, schema_b = a.get("schema"), b.get("schema")
    if schema_a != schema_b:
        return ("bench diff: schemas differ (A %r vs B %r) — "
                "nothing comparable" % (schema_a, schema_b))
    lines = ["bench diff: %s" % schema_a]
    if schema_a == "repro.bench.capacity/v1":
        lines.append("seeds: A %s, B %s; loads: A %s, B %s"
                     % (a.get("seed"), b.get("seed"),
                        a.get("loads"), b.get("loads")))
        if a.get("mode") != b.get("mode"):
            lines.append("modes differ (A %r vs B %r) — knees only"
                         % (a.get("mode"), b.get("mode")))
            for side, payload in (("A", a), ("B", b)):
                sweep = (payload if payload.get("mode") == "sweep"
                         else payload.get("mitigated", {}))
                lines.append("  %s knee: %s" % (
                    side,
                    "~%.0f ops/s" % sweep["knee_load"]
                    if sweep.get("knee_load") is not None
                    else "none in range"))
        elif a.get("mode") == "ab":
            lines.extend(_sweep_lines("baseline", a["baseline"],
                                      b["baseline"]))
            lines.extend(_sweep_lines("mitigated", a["mitigated"],
                                      b["mitigated"]))
        else:
            lines.extend(_sweep_lines("", a, b))
    elif schema_a == "repro.bench.simspeed/v1":
        for title, path, fmt in (
                ("dispatch events/s", ("dispatch", "events_per_s"),
                 "%.0f"),
                ("dispatch (calendar) events/s",
                 ("dispatch_calendar", "events_per_s"), "%.0f"),
                ("capacity wall s", ("capacity", "best_wall_s"),
                 "%.3f"),
                ("capacity seed-equivalent events/s",
                 ("capacity", "seed_equivalent_events_per_s"), "%.0f")):
            va = a.get(path[0], {}).get(path[1])
            vb = b.get(path[0], {}).get(path[1])
            if va is None or vb is None:
                continue
            lines.append("%s: A %s -> B %s (%s)"
                         % (title, fmt % va, fmt % vb, _pct(va, vb)))
    elif schema_a == "repro.antientropy.convergence/v1":
        ca, cb = a.get("convergence") or {}, b.get("convergence") or {}
        for key in ("rounds", "repaired", "divergent_last",
                    "divergent_high"):
            lines.append("%s: A %s -> B %s"
                         % (key, ca.get(key), cb.get(key)))
        lines.append("converged_at_us: A %s -> B %s"
                     % (ca.get("converged_at_us"),
                        cb.get("converged_at_us")))
        sa, sb = a.get("staleness") or {}, b.get("staleness") or {}
        if sa or sb:
            lines.append("stale reads: A %s/%s -> B %s/%s"
                         % (sa.get("stale"), sa.get("reads"),
                            sb.get("stale"), sb.get("reads")))
    else:
        lines.append("(no comparator for this schema; payloads "
                     "validated but not diffed)")
    return "\n".join(lines)
