"""Reconstruct cross-node causal trees from exported spans.

Every request traced under :mod:`repro.obs` leaves three kinds of
links in span data (see :mod:`repro.obs.context`):

* ``tid`` — which causal tree the span belongs to;
* ``cparent`` — same-process causal parent span id;
* ``xparent`` — cross-wire causal parent span id (the sender-side
  span whose frame/envelope carried the context).

Untagged spans (``cpu.store`` under an ``srpc.call``, ...) join a tree
through the tracer's ordinary same-track ``parent`` links: walking a
span's parent chain until it reaches a tagged span assigns it to that
span's tree.

:func:`assemble_traces` groups spans into :class:`TraceTree`\\ s;
:func:`audit` returns the invariant violations (the fault-sweep tests
assert it stays empty: exactly one root per tree, no orphans, no
duplicated deliveries from retransmits or reply replays);
:func:`explain_trace` computes the critical path through one tree and
the per-stage latency budget — library / VMMC / NIC / bus / mesh /
queueing — as an exact partition of the root span's interval, so the
stages sum to the measured request latency by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis import LatencyBudget, Stage
from ..sim.trace import Span

__all__ = ["TraceTree", "PathSegment", "ExplainResult",
           "assemble_traces", "audit", "explain_trace", "format_tree",
           "STAGE_ORDER"]

#: Budget stages, in report order.
STAGE_ORDER = ("library", "vmmc", "nic", "bus", "mesh", "queueing")

# Delivery-side categories: a retransmitted or replayed frame must
# never create a second one of these with the same (tid, xparent).
_DELIVERY_CATEGORIES = ("srpc.serve", "vrpc.serve", "kv.serve", "nx.crecv")

# Call-side categories whose *own* (not-deeper-covered) time is the
# request waiting — poll-sleep gaps, remote queueing — rather than
# local compute.
_WAIT_CATEGORIES = ("srpc.call", "vrpc.call", "nx.crecv", "sock.recv",
                    "kv.client")


def _classify(category: str) -> str:
    """A span category's budget stage (hardware overlays come later)."""
    if category.startswith(("cpu.", "vmmc.")):
        return "vmmc"
    if category.startswith("nic."):
        return "nic"
    if category.startswith("mesh."):
        return "mesh"
    if category == "bus" or category.startswith("bus."):
        return "bus"
    return "library"


def node_of(track: str) -> Optional[str]:
    """The mesh-node label of a track (``"n3.cpu.p1"`` -> ``"n3"``)."""
    head = track.split(".", 1)[0]
    if len(head) > 1 and head[0] == "n" and head[1:].isdigit():
        return head
    return None


def _tags(span: Span) -> dict:
    return span.data if isinstance(span.data, dict) else {}


@dataclass
class TraceTree:
    """One request's causal tree: the root span and everything under it."""

    tid: int
    root: Optional[Span]
    spans: List[Span] = field(default_factory=list)
    children: Dict[int, List[Span]] = field(default_factory=dict)
    problems: List[str] = field(default_factory=list)
    by_sid: Dict[int, Span] = field(default_factory=dict)
    _depths: Dict[int, int] = field(default_factory=dict)

    def nodes(self) -> List[str]:
        """Sorted mesh nodes this tree touches."""
        found = {node_of(s.track) for s in self.spans}
        found.discard(None)
        return sorted(found, key=lambda n: int(n[1:]))

    def parent_ref(self, span: Span) -> Optional[int]:
        """The causal parent sid: cparent > xparent > same-track parent."""
        tags = _tags(span)
        if "cparent" in tags:
            return tags["cparent"]
        if "xparent" in tags:
            return tags["xparent"]
        return span.parent

    def depth(self, span: Span) -> int:
        """Causal depth below the root (root = 0; unknown = 0)."""
        if not self._depths and self.root is not None:
            self._depths[self.root.sid] = 0
            frontier = [self.root]
            while frontier:
                parent = frontier.pop()
                d = self._depths[parent.sid] + 1
                for child in self.children.get(parent.sid, ()):
                    if child.sid not in self._depths:
                        self._depths[child.sid] = d
                        frontier.append(child)
        return self._depths.get(span.sid, 0)

    @property
    def duration_us(self) -> float:
        """The root span's measured latency (0 when open/missing)."""
        if self.root is None or self.root.end is None:
            return 0.0
        return self.root.end - self.root.start


def assemble_traces(spans: Sequence[Span]) -> Dict[int, TraceTree]:
    """Group spans into causal trees, keyed by trace id.

    Membership: spans tagged with ``tid``, plus untagged spans whose
    same-track parent chain reaches a tagged one.  Each tree's
    ``problems`` list records invariant violations (see :func:`audit`).
    """
    by_sid: Dict[int, Span] = {s.sid: s for s in spans}
    tid_of: Dict[int, Optional[int]] = {}
    for span in spans:
        tags = _tags(span)
        if "tid" in tags:
            tid_of[span.sid] = tags["tid"]
    for span in spans:
        if span.sid in tid_of:
            continue
        chain = []
        sid: Optional[int] = span.sid
        tid: Optional[int] = None
        while sid is not None and sid not in tid_of:
            chain.append(sid)
            parent = by_sid.get(sid)
            sid = parent.parent if parent is not None else None
            if sid in (c for c in chain):  # pragma: no cover - cycle guard
                sid = None
        if sid is not None:
            tid = tid_of[sid]
        for c in chain:
            tid_of[c] = tid

    trees: Dict[int, TraceTree] = {}
    members: Dict[int, List[Span]] = {}
    for span in spans:
        tid = tid_of.get(span.sid)
        if tid is not None:
            members.setdefault(tid, []).append(span)

    for tid, spans_of_tid in sorted(members.items()):
        spans_of_tid.sort(key=lambda s: s.sid)
        member_sids = {s.sid for s in spans_of_tid}
        tree = TraceTree(tid=tid, root=None, spans=spans_of_tid,
                         by_sid={s.sid: s for s in spans_of_tid})
        roots = []
        for span in spans_of_tid:
            tags = _tags(span)
            is_root = ("tid" in tags and "cparent" not in tags
                       and "xparent" not in tags
                       and span.parent not in member_sids)
            if is_root:
                roots.append(span)
                continue
            ref = tree.parent_ref(span)
            if ref is None or ref not in member_sids:
                tree.problems.append(
                    "trace %d: span #%d (%s) is an orphan (parent ref %r "
                    "not in tree)" % (tid, span.sid, span.category, ref))
                continue
            tree.children.setdefault(ref, []).append(span)
        if len(roots) == 1:
            tree.root = roots[0]
        elif not roots:
            tree.problems.append("trace %d: no root span" % tid)
        else:
            tree.root = roots[0]
            tree.problems.append(
                "trace %d: %d root spans (%s)"
                % (tid, len(roots),
                   ", ".join("#%d %s" % (r.sid, r.category) for r in roots)))
        for parent_sid in tree.children:
            tree.children[parent_sid].sort(key=lambda s: (s.start, s.sid))

        seen_delivery: Dict[Tuple[str, int], int] = {}
        for span in spans_of_tid:
            tags = _tags(span)
            if span.category in _DELIVERY_CATEGORIES and "xparent" in tags:
                key = (span.category, tags["xparent"])
                if key in seen_delivery:
                    tree.problems.append(
                        "trace %d: duplicated delivery %s for sender span "
                        "#%d (spans #%d and #%d)"
                        % (tid, span.category, tags["xparent"],
                           seen_delivery[key], span.sid))
                else:
                    seen_delivery[key] = span.sid
        trees[tid] = tree
    return trees


def audit(spans: Sequence[Span]) -> List[str]:
    """Every causal-tree invariant violation across all trees.

    Empty means: one root per trace id, every member span reaches its
    root, and no delivery-side span was duplicated by a retransmission
    or reply replay.
    """
    problems: List[str] = []
    for tid, tree in sorted(assemble_traces(spans).items()):
        problems.extend(tree.problems)
    return problems


@dataclass
class PathSegment:
    """One critical-path piece: who owned this slice of the request."""

    start: float
    end: float
    stage: str
    category: str
    name: str
    track: str
    sid: Optional[int]

    @property
    def duration_us(self) -> float:
        return self.end - self.start


@dataclass
class ExplainResult:
    """One explained request: tree, critical path, stage budget."""

    tree: TraceTree
    segments: List[PathSegment]
    budget: LatencyBudget

    @property
    def measured_us(self) -> float:
        return self.tree.duration_us

    @property
    def budget_error(self) -> float:
        """Relative gap between the stage sum and the measured latency."""
        if self.measured_us <= 0.0:
            return 0.0
        return abs(self.budget.total - self.measured_us) / self.measured_us


def explain_trace(tree: TraceTree,
                  all_spans: Sequence[Span]) -> ExplainResult:
    """Critical path and stage budget for one assembled tree.

    The root span's interval is partitioned into elementary slices at
    every member/hardware span boundary; each slice is attributed to
    the deepest covering member span, refined by the hardware overlay:

    * a ``cpu.*``/``vmmc.*`` member span covering the slice -> *vmmc*;
    * else a hardware span (``mesh.*`` > ``nic.*`` > ``bus``) active in
      the slice on an involved node -> that stage;
    * else a send/serve-side library span -> *library* (dispatch and
      marshaling compute);
    * else (only call-side spans cover it: poll-sleep gaps, remote
      queueing) -> *queueing*.

    Because the slices partition the root interval exactly, the stage
    totals sum to the measured request latency exactly.
    """
    if tree.root is None or tree.root.end is None:
        raise ValueError("trace %d has no closed root span" % tree.tid)
    t0, t1 = tree.root.start, tree.root.end
    if t1 <= t0:
        return ExplainResult(tree, [], LatencyBudget(
            "request trace %d stage budget" % tree.tid,
            [Stage(name, 0.0) for name in STAGE_ORDER]))

    involved = set(tree.nodes())

    def clipped(span: Span) -> Optional[Tuple[float, float]]:
        if span.end is None:
            return None
        s, e = max(span.start, t0), min(span.end, t1)
        return (s, e) if e > s else None

    member_iv: List[Tuple[float, float, Span]] = []
    for span in tree.spans:
        iv = clipped(span)
        if iv is not None:
            member_iv.append((iv[0], iv[1], span))
    hw_iv: List[Tuple[float, float, str]] = []
    for span in all_spans:
        stage = _classify(span.category)
        if stage not in ("nic", "mesh", "bus"):
            continue
        node = node_of(span.track)
        if stage != "mesh" and node is not None and node not in involved:
            continue
        iv = clipped(span)
        if iv is not None:
            hw_iv.append((iv[0], iv[1], stage))

    bounds = {t0, t1}
    for s, e, _ in member_iv:
        bounds.add(s)
        bounds.add(e)
    for s, e, _ in hw_iv:
        bounds.add(s)
        bounds.add(e)
    cuts = sorted(bounds)

    segments: List[PathSegment] = []
    totals = {name: 0.0 for name in STAGE_ORDER}
    for lo, hi in zip(cuts, cuts[1:]):
        if hi <= lo:
            continue
        covering = [(tree.depth(span), span.start, span.sid, span)
                    for s, e, span in member_iv if s <= lo and e >= hi]
        deepest = max(covering)[3] if covering else None
        vmmc_cover = [span for _, _, _, span in covering
                      if _classify(span.category) == "vmmc"]
        if vmmc_cover:
            span = max((tree.depth(s), s.start, s.sid, s)
                       for s in vmmc_cover)[3]
            stage = "vmmc"
        else:
            hw = {st for s, e, st in hw_iv if s <= lo and e >= hi}
            if hw:
                stage = ("mesh" if "mesh" in hw
                         else "nic" if "nic" in hw else "bus")
                span = deepest
            elif deepest is None:
                stage, span = "queueing", None
            elif deepest.category in _WAIT_CATEGORIES:
                stage, span = "queueing", deepest
            else:
                stage, span = "library", deepest
        totals[stage] += hi - lo
        if (segments and segments[-1].stage == stage
                and segments[-1].sid == (span.sid if span else None)
                and segments[-1].end == lo):
            segments[-1].end = hi
        else:
            segments.append(PathSegment(
                lo, hi, stage,
                span.category if span else "(gap)",
                span.name if span else "",
                span.track if span else "", span.sid if span else None))

    budget = LatencyBudget(
        "request trace %d stage budget" % tree.tid,
        [Stage(name, totals[name]) for name in STAGE_ORDER])
    return ExplainResult(tree, segments, budget)


def format_tree(tree: TraceTree, max_spans: int = 200) -> str:
    """The tree as indented text, children in start order."""
    lines: List[str] = []
    if tree.root is None:
        return "trace %d: no root" % tree.tid

    def visit(span: Span, depth: int) -> None:
        if len(lines) >= max_spans:
            return
        tags = _tags(span)
        link = ""
        if "xparent" in tags:
            link = "  <-wire- #%d" % tags["xparent"]
        lines.append("%s#%-5d %-12s %-18s %-16s %9.2f us%s"
                     % ("  " * depth, span.sid, span.category,
                        span.name[:18], span.track,
                        span.duration(span.start), link))
        for child in tree.children.get(span.sid, ()):
            visit(child, depth + 1)

    visit(tree.root, 0)
    if len(lines) >= max_spans:
        lines.append("... (%d spans total)" % len(tree.spans))
    return "\n".join(lines)
