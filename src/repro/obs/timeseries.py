"""Time-series telemetry: ring buffers, windowed tails, the sampler.

The sampler is a simulated process that wakes on a fixed interval and
records, into bounded ring buffers:

* per-resource utilization over the interval (busy-time deltas against
  the machine metrics registry);
* queue depths (high-water marks of registered stores);
* the windowed request-latency tail (p50/p99 over the requests that
  completed during the interval, fed by the workload engine).

Everything is sized up front and overwrites oldest-first, so telemetry
memory is bounded no matter how long the run is — the flight recorder
(:mod:`repro.obs.slo`) dumps these buffers when something goes wrong.

The sampler must be spawned *outside* the process list handed to
``run_processes`` (it never finishes); the engine does this and simply
abandons it when the measured processes complete.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from ..analysis import percentile

__all__ = ["RingBuffer", "WindowedLatency", "WindowSample",
           "TelemetrySampler"]


class RingBuffer:
    """A fixed-capacity FIFO that overwrites oldest entries."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("ring buffer capacity must be >= 1")
        self.capacity = capacity
        self.dropped = 0
        self._items: List[Any] = []
        self._head = 0

    def append(self, item: Any) -> None:
        """Add one item, evicting the oldest when full."""
        if len(self._items) < self.capacity:
            self._items.append(item)
        else:
            self._items[self._head] = item
            self._head = (self._head + 1) % self.capacity
            self.dropped += 1

    def items(self) -> List[Any]:
        """Contents, oldest first."""
        return self._items[self._head:] + self._items[:self._head]

    def last(self, n: int) -> List[Any]:
        """The most recent ``n`` items, oldest first."""
        items = self.items()
        return items[-n:] if n < len(items) else items

    def __len__(self) -> int:
        return len(self._items)


@dataclass
class WindowSample:
    """One sampling interval's request-latency summary."""

    time_us: float
    count: int
    errors: int
    slow: int            # requests over the SLO latency threshold
    p50_us: float
    p99_us: float


class WindowedLatency:
    """Per-interval latency collection the engine's hot path feeds.

    ``record`` appends to the current window; ``roll`` summarizes and
    resets it.  Exact percentiles are fine here: a window holds at most
    one interval's completions.
    """

    def __init__(self, slow_threshold_us: float = 0.0):
        self.slow_threshold_us = slow_threshold_us
        self._samples: List[float] = []
        self._errors = 0
        self._slow = 0

    def record(self, latency_us: float, error: bool = False) -> None:
        """Add one completed request to the current window."""
        self._samples.append(latency_us)
        if error:
            self._errors += 1
        if self.slow_threshold_us > 0.0 and latency_us > self.slow_threshold_us:
            self._slow += 1

    def roll(self, now_us: float) -> WindowSample:
        """Close the current window and start a fresh one."""
        samples, errors, slow = self._samples, self._errors, self._slow
        self._samples, self._errors, self._slow = [], 0, 0
        if samples:
            p50 = percentile(samples, 50.0)
            p99 = percentile(samples, 99.0)
        else:
            p50 = p99 = 0.0
        return WindowSample(time_us=now_us, count=len(samples),
                            errors=errors, slow=slow, p50_us=p50, p99_us=p99)


class TelemetrySampler:
    """The fixed-interval sampling process over one system.

    ``install()`` spawns the sampler on node 0 and returns the process
    handle (which the caller must *not* wait on).  Each tick snapshots
    the metrics registry, computes utilization deltas, rolls the latency
    window, and feeds the SLO monitor when one is attached.
    """

    def __init__(self, system, interval_us: float = 500.0,
                 capacity: int = 512, slow_threshold_us: float = 0.0,
                 slo=None, recorder=None):
        if interval_us <= 0.0:
            raise ValueError("sampling interval must be positive")
        self.system = system
        self.interval_us = interval_us
        self.window = WindowedLatency(slow_threshold_us)
        self.samples: RingBuffer = RingBuffer(capacity)
        self.latency: RingBuffer = RingBuffer(capacity)
        self.slo = slo
        self.recorder = recorder
        self.ticks = 0
        self._last_busy: Dict[str, float] = {}
        self._handle = None

    def install(self):
        """Spawn the sampling loop (caller must not wait on the handle)."""

        def sampler(_proc):
            sim = self.system.sim
            while True:
                yield sim.timeout(self.interval_us)
                self.sample_once()

        self._handle = self.system.spawn(0, sampler, name="obs-sampler")
        return self._handle

    def sample_once(self) -> WindowSample:
        """Take one sample now (also callable directly from tests)."""
        sim = self.system.sim
        self.ticks += 1
        snapshot = self.system.machine.metrics.snapshot(sim.now)
        util: Dict[str, float] = {}
        depths: Dict[str, int] = {}
        for entry in snapshot:
            name = entry.get("name", "?")
            busy = entry.get("busy_time")
            if busy is not None:
                prev = self._last_busy.get(name, 0.0)
                self._last_busy[name] = busy
                util[name] = max(0.0, busy - prev) / self.interval_us
            if "high_water" in entry:
                depths[name] = entry["high_water"]
        window = self.window.roll(sim.now)
        self.latency.append(window)
        self.samples.append({
            "time_us": sim.now,
            "util": util,
            "depths": depths,
            "window": window,
        })
        if self.slo is not None:
            breached = self.slo.observe(sim.now, window)
            if breached and self.recorder is not None:
                self.recorder.capture("slo:%s" % breached, sim.now)
        return window

    def busiest(self, n: int = 3) -> List[str]:
        """The ``n`` busiest resources in the most recent sample."""
        if not len(self.samples):
            return []
        util = self.samples.items()[-1]["util"]
        ranked = sorted(util.items(), key=lambda kv: (-kv[1], kv[0]))
        return ["%s=%.0f%%" % (name, 100.0 * frac)
                for name, frac in ranked[:n] if frac > 0.0]

    def report(self) -> str:
        """A deterministic multi-line telemetry summary."""
        windows: List[WindowSample] = [w for w in self.latency.items()]
        active = [w for w in windows if w.count]
        lines = ["telemetry: %d samples at %g us interval (%d dropped)"
                 % (self.ticks, self.interval_us, self.samples.dropped)]
        if active:
            worst = max(active, key=lambda w: w.p99_us)
            lines.append(
                "  windows with traffic %d/%d  worst window p99 %.2f us "
                "(t=%.0f us, n=%d)"
                % (len(active), len(windows), worst.p99_us, worst.time_us,
                   worst.count))
        busiest = self.busiest()
        if busiest:
            lines.append("  busiest resources (last window): %s"
                         % " ".join(busiest))
        return "\n".join(lines)
