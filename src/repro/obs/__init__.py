"""repro.obs — causal tracing, time-series telemetry, SLO monitoring.

Layered on :mod:`repro.sim.trace`: the transports tag their spans with
trace contexts (:mod:`~repro.obs.context`) carried in their wire
formats, :mod:`~repro.obs.assemble` reconstructs cross-node causal
trees with critical paths and stage budgets, and
:mod:`~repro.obs.timeseries`/:mod:`~repro.obs.slo` watch the system's
health over time.  See docs/OBSERVABILITY.md "Causal traces & SLOs".
"""

from .assemble import (
    ExplainResult,
    PathSegment,
    STAGE_ORDER,
    TraceTree,
    assemble_traces,
    audit,
    explain_trace,
    format_tree,
)
from .context import TRACE_EXT, TRACE_EXT_BYTES, pack_ctx, span_tags, unpack_ctx
from .diff import DiffResult, StageDelta, diff_bench_payloads, diff_profiles
from .profile import (
    PROFILE_STAGES,
    Profile,
    RequestProfile,
    build_profile,
    render_flame,
    render_folded,
    tag_root,
)
from .slo import FlightRecorder, SloAlert, SloMonitor, SloObjective
from .timeseries import RingBuffer, TelemetrySampler, WindowedLatency, WindowSample

__all__ = [
    "TRACE_EXT", "TRACE_EXT_BYTES", "pack_ctx", "unpack_ctx", "span_tags",
    "TraceTree", "PathSegment", "ExplainResult", "STAGE_ORDER",
    "assemble_traces", "audit", "explain_trace", "format_tree",
    "PROFILE_STAGES", "Profile", "RequestProfile", "build_profile",
    "render_flame", "render_folded", "tag_root",
    "DiffResult", "StageDelta", "diff_profiles", "diff_bench_payloads",
    "RingBuffer", "WindowedLatency", "WindowSample", "TelemetrySampler",
    "SloObjective", "SloAlert", "SloMonitor", "FlightRecorder",
]
