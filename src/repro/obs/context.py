"""Causal trace context: the two words every transport carries.

A *trace context* is ``(trace_id, parent_sid)``:

* ``trace_id`` — allocated by :meth:`repro.sim.trace.Tracer.new_trace_id`
  once per top-level request (one ``kv.client`` operation, one VRPC
  call from outside a request, ...).  Every span belonging to the
  request's causal tree carries it in its data under ``"tid"``.
* ``parent_sid`` — the span id of the causal parent.  Within one
  process the link is recorded as ``"cparent"`` (set from
  ``proc.trace_ctx`` at span creation); across a wire hop the receiver
  records the *sender-side* span id as ``"xparent"`` (read from the
  frame header / message envelope / cred bytes).

The root span of a tree is the one tagged with a ``tid`` but neither
parent key.  :mod:`repro.obs.assemble` reconstructs trees from these
three keys plus the tracer's ordinary same-track ``parent`` links.

Wire format: both words travel as :data:`TRACE_EXT` — two little-endian
uint32s, ``(trace_id, parent_sid)`` — appended to a frame only when the
machine-wide tracer was enabled at endpoint construction, so telemetry
off means byte-identical wires (the zero-regression contract).
"""

from __future__ import annotations

import struct
from typing import Optional, Tuple

__all__ = ["TRACE_EXT", "TRACE_EXT_BYTES", "pack_ctx", "unpack_ctx",
           "span_tags"]

#: The on-wire trace context: ``<II`` = (trace_id, parent_sid).
TRACE_EXT = struct.Struct("<II")
TRACE_EXT_BYTES = TRACE_EXT.size


def pack_ctx(ctx: Optional[Tuple[int, int]]) -> bytes:
    """``ctx`` as wire bytes; ``None`` packs as zeros (= no context)."""
    if ctx is None:
        return TRACE_EXT.pack(0, 0)
    return TRACE_EXT.pack(ctx[0] & 0xFFFFFFFF, ctx[1] & 0xFFFFFFFF)


def unpack_ctx(blob: bytes) -> Optional[Tuple[int, int]]:
    """Wire bytes back to a context; the all-zero encoding is ``None``."""
    tid, psid = TRACE_EXT.unpack(blob[:TRACE_EXT_BYTES])
    if tid == 0:
        return None
    return (tid, psid)


def span_tags(ctx: Optional[Tuple[int, int]], cross: bool = False) -> Optional[dict]:
    """The span-data dict linking a span under ``ctx``, or None.

    ``cross=True`` records the parent as an ``xparent`` (the parent
    span lives across a wire hop); otherwise ``cparent`` (same
    process).
    """
    if ctx is None:
        return None
    tid, psid = ctx
    return {"tid": tid, ("xparent" if cross else "cparent"): psid}
