"""shrimp-vmmc: a reproduction of 'Early Experience with Message-Passing
on the SHRIMP Multicomputer' (ISCA 1996).

The public surface, top-down:

* :mod:`repro.testbed` — build a system, coordinate processes
* :mod:`repro.vmmc` — the VMMC API (the paper's contribution)
* :mod:`repro.libs` — NX, SunRPC-compatible VRPC, stream sockets,
  specialized SHRIMP RPC, software collectives
* :mod:`repro.bench` — the figure-regeneration harnesses
* :mod:`repro.hardware` / :mod:`repro.kernel` / :mod:`repro.sim` — the
  simulated machine, OS, and the discrete-event substrate
* :mod:`repro.analysis` — analytic latency decompositions

Start with ``examples/quickstart.py`` or README.md.
"""

from .testbed import Rendezvous, make_system

__version__ = "1.0.0"

__all__ = ["Rendezvous", "make_system", "__version__"]
