"""The VMMC notification mechanism (Section 2.3).

'The notification mechanism is used to transfer control to a receiving
process...  It consists of a message transfer followed by an invocation
of a user-specified, user-level handler function.  The receiving process
can associate a separate handler function with each exported buffer, and
notifications only take effect when a handler has been specified.'

Implementation (as in the prototype): signals.  The NIC raises an
interrupt when both the packet's and the receiving page's interrupt
flags are set; the daemon's interrupt dispatch posts a signal to the
owning process; this module drains those signals and runs the per-buffer
user handlers, charging the (expensive) signal delivery cost — or the
projected active-message-style cost when ``fast`` is configured, for
the ablation benchmark.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..kernel.process import UserProcess
from ..kernel.signals import Signal
from .buffers import ExportedBuffer

__all__ = ["NotificationCenter"]


class NotificationCenter:
    """Per-endpoint notification state: handlers, blocking, dispatch."""

    def __init__(self, proc: UserProcess, fast: bool = False):
        self.proc = proc
        self.fast = fast
        self._by_export_id: Dict[int, ExportedBuffer] = {}
        self.dispatched = 0

    # -- registration -------------------------------------------------------
    def register(self, buffer: ExportedBuffer) -> None:
        """Track a buffer so its notifications dispatch here."""
        self._by_export_id[buffer.export_id] = buffer

    def unregister(self, buffer: ExportedBuffer) -> None:
        """Stop tracking a buffer (idempotent)."""
        self._by_export_id.pop(buffer.export_id, None)

    # -- dispatch ------------------------------------------------------------------
    def dispatch(self):
        """Run handlers for all deliverable notifications.

        Generator: charges one delivery cost per notification (the
        signal path), then invokes the buffer's handler if one is set —
        'notifications only take effect when a handler has been
        specified'.  Returns the list of (buffer, page, size) delivered.
        """
        costs = self.proc.config.costs
        per_delivery = (
            costs.notification_fast_delivery if self.fast else costs.signal_delivery
        )
        delivered: List[Tuple[ExportedBuffer, int, int]] = []
        for signal in self.proc.signals.drain():
            export_id, page, size = signal.payload
            buffer = self._by_export_id.get(export_id)
            if buffer is None or buffer.handler is None:
                continue  # no handler specified: the notification has no effect
            span = None
            if self.proc.tracer.enabled:
                span = self.proc.tracer.begin(
                    "vmmc.notify", "notify export %d" % export_id,
                    track=self.proc.trace_track,
                    data={"fast": self.fast, "bytes": size},
                )
            yield self.proc.sim.timeout(per_delivery)
            buffer.notifications_received += 1
            self.dispatched += 1
            buffer.handler(buffer, page, size)
            self.proc.tracer.end(span)
            delivered.append((buffer, page, size))
        return delivered

    def wait(self):
        """Suspend until a notification is deliverable, then dispatch.

        Generator; returns the dispatched list (possibly empty if the
        waking signal targeted a handler-less buffer).
        """
        yield self.proc.signals.wait()
        result = yield from self.dispatch()
        return result
