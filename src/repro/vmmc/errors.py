"""VMMC error types."""

from __future__ import annotations

from ..kernel.daemon import MappingError

__all__ = [
    "VmmcError",
    "VmmcAlignmentError",
    "VmmcStateError",
    "VmmcTransferError",
    "VmmcTimeoutError",
    "VmmcReadTimeoutError",
    "MappingError",
]


class VmmcError(Exception):
    """Base class for VMMC API errors."""


class VmmcAlignmentError(VmmcError):
    """Deliberate update requires word-aligned source and destination.

    'The SHRIMP hardware requires that the source and destination
    addresses for deliberate updates be word-aligned.'  Libraries work
    around this with a copy (the sockets two-copy fallback); the raw API
    refuses, as the hardware does.
    """


class VmmcStateError(VmmcError):
    """Operation on a destroyed mapping or otherwise invalid state."""


class VmmcTransferError(VmmcError):
    """A transfer failed in the hardware (e.g. the DU engine aborted it).

    Raised out of a blocking send instead of leaving the caller hung on
    a done event that will never fire; libraries with retransmission
    treat it as a retryable loss (docs/FAULTS.md).
    """


class VmmcTimeoutError(VmmcError):
    """A bounded wait on remote progress expired.

    The library-level recovery protocols raise subclasses of this when
    their retry budgets are exhausted; it always means the peer (or the
    fabric) stopped making progress, never a silent local hang.
    """


class VmmcReadTimeoutError(VmmcTimeoutError):
    """A one-sided remote read's completion stamp never arrived.

    The reader's bounded poll on its reply buffer expired: the request
    or a reply packet was lost (or denied by the target's Incoming Page
    Table, which drops rather than replies).  Callers treat it as a
    retryable loss and fall back to their RPC path (docs/ONESIDED.md).
    """
