"""VMMC error types."""

from __future__ import annotations

from ..kernel.daemon import MappingError

__all__ = ["VmmcError", "VmmcAlignmentError", "VmmcStateError", "MappingError"]


class VmmcError(Exception):
    """Base class for VMMC API errors."""


class VmmcAlignmentError(VmmcError):
    """Deliberate update requires word-aligned source and destination.

    'The SHRIMP hardware requires that the source and destination
    addresses for deliberate updates be word-aligned.'  Libraries work
    around this with a copy (the sockets two-copy fallback); the raw API
    refuses, as the hardware does.
    """


class VmmcStateError(VmmcError):
    """Operation on a destroyed mapping or otherwise invalid state."""
