"""Virtual memory-mapped communication — the paper's core contribution
(system S13 in DESIGN.md).

The VMMC model: import-export mappings between virtual address spaces,
two transfer strategies (deliberate update and automatic update),
sender-specified receive addresses with no explicit receive operation,
and notifications for control transfer.
"""

from ..kernel.daemon import AutomaticBinding, ImportedBuffer
from .api import VmmcEndpoint, attach
from .buffers import ExportedBuffer, NotificationHandler
from .errors import (
    MappingError,
    VmmcAlignmentError,
    VmmcError,
    VmmcReadTimeoutError,
    VmmcStateError,
    VmmcTimeoutError,
    VmmcTransferError,
)
from .notifications import NotificationCenter

__all__ = [
    "AutomaticBinding",
    "ExportedBuffer",
    "ImportedBuffer",
    "MappingError",
    "NotificationCenter",
    "NotificationHandler",
    "VmmcAlignmentError",
    "VmmcEndpoint",
    "VmmcError",
    "VmmcReadTimeoutError",
    "VmmcStateError",
    "VmmcTimeoutError",
    "VmmcTransferError",
    "attach",
]
