"""The VMMC API: what user-level libraries program against.

This is the 'thin layer library that implements the VMMC API, provides
direct access to the network for data transfers between user processes,
and handles communication with the SHRIMP daemon'.

One :class:`VmmcEndpoint` per user process.  The model's calls
(Section 2):

* :meth:`export` / :meth:`unexport` — receive-buffer lifecycle
* :meth:`import_buffer` / :meth:`unimport` — sender-side mapping
* :meth:`send` — blocking deliberate update (explicit transfer)
* :meth:`bind` / :meth:`unbind` — automatic-update binding, after which
  ordinary stores (``proc.write``) propagate with no send call
* notifications — per-buffer handlers, block/unblock, wait

All methods are generator functions: the calling process pays the time.
Data transfer never crosses the kernel; mapping setup and notification
mask changes do.
"""

from __future__ import annotations

from typing import List, Optional, Set

import zlib

from ..hardware.config import CacheMode
from ..hardware.router.packet import READ_REPLY_HEADER, encode_read_request
from ..kernel.daemon import AutomaticBinding, ImportedBuffer, ShrimpDaemon
from ..kernel.process import UserProcess
from ..kernel.system import ShrimpSystem
from .buffers import ExportedBuffer, NotificationHandler
from .errors import (VmmcAlignmentError, VmmcReadTimeoutError,
                     VmmcStateError, VmmcTransferError)
from .notifications import NotificationCenter

__all__ = ["VmmcEndpoint", "attach"]


class VmmcEndpoint:
    """A process's handle on the VMMC layer."""

    def __init__(self, system: ShrimpSystem, proc: UserProcess,
                 fast_notifications: bool = False):
        self.system = system
        self.proc = proc
        self.daemon: ShrimpDaemon = system.daemons[proc.node.node_id]
        self.notifications = NotificationCenter(proc, fast=fast_notifications)
        proc.vmmc = self
        self.sends = 0
        self.bytes_sent = 0
        self.reads = 0
        self.bytes_read = 0
        self._read_seq = 0

    # ------------------------------------------------------------------
    # Buffer allocation convenience
    # ------------------------------------------------------------------
    def alloc_buffer(self, nbytes: int,
                     cache_mode: CacheMode = CacheMode.WRITE_THROUGH) -> int:
        """Allocate page-rounded communication memory; returns its vaddr.

        Communication buffers default to write-through caching, as in
        the paper's experiments ('with both sender's and receiver's
        memory cached write-through').
        """
        page = self.proc.config.page_size
        rounded = -(-nbytes // page) * page
        return self.proc.space.mmap(rounded, cache_mode=cache_mode)

    # ------------------------------------------------------------------
    # Import-export mappings (Section 2.1)
    # ------------------------------------------------------------------
    def export(
        self,
        vaddr: int,
        nbytes: int,
        allow_nodes: Optional[Set[int]] = None,
        handler: Optional[NotificationHandler] = None,
    ):
        """Export a receive buffer; returns an :class:`ExportedBuffer`.

        ``handler`` (if given) becomes the buffer's notification handler
        and enables the receiver-side interrupt flag on its pages.
        """
        span = None
        if self.proc.tracer.enabled:
            span = self.proc.tracer.begin(
                "vmmc.export", "export %dB" % nbytes,
                track=self.proc.trace_track, data={"bytes": nbytes},
            )
        try:
            record = yield from self.daemon.export(
                self.proc, vaddr, nbytes,
                allow_nodes=allow_nodes,
                notify=handler is not None,
            )
        finally:
            # finally: a fault-raised timeout must not leak an open span.
            self.proc.tracer.end(span)
        buffer = ExportedBuffer(record=record, handler=handler)
        if handler is not None:
            self.notifications.register(buffer)
        return buffer

    def export_new(self, nbytes: int, **kwargs):
        """Allocate page-rounded memory and export it in one call."""
        page = self.proc.config.page_size
        rounded = -(-nbytes // page) * page
        vaddr = self.alloc_buffer(rounded)
        buffer = yield from self.export(vaddr, rounded, **kwargs)
        return buffer

    def unexport(self, buffer: ExportedBuffer):
        """Destroy an export (waits for pending deliveries)."""
        if not buffer.active:
            raise VmmcStateError("buffer already unexported")
        self.notifications.unregister(buffer)
        yield from self.daemon.unexport(self.proc, buffer.record)

    def import_buffer(self, remote_node: int, export_id: int):
        """Import a remote export; returns an :class:`ImportedBuffer`."""
        span = None
        if self.proc.tracer.enabled:
            span = self.proc.tracer.begin(
                "vmmc.import", "import n%d/%d" % (remote_node, export_id),
                track=self.proc.trace_track,
            )
        try:
            imported = yield from self.daemon.import_buffer(
                self.proc, remote_node, export_id)
        finally:
            self.proc.tracer.end(span)
        return imported

    def unimport(self, imported: ImportedBuffer):
        """Destroy an import (waits for pending sends through it)."""
        yield from self.daemon.unimport(self.proc, imported)

    # ------------------------------------------------------------------
    # Deliberate update (Section 2.2)
    # ------------------------------------------------------------------
    def send(
        self,
        imported: ImportedBuffer,
        local_vaddr: int,
        nbytes: int,
        offset: int = 0,
        notify: bool = False,
    ):
        """Blocking deliberate-update send.

        Transfers ``nbytes`` from the caller's memory at ``local_vaddr``
        into the imported buffer at ``offset``.  Returns when the source
        data has been read out (safe to reuse); delivery completes
        asynchronously, in order.  With ``notify=True`` the final packet
        carries the sender-specified interrupt flag.
        """
        word = self.proc.config.word_size
        if local_vaddr % word != 0:
            raise VmmcAlignmentError(
                "deliberate-update source %#x is not word-aligned" % local_vaddr
            )
        if offset % word != 0:
            raise VmmcAlignmentError(
                "deliberate-update destination offset %d is not word-aligned" % offset
            )
        if not imported.active:
            raise VmmcStateError("send through a destroyed import")
        if nbytes <= 0:
            raise ValueError("send size must be positive")
        if offset + nbytes > imported.nbytes:
            raise ValueError(
                "send of %d bytes at offset %d exceeds the %d-byte buffer"
                % (nbytes, offset, imported.nbytes)
            )
        # User-level bookkeeping, then the two decoded EISA accesses of
        # the transfer-initiation sequence.
        costs = self.proc.config.costs
        tracer = self.proc.tracer
        span = None
        if tracer.enabled:
            span = tracer.begin(
                "vmmc.send", "send %dB" % nbytes, track=self.proc.trace_track,
                data={"bytes": nbytes},
            )
        try:
            yield self.proc.sim.timeout(costs.vmmc_send_call)
            segments = self.proc.space.translate(local_vaddr, nbytes,
                                                 write=False)
            yield self.proc.sim.timeout(self.proc.node.eisa.pio_cost(2))
            done = self.proc.node.nic.initiate_deliberate_update(
                src_segments=segments,
                opt_base=imported.opt_base,
                offset=offset,
                size=nbytes,
                interrupt=notify,
            )
            self.sends += 1
            self.bytes_sent += nbytes
            yield done
        finally:
            # finally: a hardened caller catches fault-raised timeouts
            # and retries; the abandoned attempt must still close its
            # span or the span-balance audit flags a leak.
            tracer.end(span)

    def send_nonblocking(
        self,
        imported: ImportedBuffer,
        local_vaddr: int,
        nbytes: int,
        offset: int = 0,
        notify: bool = False,
    ):
        """Non-blocking deliberate-update send.

        Returns (after only the initiation sequence) an event that fires
        when the DU engine has read the source out of memory — until
        then the source buffer must not be modified, or the transfer
        picks up the new bytes ('the ordering guarantees are a bit more
        complicated when the non-blocking... send operation is used';
        none of the paper's libraries use it, but the hardware offers
        it).  Delivery remains in order with other sends.
        """
        word = self.proc.config.word_size
        if local_vaddr % word != 0 or offset % word != 0:
            raise VmmcAlignmentError("non-blocking send must be word-aligned")
        if not imported.active:
            raise VmmcStateError("send through a destroyed import")
        if nbytes <= 0 or offset + nbytes > imported.nbytes:
            raise ValueError("bad non-blocking send size/offset")
        costs = self.proc.config.costs
        yield self.proc.sim.timeout(costs.vmmc_send_call)
        segments = self.proc.space.translate(local_vaddr, nbytes, write=False)
        yield self.proc.sim.timeout(self.proc.node.eisa.pio_cost(2))
        done = self.proc.node.nic.initiate_deliberate_update(
            src_segments=segments,
            opt_base=imported.opt_base,
            offset=offset,
            size=nbytes,
            interrupt=notify,
        )
        self.sends += 1
        self.bytes_sent += nbytes
        return done

    def wait_send(self, done_event):
        """Block until a non-blocking send's source has been read."""
        yield done_event

    # ------------------------------------------------------------------
    # One-sided remote read (docs/ONESIDED.md)
    # ------------------------------------------------------------------
    def read_remote(
        self,
        imported: ImportedBuffer,
        offset: int,
        nbytes: int,
        reply_vaddr: int,
        timeout_us: float = 200.0,
    ):
        """One-sided read of an imported buffer — no remote CPU involved.

        Emits a READ_REQUEST descriptor naming the remote physical range
        and a local *exported* reply buffer; the target NIC DMAs the data
        back as deliberate-update packets (data first, completion header
        last) while the remote CPU stays out of the loop.  Blocks polling
        the completion header; returns the payload bytes.

        The read must not cross a remote page boundary (imported frames
        need not be physically contiguous), and header plus data must fit
        one local page of the reply buffer.  Raises
        :class:`VmmcReadTimeoutError` if the completion stamp does not
        arrive within ``timeout_us`` (lost or IPT-denied request — the
        target drops rather than replies), and
        :class:`VmmcTransferError` on a reply that fails its CRC or
        length check (e.g. a late stale reply interleaving with this
        one's data).
        """
        page = self.proc.config.page_size
        if not imported.active:
            raise VmmcStateError("read through a destroyed import")
        if nbytes <= 0:
            raise ValueError("read size must be positive")
        if offset < 0 or offset + nbytes > imported.nbytes:
            raise ValueError(
                "read of %d bytes at offset %d exceeds the %d-byte buffer"
                % (nbytes, offset, imported.nbytes)
            )
        if (offset % page) + nbytes > page:
            raise VmmcAlignmentError(
                "one-sided read must not cross a remote page boundary"
            )
        header_size = READ_REPLY_HEADER.size
        reply_segments = self.proc.space.translate(
            reply_vaddr, header_size + nbytes, write=True)
        if len(reply_segments) != 1:
            raise VmmcAlignmentError(
                "reply header plus data must fit one page of the reply buffer"
            )
        reply_paddr = reply_segments[0][0]
        if not self.proc.node.nic.ipt.is_enabled(reply_paddr // page):
            raise VmmcStateError(
                "the reply buffer must be exported before one-sided reads"
            )
        src_paddr = (imported.remote_frames[offset // page] * page
                     + offset % page)
        costs = self.proc.config.costs
        tracer = self.proc.tracer
        span = None
        if tracer.enabled:
            data = {"bytes": nbytes}
            ctx = self.proc.trace_ctx
            if ctx is not None:
                data["tid"] = ctx[0]
                data["cparent"] = ctx[1]
            span = tracer.begin(
                "vmmc.read", "read %dB" % nbytes,
                track=self.proc.trace_track, data=data,
            )
        try:
            yield self.proc.sim.timeout(costs.vmmc_send_call)
            self._read_seq += 1
            seq = self._read_seq
            ctx = self.proc.trace_ctx if span is not None else None
            descriptor = encode_read_request(
                seq, src_paddr, nbytes, reply_paddr,
                trace_id=ctx[0] if ctx is not None else 0,
                parent_sid=span.sid if span is not None else 0,
            )
            # The initiation sequence: two programmed-I/O accesses — a
            # doorbell write of the descriptor's address plus the status
            # read-back — and the NIC fetches the descriptor by DMA.
            yield self.proc.sim.timeout(self.proc.node.eisa.pio_cost(2))
            self.proc.node.nic.packetizer.request_emit(
                imported.remote_node, descriptor)
            deadline = self.proc.sim.now + timeout_us

            def _completed(stamp: bytes) -> bool:
                return READ_REPLY_HEADER.unpack(stamp)[0] == seq

            stamp = yield from self.proc.poll(
                reply_vaddr, header_size, _completed, deadline)
            if stamp is None:
                raise VmmcReadTimeoutError(
                    "one-sided read of %d bytes from node %d timed out "
                    "after %.1f us" % (nbytes, imported.remote_node,
                                       timeout_us)
                )
            _seq, length, crc, status = READ_REPLY_HEADER.unpack(stamp)
            if status != 0 or length != nbytes:
                raise VmmcTransferError(
                    "one-sided read reply malformed (status %d, %d/%d bytes)"
                    % (status, length, nbytes)
                )
            payload = yield from self.proc.read(
                reply_vaddr + header_size, length)
            if zlib.crc32(payload) & 0xFFFFFFFF != crc:
                raise VmmcTransferError(
                    "one-sided read reply of %d bytes failed its CRC"
                    % length
                )
            self.reads += 1
            self.bytes_read += length
            return payload
        finally:
            # finally: callers retry typed failures; the abandoned
            # attempt must still close its span (span-balance audit).
            tracer.end(span)

    # ------------------------------------------------------------------
    # Automatic update (Section 2.2)
    # ------------------------------------------------------------------
    def bind(
        self,
        local_vaddr: int,
        imported: ImportedBuffer,
        nbytes: Optional[int] = None,
        offset: int = 0,
        combining: bool = True,
        use_timer: bool = True,
        notify: bool = False,
        timer_us: Optional[float] = None,
    ):
        """Create an automatic-update binding (page-granular).

        After this, ordinary stores to the bound range propagate to the
        remote buffer — 'eliminating the need for an explicit send
        operation'.  AU has no word-alignment restriction.  ``timer_us``
        configures this binding's combining-flush timer (None = machine
        default); single-burst control pages use a short timer.
        """
        span = None
        if self.proc.tracer.enabled:
            span = self.proc.tracer.begin(
                "vmmc.bind", "bind %sB" % (nbytes if nbytes is not None else "all"),
                track=self.proc.trace_track,
            )
        binding = yield from self.daemon.bind_automatic(
            self.proc, local_vaddr, imported,
            nbytes=nbytes, offset=offset,
            combining=combining, use_timer=use_timer,
            dest_interrupt=notify, timer_us=timer_us,
        )
        self.proc.tracer.end(span)
        return binding

    def unbind(self, binding: AutomaticBinding):
        """Remove an automatic-update binding (drains first)."""
        yield from self.daemon.unbind_automatic(self.proc, binding)

    def flush_combining(self) -> None:
        """Force out any open combined AU packet (zero-cost hint).

        User code normally relies on the OPT timer or a non-consecutive
        write; tests and latency-critical paths may flush explicitly.
        """
        self.proc.node.nic.packetizer.flush()

    # ------------------------------------------------------------------
    # Notifications (Section 2.3)
    # ------------------------------------------------------------------
    def set_handler(self, buffer: ExportedBuffer, handler: Optional[NotificationHandler]):
        """Install/replace/remove the handler of an exported buffer.

        Changing handler presence flips the pages' interrupt status bits
        (a kernel crossing) — the polling/blocking switch of Section 6.
        """
        had = buffer.handler is not None
        buffer.handler = handler
        has = handler is not None
        if has:
            self.notifications.register(buffer)
        else:
            self.notifications.unregister(buffer)
        if had != has:
            yield from self.system.kernels[self.proc.node.node_id].sys_set_notification(
                self.proc, buffer.record.frames, has
            )

    def block_notifications(self):
        """Defer handler invocation; notifications queue meanwhile."""
        yield from self.system.kernels[self.proc.node.node_id].sys_sigblock(self.proc)

    def unblock_notifications(self):
        """Re-enable delivery, then dispatch anything queued."""
        yield from self.system.kernels[self.proc.node.node_id].sys_sigunblock(self.proc)
        delivered = yield from self.notifications.dispatch()
        return delivered

    def dispatch_notifications(self):
        """Run handlers for any pending (unblocked) notifications."""
        delivered = yield from self.notifications.dispatch()
        return delivered

    def wait_notification(self):
        """Suspend until a notification arrives, then dispatch it."""
        delivered = yield from self.notifications.wait()
        return delivered


def attach(system: ShrimpSystem, proc: UserProcess, **kwargs) -> VmmcEndpoint:
    """Attach a VMMC endpoint to a user process."""
    return VmmcEndpoint(system, proc, **kwargs)
