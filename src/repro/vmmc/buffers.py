"""User-facing buffer handles of the VMMC API.

:class:`ExportedBuffer` wraps the daemon's export record with the
exporting process's view (virtual address, handler slot);
:class:`~repro.kernel.daemon.ImportedBuffer` is re-exported as the
import-side handle (it is already user-shaped).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..kernel.daemon import ExportRecord, ImportedBuffer

__all__ = ["ExportedBuffer", "ImportedBuffer", "NotificationHandler"]

# handler(export, offset_page, size) — runs at user level when a
# notification for the buffer is delivered.  Handlers are plain
# callbacks (set a flag, bump a counter); the paper's handlers do the
# same through the signal mechanism.
NotificationHandler = Callable[["ExportedBuffer", int, int], None]


@dataclass
class ExportedBuffer:
    """The exporting process's handle on one of its receive buffers."""

    record: ExportRecord
    handler: Optional[NotificationHandler] = None
    notifications_received: int = 0

    @property
    def export_id(self) -> int:
        return self.record.export_id

    @property
    def vaddr(self) -> int:
        return self.record.vaddr

    @property
    def nbytes(self) -> int:
        return self.record.nbytes

    @property
    def node_id(self) -> int:
        return self.record.node_id

    @property
    def active(self) -> bool:
        return self.record.active

    def address_of(self, offset: int) -> int:
        """Virtual address of a byte offset within the buffer."""
        if not 0 <= offset < self.nbytes:
            raise ValueError("offset %d outside buffer of %d bytes" % (offset, self.nbytes))
        return self.vaddr + offset
