"""SHRIMP-specific operating system calls.

The daemons 'call SHRIMP-specific operating system calls to manage
receive buffer memory and to influence node physical memory management'.
This module is that syscall surface: per-node kernel services that
manipulate the NIC page tables and per-page attributes on behalf of
trusted callers, each charging the kernel-crossing cost.

Everything here is off the data path — VMMC's whole point is that once
mappings exist, sends and receives never enter the kernel.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from ..hardware.config import CacheMode, MachineConfig
from ..hardware.memory import FrameAllocator
from ..hardware.node import Node
from ..sim import Simulator
from .process import UserProcess
from .vm import AddressSpace

__all__ = ["KernelServices"]


class KernelServices:
    """The kernel of one node, as seen by daemons and the VMMC layer."""

    def __init__(self, node: Node):
        self.node = node
        self.sim: Simulator = node.sim
        self.config: MachineConfig = node.config
        self.frames = FrameAllocator(node.config)
        self._next_pid = 1
        self.faults: List = []
        # Default fault policy: record and discard.  The daemon replaces
        # this with mapping-aware handling at boot.
        node.nic.fault_handler = self._default_fault_handler

    # -- process management -------------------------------------------------
    def create_process(self, name: str = "") -> UserProcess:
        """Fork-equivalent: a fresh process with an empty address space."""
        space = AddressSpace(self.config, self.frames)
        pid = self._next_pid
        self._next_pid += 1
        return UserProcess(self.node, space, pid, name)

    # -- syscalls (generators charging the kernel crossing) ---------------------
    def _enter(self, proc: UserProcess):
        yield self.sim.timeout(self.config.costs.syscall_overhead)

    def sys_enable_receive(
        self,
        proc: UserProcess,
        frames: Iterable[int],
        interrupt: bool = False,
        owner=None,
    ):
        """Enable incoming transfers to physical frames (export setup)."""
        yield from self._enter(proc)
        for frame in frames:
            self.node.nic.ipt.enable(frame, interrupt=interrupt, owner=owner)

    def sys_disable_receive(self, proc: UserProcess, frames: Iterable[int]):
        """Disable incoming transfers (unexport teardown)."""
        yield from self._enter(proc)
        for frame in frames:
            self.node.nic.ipt.disable(frame)

    def sys_set_notification(self, proc: UserProcess, frames: Iterable[int], on: bool):
        """Flip the per-page interrupt status bits.

        This is the polling/blocking switch of Section 6: 'the kernel
        then changes per-page hardware status bits so that the
        interrupts do not occur'."""
        yield from self._enter(proc)
        for frame in frames:
            self.node.nic.ipt.set_interrupt(frame, on)

    def sys_set_cache_mode(self, proc: UserProcess, vaddr: int, nbytes: int,
                           mode: CacheMode):
        """Change the caching policy of a range of the caller's pages."""
        yield from self._enter(proc)
        proc.space.set_cache_mode(vaddr, nbytes, mode)

    def sys_pin(self, proc: UserProcess, vaddr: int, nbytes: int):
        """Pin pages for communication (no-op beyond bookkeeping here —
        nothing in the model swaps — but exports require it)."""
        yield from self._enter(proc)
        proc.space.set_pinned(vaddr, nbytes, True)

    def sys_sigblock(self, proc: UserProcess):
        """Block signal (notification) delivery for the caller."""
        yield from self._enter(proc)
        proc.signals.block()

    def sys_sigunblock(self, proc: UserProcess):
        """Re-enable signal delivery for the caller."""
        yield from self._enter(proc)
        proc.signals.unblock()

    # -- interrupt side -----------------------------------------------------------
    def _default_fault_handler(self, fault) -> None:
        self.faults.append(fault)
        self.node.nic.unfreeze(discard=True)
