"""UNIX-style signal machinery (the notification substrate).

The paper: 'Our current implementation of notifications uses signals...
Notifications are similar to UNIX signals in that they can be blocked
and unblocked, they can be accepted or discarded, and a process can be
suspended until a particular notification arrives.  Unlike signals,
however, notifications are queued when blocked.'

This module gives a process a queue of pending signals, a blocked flag,
and a way to wait.  Handler functions run as plain callbacks (they model
signal handlers that set flags / bump counters — none of our libraries
do simulated work inside a handler), and each unblocked delivery charges
the configured signal cost to model the kernel's signal path.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Optional

from ..sim import Event, Simulator

__all__ = ["Signal", "SignalState"]


@dataclass
class Signal:
    """One queued notification-carrying signal."""

    kind: str
    payload: Any = None


class SignalState:
    """Per-process signal bookkeeping."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.blocked = False
        self.pending: Deque[Signal] = deque()
        self.delivered_count = 0
        self.discarded_count = 0
        self._waiter: Optional[Event] = None
        # handler(signal) -> None; installed by the notification layer.
        self.handler: Optional[Callable[[Signal], None]] = None
        self.accepting = True

    # -- sending ------------------------------------------------------------
    def post(self, signal: Signal) -> bool:
        """Queue a signal for this process.

        Returns True if the signal was queued/delivered, False if it was
        discarded (the per-buffer 'accepted or discarded' choice).
        Delivery to the handler happens when the process is unblocked
        and pulls signals (see :meth:`drain`), or immediately wakes a
        suspended waiter.
        """
        if not self.accepting:
            self.discarded_count += 1
            return False
        self.pending.append(signal)
        if self._waiter is not None and not self.blocked:
            waiter, self._waiter = self._waiter, None
            waiter.succeed(None)
        return True

    # -- receiving -------------------------------------------------------------
    def drain(self) -> "list[Signal]":
        """Pop all deliverable signals (empty when blocked)."""
        if self.blocked:
            return []
        signals = list(self.pending)
        self.pending.clear()
        self.delivered_count += len(signals)
        return signals

    def block(self) -> None:
        """Block delivery; arriving signals queue (unlike plain UNIX)."""
        self.blocked = True

    def unblock(self) -> None:
        """Re-enable delivery; a suspended waiter wakes if work is queued."""
        self.blocked = False
        if self.pending and self._waiter is not None:
            waiter, self._waiter = self._waiter, None
            waiter.succeed(None)

    def wait(self) -> Event:
        """Event that fires when a deliverable signal is (or becomes)
        available.  Only one waiter at a time (a process is sequential)."""
        event = Event(self.sim, name="signal-wait")
        if self.pending and not self.blocked:
            event.succeed(None)
            return event
        if self._waiter is not None:
            raise RuntimeError("process already waiting for a signal")
        self._waiter = event
        return event
