"""The SHRIMP daemon: trusted per-node broker of import-export mappings.

'SHRIMP daemons are trusted servers (one per node) which cooperate to
establish (and destroy) import-export mappings between user processes.
The daemons use memory-mapped I/O to directly manipulate the network
interface hardware.  They also call SHRIMP-specific operating system
calls to manage receive buffer memory...'

Local operations (export, AU bind) are daemon calls on the same node;
imports of remote buffers do a daemon-to-daemon round trip over the
commodity Ethernet.  All of this is connection setup — none of it is on
the data path.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..hardware.config import MachineConfig
from ..hardware.ethernet import Ethernet
from ..hardware.nic import OPTEntry
from ..sim import Simulator, spawn
from .process import UserProcess
from .signals import Signal
from .syscalls import KernelServices

__all__ = ["ExportRecord", "ImportedBuffer", "AutomaticBinding", "ShrimpDaemon",
           "MappingError", "DAEMON_PORT"]

DAEMON_PORT = 1
_REPLY_PORT_BASE = 1000
_DAEMON_HANDLING_COST = 5.0  # daemon-side request processing CPU time


class MappingError(Exception):
    """Export/import failed: unknown id, permission denied, bad alignment."""


@dataclass
class ExportRecord:
    """One exported receive buffer, as the owning daemon tracks it."""

    export_id: int
    node_id: int
    process: UserProcess
    vaddr: int
    nbytes: int
    frames: List[int]
    allow_nodes: Optional[Set[int]]  # None == any node may import
    notify: bool
    import_count: int = 0
    active: bool = True

    @property
    def npages(self) -> int:
        return len(self.frames)


@dataclass
class ImportedBuffer:
    """An importer's handle on a remote receive buffer.

    ``opt_base`` indexes the import region of the local OPT; offset
    ``i`` pages into the buffer is OPT slot ``opt_base + i``.
    """

    remote_node: int
    export_id: int
    nbytes: int
    remote_frames: List[int]
    opt_base: int
    owner_node: int
    active: bool = True

    @property
    def npages(self) -> int:
        return len(self.remote_frames)


@dataclass
class AutomaticBinding:
    """An automatic-update binding of local pages to an imported buffer."""

    local_vaddr: int
    nbytes: int
    local_frames: List[int]
    imported: ImportedBuffer
    active: bool = True


@dataclass
class _ImportRequest:
    token: int
    export_id: int
    importer_node: int
    importer_pid: int
    reply_port: int


@dataclass
class _ImportReply:
    token: int
    ok: bool
    error: str = ""
    nbytes: int = 0
    frames: List[int] = field(default_factory=list)
    notify: bool = False


@dataclass
class _UnimportNotice:
    export_id: int


class ShrimpDaemon:
    """The trusted mapping server of one node."""

    _tokens = itertools.count(1)

    def __init__(self, kernel: KernelServices, ethernet: Ethernet):
        self.kernel = kernel
        self.node = kernel.node
        self.sim: Simulator = kernel.sim
        self.config: MachineConfig = kernel.config
        self.ethernet = ethernet
        self.exports: Dict[int, ExportRecord] = {}
        self._next_export_id = 1
        self.node.nic.notify_handler = self._on_notify_interrupt
        spawn(self.sim, self._serve(), name="shrimpd-n%d" % self.node.node_id)

    # ------------------------------------------------------------------
    # Local operations (called in the requesting process's context)
    # ------------------------------------------------------------------
    def export(
        self,
        proc: UserProcess,
        vaddr: int,
        nbytes: int,
        allow_nodes: Optional[Set[int]] = None,
        notify: bool = False,
    ):
        """Export ``[vaddr, vaddr+nbytes)`` of ``proc`` as a receive buffer.

        Pages must be mapped and page-aligned (receive protection is
        page-granular).  Returns an :class:`ExportRecord`.
        """
        self._require_page_aligned(vaddr, nbytes, "export")
        frames = proc.space.frames_of(vaddr, nbytes)  # raises if unmapped
        yield from self.kernel.sys_pin(proc, vaddr, nbytes)
        record = ExportRecord(
            export_id=self._next_export_id,
            node_id=self.node.node_id,
            process=proc,
            vaddr=vaddr,
            nbytes=nbytes,
            frames=frames,
            allow_nodes=set(allow_nodes) if allow_nodes is not None else None,
            notify=notify,
        )
        self._next_export_id += 1
        yield from self.kernel.sys_enable_receive(
            proc, frames, interrupt=notify, owner=record
        )
        self.exports[record.export_id] = record
        return record

    def unexport(self, proc: UserProcess, record: ExportRecord):
        """Destroy an export after pending deliveries drain.

        'Before completing, these calls wait for all currently pending
        messages using the mapping to be delivered.'  We wait for the
        local incoming queue to idle — in-flight mesh packets land
        within a bounded transit time, which the drain window covers.
        """
        if not record.active:
            raise MappingError("export %d already destroyed" % record.export_id)
        yield from self._drain_incoming()
        record.active = False
        yield from self.kernel.sys_disable_receive(proc, record.frames)
        del self.exports[record.export_id]

    def bind_automatic(
        self,
        proc: UserProcess,
        local_vaddr: int,
        imported: ImportedBuffer,
        nbytes: Optional[int] = None,
        offset: int = 0,
        combining: bool = True,
        use_timer: bool = True,
        dest_interrupt: bool = False,
        timer_us: Optional[float] = None,
    ):
        """Create an automatic-update binding (page-granular).

        Writes to ``[local_vaddr, +nbytes)`` will propagate to the
        imported buffer starting at ``offset``.
        """
        nbytes = imported.nbytes - offset if nbytes is None else nbytes
        self._require_page_aligned(local_vaddr, nbytes, "AU binding")
        if offset % self.config.page_size != 0:
            raise MappingError("AU binding offset must be page-aligned")
        if offset + nbytes > imported.nbytes:
            raise MappingError("AU binding exceeds the imported buffer")
        if not imported.active:
            raise MappingError("imported buffer is no longer active")
        local_frames = proc.space.frames_of(local_vaddr, nbytes)
        first_remote = offset // self.config.page_size
        yield from self.kernel._enter(proc)  # one kernel crossing for the whole bind
        for i, frame in enumerate(local_frames):
            self.node.nic.opt.bind_page(
                frame,
                OPTEntry(
                    dst_node=imported.remote_node,
                    dst_page=imported.remote_frames[first_remote + i],
                    combining=combining,
                    use_timer=use_timer,
                    dest_interrupt=dest_interrupt,
                    timer_us=timer_us,
                ),
            )
        return AutomaticBinding(local_vaddr, nbytes, local_frames, imported)

    def unbind_automatic(self, proc: UserProcess, binding: AutomaticBinding):
        """Remove an AU binding (flushes any open combined packet first)."""
        if not binding.active:
            raise MappingError("binding already removed")
        self.node.nic.packetizer.flush()
        yield from self._drain_outgoing()
        yield from self.kernel._enter(proc)
        for frame in binding.local_frames:
            self.node.nic.opt.unbind_page(frame)
        binding.active = False

    # ------------------------------------------------------------------
    # Import (may cross nodes via Ethernet)
    # ------------------------------------------------------------------
    def import_buffer(self, proc: UserProcess, remote_node: int, export_id: int):
        """Import a remote export; returns an :class:`ImportedBuffer`."""
        if not 0 <= remote_node < self.config.n_nodes:
            raise MappingError("no node %d in this machine" % remote_node)
        if remote_node == self.node.node_id:
            record = self.exports.get(export_id)
            if record is None or not record.active:
                raise MappingError("no export %d on node %d" % (export_id, remote_node))
            self._check_perms(record, self.node.node_id)
            yield self.sim.timeout(_DAEMON_HANDLING_COST)
            record.import_count += 1
            nbytes, frames = record.nbytes, list(record.frames)
        else:
            token = next(self._tokens)
            reply_port = _REPLY_PORT_BASE + token
            request = _ImportRequest(
                token=token,
                export_id=export_id,
                importer_node=self.node.node_id,
                importer_pid=proc.pid,
                reply_port=reply_port,
            )
            self.ethernet.send(self.node.node_id, remote_node, DAEMON_PORT, request)
            frame = yield self.ethernet.recv(self.node.node_id, reply_port)
            reply: _ImportReply = frame.payload
            if not reply.ok:
                raise MappingError(reply.error)
            nbytes, frames = reply.nbytes, reply.frames

        yield from self.kernel._enter(proc)
        opt_base = self.node.nic.opt.allocate_proxy(
            [
                OPTEntry(dst_node=remote_node, dst_page=f, combining=False, use_timer=False)
                for f in frames
            ]
        )
        return ImportedBuffer(
            remote_node=remote_node,
            export_id=export_id,
            nbytes=nbytes,
            remote_frames=frames,
            opt_base=opt_base,
            owner_node=self.node.node_id,
        )

    def unimport(self, proc: UserProcess, imported: ImportedBuffer):
        """Destroy an import after pending sends through it drain."""
        if not imported.active:
            raise MappingError("import already destroyed")
        yield from self._drain_outgoing()
        imported.active = False
        yield from self.kernel._enter(proc)
        self.node.nic.opt.free_proxy(imported.opt_base, imported.npages)
        if imported.remote_node != self.node.node_id:
            self.ethernet.send(
                self.node.node_id,
                imported.remote_node,
                DAEMON_PORT,
                _UnimportNotice(imported.export_id),
            )
        else:
            record = self.exports.get(imported.export_id)
            if record is not None:
                record.import_count -= 1

    # ------------------------------------------------------------------
    # Daemon server loop (Ethernet-facing)
    # ------------------------------------------------------------------
    def _serve(self):
        while True:
            frame = yield self.ethernet.recv(self.node.node_id, DAEMON_PORT)
            yield self.sim.timeout(_DAEMON_HANDLING_COST)
            message = frame.payload
            if isinstance(message, _ImportRequest):
                self._handle_import(frame.src_node, message)
            elif isinstance(message, _UnimportNotice):
                record = self.exports.get(message.export_id)
                if record is not None:
                    record.import_count -= 1
            # Unknown messages are dropped (diagnostics traffic).

    def _handle_import(self, src_node: int, request: _ImportRequest) -> None:
        record = self.exports.get(request.export_id)
        if record is None or not record.active:
            reply = _ImportReply(request.token, ok=False,
                                 error="no export %d on node %d"
                                 % (request.export_id, self.node.node_id))
        else:
            try:
                self._check_perms(record, request.importer_node)
            except MappingError as exc:
                reply = _ImportReply(request.token, ok=False, error=str(exc))
            else:
                record.import_count += 1
                reply = _ImportReply(
                    request.token,
                    ok=True,
                    nbytes=record.nbytes,
                    frames=list(record.frames),
                    notify=record.notify,
                )
        self.ethernet.send(self.node.node_id, src_node, request.reply_port, reply)

    # ------------------------------------------------------------------
    # Interrupt-side dispatch
    # ------------------------------------------------------------------
    def _on_notify_interrupt(self, page: int, size: int) -> None:
        """NIC notification interrupt: route to the exporting process."""
        entry = self.node.nic.ipt.entry(page)
        record = entry.owner
        if isinstance(record, ExportRecord) and record.active:
            record.process.signals.post(
                Signal("vmmc-notify", payload=(record.export_id, page, size))
            )

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _check_perms(self, record: ExportRecord, importer_node: int) -> None:
        if record.allow_nodes is not None and importer_node not in record.allow_nodes:
            raise MappingError(
                "node %d may not import export %d" % (importer_node, record.export_id)
            )

    def _require_page_aligned(self, vaddr: int, nbytes: int, what: str) -> None:
        page_size = self.config.page_size
        if vaddr % page_size != 0:
            raise MappingError("%s address %#x is not page-aligned" % (what, vaddr))
        if nbytes <= 0 or nbytes % page_size != 0:
            raise MappingError("%s size %d is not a positive page multiple" % (what, nbytes))

    def _drain_incoming(self):
        nic = self.node.nic
        while len(nic.incoming.incoming) > 0:
            yield self.sim.timeout(5.0)
        # Cover in-flight mesh transit:
        yield self.sim.timeout(10.0)

    def _drain_outgoing(self):
        nic = self.node.nic
        while (
            len(nic.du_engine.commands) > 0
            or len(nic.fifo) > 0
            or nic.packetizer._open is not None
        ):
            yield self.sim.timeout(5.0)
