"""User processes: the OS-level execution context of application code.

A :class:`UserProcess` owns an address space on one node and provides
the *timed* memory operations application and library code uses:
``write``/``read``/``copy`` (which go through the MMU, charge the cache
cost model, and feed the NIC snoop), ``poll`` (flag-waiting via memory
watchpoints, charging per-check costs), and ``compute`` (pure CPU time).

All of these are generator methods — the caller's simulation process
pays the time, mirroring the fact that the libraries run entirely at
user level on the application's own CPU.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..hardware.config import CacheMode
from ..hardware.node import Node
from ..sim import Event, Simulator
from ..sim.timers import TimerWheel
from .signals import SignalState
from .vm import AddressSpace

__all__ = ["UserProcess"]


class UserProcess:
    """One application process on one SHRIMP node."""

    def __init__(self, node: Node, address_space: AddressSpace, pid: int, name: str = ""):
        self.node = node
        self.space = address_space
        self.pid = pid
        self.name = name or "pid%d" % pid
        self.sim: Simulator = node.sim
        self.config = node.config
        self.signals = SignalState(self.sim)
        # Set by the VMMC layer when the process attaches an endpoint.
        self.vmmc = None
        self.poll_checks = 0
        # Cached for the one-attribute-check tracing guard on hot paths.
        self.tracer = node.tracer
        self.trace_track = "n%d.cpu.p%d" % (node.node_id, pid)
        # The causal trace context this process is currently working
        # under: ``(trace_id, parent_span_sid)`` or None.  Request
        # entry points (the KV client, RPC servers mid-dispatch) set
        # it; transport send paths read it to tag their spans and
        # stamp wire headers (repro.obs).
        self.trace_ctx = None
        # Cached likewise so libraries can gate their recovery protocols
        # on faults.enabled with one attribute check (docs/FAULTS.md).
        self.faults = node.faults
        # Deferred CPU charge (see charge()): folded into the next timed
        # operation's deadline instead of costing its own scheduler wake.
        self._lead = 0.0
        # Deadline timers for bounded polls: one wheel slot per distinct
        # deadline, cancelled O(1) on early wake (repro.sim.timers).
        self._wheel = TimerWheel(self.sim)

    def charge(self, microseconds: float) -> None:
        """Defer a pure CPU charge into this process's next timed op.

        Semantically ``yield from compute(microseconds)`` — but instead
        of sleeping now, the charge is folded into the deadline of the
        next ``read``/``write``/``copy``/``poll``/``compute``, saving
        one scheduler wake.  The deadline arithmetic repeats the
        two-sleep float operations ((now + charge) + cost), so the
        final instant is bit-exact with the separate-sleep form.

        Only valid when ALL code between the charge and the process's
        next timed operation is side-effect free (no stores, sends,
        queue operations, or span emissions): anything in between runs
        at charge time rather than after the charge elapsed.  Callers
        are responsible for that proof (docs/SIMULATOR.md).
        """
        self._lead += microseconds

    def __repr__(self) -> str:  # pragma: no cover
        return "<UserProcess %s on node %d>" % (self.name, self.node.node_id)

    # -- memory operations -------------------------------------------------
    def write(self, vaddr: int, data: bytes):
        """Timed store of ``data`` at ``vaddr``; snooped by the NIC.

        Large writes stream in ``cpu_stream_chunk`` pieces so the NIC
        sees (and packetizes) the data as it is produced, pipelining an
        AU-bound copy with the network — the base cost is charged once,
        per-byte cost per chunk.
        """
        lead = self._lead
        if lead:
            self._lead = 0.0
            if self.tracer.enabled:
                # Traced runs keep the historical shape: the deferred
                # charge sleeps on its own (exactly the compute() it
                # replaced) so span starts, durations, and sid order
                # are untouched by the wake merge.
                yield self.sim.timeout_at(self.sim.now + lead)
                lead = 0.0
        mode = self.space.cache_mode_of(vaddr)
        base, per_byte = self.config.write_rate(mode)
        span = None
        if self.tracer.enabled:
            span = self.tracer.begin(
                "cpu.store", "store %dB" % len(data), track=self.trace_track,
                data={"bytes": len(data)},
            )
        nbytes = len(data)
        start = self.sim.now
        if lead:
            start = start + lead
        if nbytes <= self.config.cpu_stream_chunk:
            # Single-chunk fast path: one wake instead of two.  The
            # deadline is computed with the same float operations the
            # two-sleep version performs ((now + base) + n*per_byte), so
            # the landing instant is bit-exact.
            yield self.sim.timeout_at((start + base) + nbytes * per_byte)
            piece = data
            for paddr, length in self.space.translate(vaddr, nbytes, write=True):
                sub = piece[:length]
                self.node.memory.write(paddr, sub)
                self.node.nic.snoop_write(paddr, sub)
                piece = piece[length:]
        else:
            yield self.sim.timeout_at(start + base)
            yield from self._stream_out(vaddr, data, per_byte)
        self.tracer.end(span)

    def _stream_out(self, vaddr: int, data: bytes, per_byte: float):
        """Chunked store loop: charge, land bytes, snoop — per chunk."""
        chunk_size = self.config.cpu_stream_chunk
        offset = 0
        while offset < len(data):
            piece = data[offset : offset + chunk_size]
            yield self.sim.timeout(len(piece) * per_byte)
            for paddr, length in self.space.translate(
                vaddr + offset, len(piece), write=True
            ):
                sub = piece[:length]
                self.node.memory.write(paddr, sub)
                self.node.nic.snoop_write(paddr, sub)
                piece = piece[length:]
            offset += chunk_size

    def read(self, vaddr: int, nbytes: int):
        """Timed load of ``nbytes`` at ``vaddr``; returns the bytes."""
        lead = self._lead
        if lead:
            self._lead = 0.0
            if self.tracer.enabled:  # see write(): traced runs don't merge
                yield self.sim.timeout_at(self.sim.now + lead)
                lead = 0.0
        segments = self.space.translate(vaddr, nbytes, write=False)
        mode = self.space.cache_mode_of(vaddr)
        start = self.sim.now
        if lead:
            start = start + lead
        yield self.sim.timeout_at(start + self.config.read_cost(mode, nbytes))
        return b"".join(self.node.memory.read(paddr, length) for paddr, length in segments)

    def copy(self, src_vaddr: int, dst_vaddr: int, nbytes: int):
        """Timed memcpy; the destination stores are snooped, so copying
        into an AU-bound region *is* a send.

        Streams chunk by chunk (reading each chunk at its copy time, so
        a consumer copying out of a buffer still being DMA'd into sees
        the freshest bytes), charging read+write per-byte costs per
        chunk and the two base costs once.
        """
        lead = self._lead
        if lead:
            self._lead = 0.0
            if self.tracer.enabled:  # see write(): traced runs don't merge
                yield self.sim.timeout_at(self.sim.now + lead)
                lead = 0.0
        src_mode = self.space.cache_mode_of(src_vaddr)
        dst_mode = self.space.cache_mode_of(dst_vaddr)
        read_base, read_pb = self.config.read_rate(src_mode)
        write_base, write_pb = self.config.write_rate(dst_mode)
        span = None
        if self.tracer.enabled:
            span = self.tracer.begin(
                "cpu.copy", "copy %dB" % nbytes, track=self.trace_track,
                data={"bytes": nbytes},
            )
        chunk_size = self.config.cpu_stream_chunk
        start = self.sim.now
        if lead:
            start = start + lead
        if nbytes <= chunk_size:
            # Single-chunk fast path, bit-exact with the two-sleep form.
            yield self.sim.timeout_at(
                (start + (read_base + write_base))
                + nbytes * (read_pb + write_pb))
        else:
            yield self.sim.timeout_at(start + (read_base + write_base))
        offset = 0
        while offset < nbytes:
            length = min(chunk_size, nbytes - offset)
            if offset or nbytes > chunk_size:
                yield self.sim.timeout(length * (read_pb + write_pb))
            data = b"".join(
                self.node.memory.read(paddr, seg_len)
                for paddr, seg_len in self.space.translate(
                    src_vaddr + offset, length, write=False
                )
            )
            piece = data
            for paddr, seg_len in self.space.translate(
                dst_vaddr + offset, length, write=True
            ):
                sub = piece[:seg_len]
                self.node.memory.write(paddr, sub)
                self.node.nic.snoop_write(paddr, sub)
                piece = piece[seg_len:]
            offset += length
        self.tracer.end(span)

    def compute(self, microseconds: float, priority: Optional[int] = None):
        """Pure CPU time (library bookkeeping, marshaling logic, ...).

        With ``priority`` set *and* the node's CPU scheduler enabled
        (:meth:`~repro.hardware.node.Node.enable_cpu`), the time is
        charged while holding one CPU slot, so concurrent handlers on
        the node contend in (priority, FIFO) order.  Either condition
        absent, this is the historical uncontended timeout —
        byte-identical to the pre-scheduler model.
        """
        cpu = self.node.cpu
        if cpu is None or priority is None:
            lead = self._lead
            if lead:
                self._lead = 0.0
                if self.tracer.enabled:  # see write(): traced, no merge
                    yield self.sim.timeout_at(self.sim.now + lead)
                    lead = 0.0
            start = self.sim.now
            if lead:
                start = start + lead
            yield self.sim.timeout_at(start + microseconds)
            return
        lead = self._lead
        if lead:
            # Contended path: pay the deferred charge as its own sleep
            # (exactly what the caller's separate compute() would have
            # cost) before queueing for a CPU slot.
            self._lead = 0.0
            yield self.sim.timeout_at(self.sim.now + lead)
        req = cpu.request(priority)
        yield req
        try:
            yield self.sim.timeout(microseconds)
        finally:
            cpu.release(req)

    # -- polling -----------------------------------------------------------------
    def poll(
        self,
        vaddr: int,
        nbytes: int,
        predicate: Callable[[bytes], bool],
        deadline: Optional[float] = None,
    ):
        """Wait until ``predicate(bytes at vaddr)`` holds; returns the bytes.

        Models a user-level polling loop.  Each check charges a load of
        the polled bytes plus a compare; between checks the process is
        woken by memory watchpoints rather than timed spinning, so the
        simulated *cost structure* matches polling while the event count
        stays proportional to actual writes (DESIGN.md decision on
        polling).  Returns None if ``deadline`` (absolute sim time)
        passes first.
        """
        segments = self.space.translate(vaddr, nbytes, write=False)
        mode = self.space.cache_mode_of(vaddr)
        check_cost = (
            self.config.read_cost(mode, nbytes) + self.config.costs.vmmc_poll_check
        )
        memory = self.node.memory
        lead = self._lead
        if lead:
            self._lead = 0.0
            if self.tracer.enabled:  # see write(): traced runs don't merge
                yield self.sim.timeout_at(self.sim.now + lead)
                lead = 0.0
        sim = self.sim
        charged = False
        while True:
            self.poll_checks += 1
            span = None
            if self.tracer.enabled:
                span = self.tracer.begin(
                    "cpu.poll", "poll check", track=self.trace_track,
                    data={"bytes": nbytes},
                )
            if charged:
                charged = False  # the watch wake already carried the charge
            elif lead:
                yield sim.timeout_at((sim.now + lead) + check_cost)
                lead = 0.0
            else:
                yield sim.timeout(check_cost)
            data = b"".join(memory.read(paddr, length) for paddr, length in segments)
            hit = predicate(data)
            if span is not None:
                self.tracer.end(span, data={"hit": hit})
            if hit:
                return data
            if deadline is not None and self.sim.now >= deadline:
                return None
            woke = Event(sim, name="poll-wake")
            dl_handle = None
            fast = deadline is None and not self.tracer.enabled
            if fast:
                # Merged wake: the watchpoint schedules the wake event
                # to succeed at (write instant + check cost), so one
                # scheduler entry lands the process directly past the
                # post-wake check charge — bit-exact with
                # wake-then-charge, one entry and one resume cheaper.
                # The fired guard keeps further writes in the charge
                # window from re-arming it.  Traced polls keep the
                # two-step shape so check spans are unchanged.
                state = [False]

                def _wake(p, n, _woke=woke, _state=state):
                    if _state[0]:
                        return
                    _state[0] = True
                    _woke.succeed_later(check_cost)

                watches = [
                    memory.add_watch(paddr, length, _wake)
                    for paddr, length in segments
                ]
                wait = woke
            else:
                watches = [
                    memory.add_watch(
                        paddr, length,
                        lambda p, n: None if woke.triggered else woke.succeed(None),
                    )
                    for paddr, length in segments
                ]
                if deadline is not None:
                    # One wheel slot per distinct deadline: re-arms on
                    # later loop iterations share the first iteration's
                    # scheduler entry, and the cancel after the yield
                    # keeps early-wake iterations from leaving dead
                    # deadline dispatches behind.
                    expired = Event(sim, name="poll-deadline")
                    dl_handle = self._wheel.at(deadline, expired.succeed, None)
                    wait = sim.any_of([woke, expired])
                else:
                    wait = woke
            # Re-check once before sleeping: a write may have landed
            # between our read above and the watch registration.
            data = b"".join(memory.read(paddr, length) for paddr, length in segments)
            if predicate(data):
                for watch in watches:
                    memory.remove_watch(watch)
                return data
            yield wait
            for watch in watches:
                memory.remove_watch(watch)
            if dl_handle is not None:
                self._wheel.cancel(dl_handle)
            charged = fast

    def poll_flag(self, vaddr: int, expected: bytes, deadline: Optional[float] = None):
        """Poll until the bytes at ``vaddr`` equal ``expected``."""
        result = yield from self.poll(
            vaddr, len(expected), lambda data: data == expected, deadline
        )
        return result

    # -- zero-cost debug access -----------------------------------------------------
    def peek(self, vaddr: int, nbytes: int) -> bytes:
        """Untimed read for test assertions."""
        segments = self.space.translate(vaddr, nbytes, write=False)
        return b"".join(self.node.memory.read(p, length) for p, length in segments)

    def poke(self, vaddr: int, data: bytes) -> None:
        """Untimed, un-snooped write for test setup."""
        segments = self.space.translate(vaddr, len(data), write=True)
        offset = 0
        for paddr, length in segments:
            self.node.memory.write(paddr, data[offset : offset + length])
            offset += length
