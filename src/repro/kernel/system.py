"""The booted SHRIMP system: hardware + kernels + daemons.

:class:`ShrimpSystem` is what everything above the OS builds on: it
assembles a :class:`~repro.hardware.machine.Machine`, one
:class:`~repro.kernel.syscalls.KernelServices` and one
:class:`~repro.kernel.daemon.ShrimpDaemon` per node, and provides
process spawning and run helpers.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..hardware.config import MachineConfig
from ..hardware.machine import Machine
from ..sim import FaultPlan, Process, Simulator, spawn
from .daemon import ShrimpDaemon
from .process import UserProcess
from .syscalls import KernelServices

__all__ = ["ShrimpSystem"]


class ShrimpSystem:
    """A running SHRIMP multicomputer (Figure 1, software included)."""

    def __init__(self, config: Optional[MachineConfig] = None, trace: bool = False,
                 fault_plan: Optional[FaultPlan] = None):
        self.machine = Machine(config, trace=trace, fault_plan=fault_plan)
        self.sim: Simulator = self.machine.sim
        self.config = self.machine.config
        self.faults = self.machine.faults
        self.kernels: List[KernelServices] = [
            KernelServices(node) for node in self.machine.nodes
        ]
        self.daemons: List[ShrimpDaemon] = [
            ShrimpDaemon(kernel, self.machine.ethernet) for kernel in self.kernels
        ]

    # -- process management ------------------------------------------------
    def spawn(
        self,
        node_id: int,
        program: Callable[[UserProcess], "object"],
        name: str = "",
    ) -> Process:
        """Start ``program(proc)`` as a user process on a node.

        ``program`` is a generator function receiving the fresh
        :class:`UserProcess`; the returned simulation process completes
        with the program's return value.
        """
        kernel = self.kernels[node_id]
        proc = kernel.create_process(name or getattr(program, "__name__", ""))
        return spawn(self.sim, program(proc), name="%s@n%d" % (proc.name, node_id))

    # -- running -------------------------------------------------------------
    def run(self, until: Optional[float] = None):
        """Run the event loop (convenience passthrough)."""
        return self.sim.run(until=until)

    def run_processes(self, processes: List[Process], timeout: float = 10_000_000.0):
        """Run until every listed process completes; returns their values.

        Daemons and NIC engines run forever, so the event loop never
        drains on its own; we stop it explicitly when the interesting
        processes are done.  Raises if the timeout expires first (a hung
        protocol is a bug worth failing loudly on).
        """
        done = self.sim.all_of(list(processes))
        done.add_callback(lambda event: self.sim.stop(event.value))
        result = self.sim.run(until=timeout)
        if not done.triggered:
            raise RuntimeError(
                "processes still running at t=%.0f us: %s"
                % (self.sim.now, [p.name for p in processes if not p.triggered])
            )
        if not done.ok:
            # A process died: surface its exception, never swallow it.
            raise done.value
        return result
