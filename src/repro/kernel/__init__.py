"""The OS layer (systems S10-S12): virtual memory, processes, signals,
SHRIMP daemons, and the booted system assembly."""

from .daemon import (
    AutomaticBinding,
    DAEMON_PORT,
    ExportRecord,
    ImportedBuffer,
    MappingError,
    ShrimpDaemon,
)
from .process import UserProcess
from .signals import Signal, SignalState
from .syscalls import KernelServices
from .system import ShrimpSystem
from .vm import AddressSpace, ProtectionFault, PTE

__all__ = [
    "AddressSpace",
    "AutomaticBinding",
    "DAEMON_PORT",
    "ExportRecord",
    "ImportedBuffer",
    "KernelServices",
    "MappingError",
    "PTE",
    "ProtectionFault",
    "ShrimpDaemon",
    "Signal",
    "SignalState",
    "ShrimpSystem",
    "UserProcess",
]
