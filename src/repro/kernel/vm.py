"""Virtual memory: per-process address spaces, page tables, MMU checks.

VMMC's protection argument leans on the ordinary virtual memory system:
'the hardware virtual memory management unit (MMU) on an importing node
makes sure that transferred data cannot overwrite memory outside a
receive buffer', and deliberate update uses 'the ordinary virtual memory
protection mechanisms (MMU and page tables)'.

This module models exactly that much: page tables mapping virtual pages
to physical frames with read/write permissions and a per-page cache
mode, and a translate() that raises on violations.  No swapping — the
prototype pins communication memory, and nothing in the paper's
experiments pages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..hardware.config import CacheMode, MachineConfig
from ..hardware.memory import FrameAllocator

__all__ = ["ProtectionFault", "PTE", "AddressSpace"]


class ProtectionFault(Exception):
    """An access violated the page tables (unmapped or wrong permission)."""


@dataclass
class PTE:
    """One page-table entry."""

    frame: int
    cache_mode: CacheMode = CacheMode.WRITE_BACK
    readable: bool = True
    writable: bool = True
    pinned: bool = False


class AddressSpace:
    """The virtual address space of one user process.

    Virtual addresses start at ``BASE`` (a non-zero base so that address
    0 is never valid — null-pointer hygiene).  ``mmap`` allocates zeroed
    anonymous memory backed by frames from the node's allocator.
    """

    BASE_PAGE = 16  # first virtual page handed out (vaddr 0x10000 at 4 KB pages)

    def __init__(self, config: MachineConfig, frames: FrameAllocator):
        self.config = config
        self.frames = frames
        self.page_table: Dict[int, PTE] = {}
        self._next_vpage = self.BASE_PAGE

    # -- allocation --------------------------------------------------------
    def mmap(
        self,
        nbytes: int,
        cache_mode: CacheMode = CacheMode.WRITE_BACK,
        contiguous: bool = False,
    ) -> int:
        """Allocate ``nbytes`` (rounded up to pages); returns the vaddr.

        ``contiguous`` requests physically contiguous frames (pinned
        receive-buffer style); plain allocations may be scattered.
        """
        if nbytes <= 0:
            raise ValueError("mmap size must be positive")
        page_size = self.config.page_size
        npages = -(-nbytes // page_size)
        if contiguous:
            first = self.frames.allocate_contiguous(npages)
            frame_list = list(range(first, first + npages))
        else:
            frame_list = self.frames.allocate(npages)
        vpage = self._next_vpage
        self._next_vpage += npages
        for i, frame in enumerate(frame_list):
            self.page_table[vpage + i] = PTE(frame=frame, cache_mode=cache_mode)
        return vpage * page_size

    def unmap(self, vaddr: int, nbytes: int) -> None:
        """Release a mapped range (frames go back to the allocator)."""
        released = []
        for vpage in self._vpages(vaddr, nbytes):
            pte = self.page_table.pop(vpage, None)
            if pte is None:
                raise ProtectionFault("unmapping unmapped page %d" % vpage)
            released.append(pte.frame)
        self.frames.free(released)

    # -- attribute control ------------------------------------------------------
    def set_cache_mode(self, vaddr: int, nbytes: int, mode: CacheMode) -> None:
        """Flip the per-page caching policy (a SHRIMP-specific OS call)."""
        for vpage in self._vpages(vaddr, nbytes):
            self._pte(vpage).cache_mode = mode

    def set_pinned(self, vaddr: int, nbytes: int, pinned: bool) -> None:
        """Mark pages pinned/unpinned for communication use."""
        for vpage in self._vpages(vaddr, nbytes):
            self._pte(vpage).pinned = pinned

    def protect(self, vaddr: int, nbytes: int, readable: bool, writable: bool) -> None:
        """Set read/write permissions on a mapped range."""
        for vpage in self._vpages(vaddr, nbytes):
            pte = self._pte(vpage)
            pte.readable = readable
            pte.writable = writable

    # -- translation ----------------------------------------------------------------
    def translate(self, vaddr: int, nbytes: int, write: bool = False) -> List[Tuple[int, int]]:
        """Map ``[vaddr, vaddr+nbytes)`` to physical (paddr, length) segments.

        Adjacent segments in contiguous frames are merged.  Raises
        :class:`ProtectionFault` on unmapped pages or permission misses.
        """
        if nbytes < 0:
            raise ValueError("negative length")
        if nbytes == 0:
            return []
        page_size = self.config.page_size
        segments: List[Tuple[int, int]] = []
        offset = 0
        while offset < nbytes:
            addr = vaddr + offset
            vpage, page_offset = divmod(addr, page_size)
            pte = self._pte(vpage)
            if write and not pte.writable:
                raise ProtectionFault("write to read-only page %d" % vpage)
            if not write and not pte.readable:
                raise ProtectionFault("read of unreadable page %d" % vpage)
            length = min(nbytes - offset, page_size - page_offset)
            paddr = pte.frame * page_size + page_offset
            if segments and segments[-1][0] + segments[-1][1] == paddr:
                segments[-1] = (segments[-1][0], segments[-1][1] + length)
            else:
                segments.append((paddr, length))
            offset += length
        return segments

    def cache_mode_of(self, vaddr: int) -> CacheMode:
        """Caching policy of the page containing ``vaddr``."""
        return self._pte(vaddr // self.config.page_size).cache_mode

    def frames_of(self, vaddr: int, nbytes: int) -> List[int]:
        """Physical frame numbers backing a range (export-time helper)."""
        return [self._pte(vp).frame for vp in self._vpages(vaddr, nbytes)]

    def is_mapped(self, vaddr: int, nbytes: int = 1) -> bool:
        """True iff the whole range is mapped."""
        try:
            for vpage in self._vpages(vaddr, nbytes):
                self._pte(vpage)
        except ProtectionFault:
            return False
        return True

    # -- internals ---------------------------------------------------------------------
    def _pte(self, vpage: int) -> PTE:
        pte = self.page_table.get(vpage)
        if pte is None:
            raise ProtectionFault("access to unmapped virtual page %d" % vpage)
        return pte

    def _vpages(self, vaddr: int, nbytes: int):
        page_size = self.config.page_size
        first = vaddr // page_size
        last = (vaddr + max(nbytes, 1) - 1) // page_size
        return range(first, last + 1)
