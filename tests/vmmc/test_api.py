"""Tests for the VMMC API: mappings, deliberate update, automatic update."""

import pytest

from repro.kernel import ShrimpSystem
from repro.testbed import Rendezvous, make_system
from repro.vmmc import VmmcAlignmentError, VmmcStateError, attach

PAGE = 4096


@pytest.fixture
def system():
    return make_system()


@pytest.fixture
def rdv(system):
    return Rendezvous(system)


def run(system, *handles):
    system.run_processes(list(handles))


def test_deliberate_update_delivers_data(system, rdv):
    """The canonical VMMC flow: export, import, send, poll."""
    def receiver(proc):
        ep = attach(system, proc)
        buf = yield from ep.export_new(PAGE)
        rdv.put("export", (proc.node.node_id, buf.export_id))
        data = yield from proc.poll(
            buf.vaddr, 16, lambda b: b[-4:] == b"\x01\x00\x00\x00"
        )
        return data[:12]

    def sender(proc):
        ep = attach(system, proc)
        node, xid = yield rdv.get("export")
        imported = yield from ep.import_buffer(node, xid)
        src = ep.alloc_buffer(PAGE)
        yield from proc.write(src, b"hello vmmc!\x00" + b"\x01\x00\x00\x00")
        yield from ep.send(imported, src, 16)

    r = system.spawn(1, receiver)
    s = system.spawn(0, sender)
    run(system, r, s)
    assert r.value == b"hello vmmc!\x00"


def test_send_rejects_unaligned_source(system, rdv):
    def receiver(proc):
        ep = attach(system, proc)
        buf = yield from ep.export_new(PAGE)
        rdv.put("x", (proc.node.node_id, buf.export_id))

    def sender(proc):
        ep = attach(system, proc)
        node, xid = yield rdv.get("x")
        imported = yield from ep.import_buffer(node, xid)
        src = ep.alloc_buffer(PAGE)
        try:
            yield from ep.send(imported, src + 2, 8)
        except VmmcAlignmentError:
            return "rejected"

    r = system.spawn(1, receiver)
    s = system.spawn(0, sender)
    run(system, r, s)
    assert s.value == "rejected"


def test_send_rejects_unaligned_offset(system, rdv):
    def receiver(proc):
        ep = attach(system, proc)
        buf = yield from ep.export_new(PAGE)
        rdv.put("x", (proc.node.node_id, buf.export_id))

    def sender(proc):
        ep = attach(system, proc)
        node, xid = yield rdv.get("x")
        imported = yield from ep.import_buffer(node, xid)
        src = ep.alloc_buffer(PAGE)
        try:
            yield from ep.send(imported, src, 8, offset=2)
        except VmmcAlignmentError:
            return "rejected"

    r = system.spawn(1, receiver)
    s = system.spawn(0, sender)
    run(system, r, s)
    assert s.value == "rejected"


def test_send_bounds_checked_against_buffer(system, rdv):
    def receiver(proc):
        ep = attach(system, proc)
        buf = yield from ep.export_new(PAGE)
        rdv.put("x", (proc.node.node_id, buf.export_id))

    def sender(proc):
        ep = attach(system, proc)
        node, xid = yield rdv.get("x")
        imported = yield from ep.import_buffer(node, xid)
        src = ep.alloc_buffer(2 * PAGE)
        try:
            yield from ep.send(imported, src, PAGE + 4, offset=0)
        except ValueError:
            return "bounds"

    r = system.spawn(1, receiver)
    s = system.spawn(0, sender)
    run(system, r, s)
    assert s.value == "bounds"


def test_send_at_offset_lands_at_offset(system, rdv):
    def receiver(proc):
        ep = attach(system, proc)
        buf = yield from ep.export_new(PAGE)
        rdv.put("x", (proc.node.node_id, buf.export_id))
        yield from proc.poll(buf.vaddr + 256, 4, lambda b: b == b"DATA")
        return proc.peek(buf.vaddr, 4), proc.peek(buf.vaddr + 256, 4)

    def sender(proc):
        ep = attach(system, proc)
        node, xid = yield rdv.get("x")
        imported = yield from ep.import_buffer(node, xid)
        src = ep.alloc_buffer(PAGE)
        yield from proc.write(src, b"DATA")
        yield from ep.send(imported, src, 4, offset=256)

    r = system.spawn(1, receiver)
    s = system.spawn(0, sender)
    run(system, r, s)
    untouched, data = r.value
    assert data == b"DATA"
    assert untouched == b"\x00\x00\x00\x00"


def test_automatic_update_propagates_plain_stores(system, rdv):
    def receiver(proc):
        ep = attach(system, proc)
        buf = yield from ep.export_new(PAGE)
        rdv.put("x", (proc.node.node_id, buf.export_id))
        data = yield from proc.poll(buf.vaddr + 60, 4, lambda b: b == b"END!")
        return proc.peek(buf.vaddr, 64)

    def sender(proc):
        ep = attach(system, proc)
        node, xid = yield rdv.get("x")
        imported = yield from ep.import_buffer(node, xid)
        local = ep.alloc_buffer(PAGE)
        yield from ep.bind(local, imported)
        # No explicit send: plain stores propagate.
        yield from proc.write(local, b"0123" * 15 + b"END!")

    r = system.spawn(1, receiver)
    s = system.spawn(0, sender)
    run(system, r, s)
    assert r.value == b"0123" * 15 + b"END!"


def test_automatic_update_combines_consecutive_stores(system, rdv):
    """Marshal-then-flag in consecutive addresses arrives as one packet
    (the SHRIMP RPC trick)."""
    def receiver(proc):
        ep = attach(system, proc)
        buf = yield from ep.export_new(PAGE)
        rdv.put("x", (proc.node.node_id, buf.export_id))
        yield from proc.poll(buf.vaddr + 12, 4, lambda b: b == b"FLAG")

    def sender(proc):
        ep = attach(system, proc)
        node, xid = yield rdv.get("x")
        imported = yield from ep.import_buffer(node, xid)
        local = ep.alloc_buffer(PAGE)
        yield from ep.bind(local, imported)
        before = proc.node.nic.packetizer.packets_formed
        yield from proc.write(local, b"arg1arg2arg3")
        yield from proc.write(local + 12, b"FLAG")
        # The timer will flush it as a single combined packet.
        yield proc.sim.timeout(system.config.combine_timeout * 2)
        return proc.node.nic.packetizer.packets_formed - before

    r = system.spawn(1, receiver)
    s = system.spawn(0, sender)
    run(system, r, s)
    assert s.value == 1


def test_unexported_buffer_rejects_second_unexport(system):
    def program(proc):
        ep = attach(system, proc)
        buf = yield from ep.export_new(PAGE)
        yield from ep.unexport(buf)
        try:
            yield from ep.unexport(buf)
        except VmmcStateError:
            return "stateful"

    handle = system.spawn(0, program)
    run(system, handle)
    assert handle.value == "stateful"


def test_send_through_destroyed_import_rejected(system, rdv):
    def receiver(proc):
        ep = attach(system, proc)
        buf = yield from ep.export_new(PAGE)
        rdv.put("x", (proc.node.node_id, buf.export_id))

    def sender(proc):
        ep = attach(system, proc)
        node, xid = yield rdv.get("x")
        imported = yield from ep.import_buffer(node, xid)
        yield from ep.unimport(imported)
        src = ep.alloc_buffer(PAGE)
        try:
            yield from ep.send(imported, src, 8)
        except VmmcStateError:
            return "stateful"

    r = system.spawn(1, receiver)
    s = system.spawn(0, sender)
    run(system, r, s)
    assert s.value == "stateful"


def test_in_order_delivery_of_mixed_du_sends(system, rdv):
    """VMMC guarantees in-order delivery for blocking DU sends: a flag
    sent after data must never be visible before the data."""
    def receiver(proc):
        ep = attach(system, proc)
        buf = yield from ep.export_new(2 * PAGE)
        rdv.put("x", (proc.node.node_id, buf.export_id))
        yield from proc.poll(buf.vaddr + PAGE, 4, lambda b: b == b"flag")
        # Data sent before the flag must already be there, in full.
        return proc.peek(buf.vaddr, PAGE)

    def sender(proc):
        ep = attach(system, proc)
        node, xid = yield rdv.get("x")
        imported = yield from ep.import_buffer(node, xid)
        src = ep.alloc_buffer(2 * PAGE)
        payload = bytes((7 * i) % 256 for i in range(PAGE))
        proc.poke(src, payload)
        proc.poke(src + PAGE, b"flag")
        yield from ep.send(imported, src, PAGE, offset=0)
        yield from ep.send(imported, src + PAGE, 4, offset=PAGE)
        return payload

    r = system.spawn(1, receiver)
    s = system.spawn(0, sender)
    run(system, r, s)
    assert r.value == s.value


def test_alloc_buffer_rounds_to_pages(system):
    def program(proc):
        ep = attach(system, proc)
        vaddr = ep.alloc_buffer(100)
        assert proc.space.is_mapped(vaddr, PAGE)
        return vaddr % PAGE
        yield  # pragma: no cover

    handle = system.spawn(0, program)
    run(system, handle)
    assert handle.value == 0
