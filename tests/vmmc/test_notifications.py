"""Tests for VMMC notifications: handlers, blocking, queueing, waiting."""

import pytest

from repro.testbed import Rendezvous, make_system
from repro.vmmc import attach

PAGE = 4096


@pytest.fixture
def system():
    return make_system()


@pytest.fixture
def rdv(system):
    return Rendezvous(system)


def _export_with_handler(system, rdv, key, events):
    """Receiver program factory: export with a recording handler."""
    def receiver(proc):
        ep = attach(system, proc)
        def handler(buffer, page, size):
            events.append((proc.sim.now, size))
        buf = yield from ep.export_new(PAGE, handler=handler)
        rdv.put(key, (proc.node.node_id, buf.export_id))
        delivered = yield from ep.wait_notification()
        return delivered

    return receiver


def test_notify_send_invokes_handler(system, rdv):
    events = []

    def sender(proc):
        ep = attach(system, proc)
        node, xid = yield rdv.get("x")
        imported = yield from ep.import_buffer(node, xid)
        src = ep.alloc_buffer(PAGE)
        yield from proc.write(src, b"notify me please")
        yield from ep.send(imported, src, 16, notify=True)

    r = system.spawn(1, _export_with_handler(system, rdv, "x", events))
    s = system.spawn(0, sender)
    system.run_processes([r, s])
    assert len(events) == 1
    assert events[0][1] == 16
    assert len(r.value) == 1


def test_send_without_notify_does_not_interrupt(system, rdv):
    """Sender flag unset: data arrives but no notification fires —
    'an interrupt is generated ... if both the sender-specified and
    receiver-specified flags have been set'."""
    events = []

    def receiver(proc):
        ep = attach(system, proc)
        buf = yield from ep.export_new(
            PAGE, handler=lambda b, p, s: events.append(s)
        )
        rdv.put("x", (proc.node.node_id, buf.export_id))
        yield from proc.poll(buf.vaddr, 4, lambda b: b == b"data")
        delivered = yield from ep.dispatch_notifications()
        return delivered

    def sender(proc):
        ep = attach(system, proc)
        node, xid = yield rdv.get("x")
        imported = yield from ep.import_buffer(node, xid)
        src = ep.alloc_buffer(PAGE)
        yield from proc.write(src, b"data")
        yield from ep.send(imported, src, 4, notify=False)

    r = system.spawn(1, receiver)
    s = system.spawn(0, sender)
    system.run_processes([r, s])
    assert events == []
    assert r.value == []


def test_handlerless_export_receives_no_notifications(system, rdv):
    """'Notifications only take effect when a handler has been specified.'"""
    def receiver(proc):
        ep = attach(system, proc)
        buf = yield from ep.export_new(PAGE)  # no handler
        rdv.put("x", (proc.node.node_id, buf.export_id))
        yield from proc.poll(buf.vaddr, 4, lambda b: b == b"data")
        delivered = yield from ep.dispatch_notifications()
        return delivered, buf.notifications_received

    def sender(proc):
        ep = attach(system, proc)
        node, xid = yield rdv.get("x")
        imported = yield from ep.import_buffer(node, xid)
        src = ep.alloc_buffer(PAGE)
        yield from proc.write(src, b"data")
        # notify=True, but the receiver page's interrupt flag is off.
        yield from ep.send(imported, src, 4, notify=True)

    r = system.spawn(1, receiver)
    s = system.spawn(0, sender)
    system.run_processes([r, s])
    delivered, count = r.value
    assert delivered == []
    assert count == 0


def test_blocked_notifications_queue_and_deliver_on_unblock(system, rdv):
    events = []

    def receiver(proc):
        ep = attach(system, proc)
        buf = yield from ep.export_new(
            PAGE, handler=lambda b, p, s: events.append(proc.sim.now)
        )
        rdv.put("x", (proc.node.node_id, buf.export_id))
        yield from ep.block_notifications()
        rdv.put("blocked", True)
        # Wait for both sends to land while blocked, plus the interrupt
        # latency for the notification signals to be posted.
        yield from proc.poll(buf.vaddr + 4, 4, lambda b: b == b"two!")
        yield proc.sim.timeout(system.config.interrupt_latency * 3)
        assert events == []  # queued, not delivered
        pending = len(proc.signals.pending)
        delivered = yield from ep.unblock_notifications()
        return pending, len(delivered)

    def sender(proc):
        ep = attach(system, proc)
        node, xid = yield rdv.get("x")
        yield rdv.get("blocked")
        imported = yield from ep.import_buffer(node, xid)
        src = ep.alloc_buffer(PAGE)
        yield from proc.write(src, b"one!two!")
        yield from ep.send(imported, src, 4, offset=0, notify=True)
        yield from ep.send(imported, src + 4, 4, offset=4, notify=True)

    r = system.spawn(1, receiver)
    s = system.spawn(0, sender)
    system.run_processes([r, s])
    pending, delivered = r.value
    assert pending == 2  # queued while blocked (unlike plain signals)
    assert delivered == 2
    assert len(events) == 2


def test_notification_charges_signal_cost(system, rdv):
    """Signal-based delivery is expensive (the paper plans to replace it);
    the dispatch time must reflect the configured signal cost."""
    events = []

    def receiver(proc):
        ep = attach(system, proc)
        buf = yield from ep.export_new(
            PAGE, handler=lambda b, p, s: events.append(s)
        )
        rdv.put("x", (proc.node.node_id, buf.export_id))
        yield proc.signals.wait()
        before = proc.sim.now
        yield from ep.dispatch_notifications()
        return proc.sim.now - before

    def sender(proc):
        ep = attach(system, proc)
        node, xid = yield rdv.get("x")
        imported = yield from ep.import_buffer(node, xid)
        src = ep.alloc_buffer(PAGE)
        yield from proc.write(src, b"ping")
        yield from ep.send(imported, src, 4, notify=True)

    r = system.spawn(1, receiver)
    s = system.spawn(0, sender)
    system.run_processes([r, s])
    assert r.value >= system.config.costs.signal_delivery


def test_fast_notification_mode_is_cheaper(system, rdv):
    """The projected active-message-style reimplementation (ablation)."""
    durations = {}
    for fast in (False, True):
        system_local = make_system()
        rdv_local = Rendezvous(system_local)

        def receiver(proc, fast=fast, system=system_local, rdv=rdv_local):
            ep = attach(system, proc, fast_notifications=fast)
            buf = yield from ep.export_new(PAGE, handler=lambda b, p, s: None)
            rdv.put("x", (proc.node.node_id, buf.export_id))
            yield proc.signals.wait()
            before = proc.sim.now
            yield from ep.dispatch_notifications()
            return proc.sim.now - before

        def sender(proc, system=system_local, rdv=rdv_local):
            ep = attach(system, proc)
            node, xid = yield rdv.get("x")
            imported = yield from ep.import_buffer(node, xid)
            src = ep.alloc_buffer(PAGE)
            yield from proc.write(src, b"ping")
            yield from ep.send(imported, src, 4, notify=True)

        r = system_local.spawn(1, receiver)
        s = system_local.spawn(0, sender)
        system_local.run_processes([r, s])
        durations[fast] = r.value
    assert durations[True] < durations[False] / 5
