"""VMMC semantic edge cases from Section 2's model description."""

import pytest

from repro.kernel import MappingError
from repro.testbed import Rendezvous, make_system
from repro.vmmc import attach

PAGE = 4096


@pytest.fixture
def system():
    return make_system()


@pytest.fixture
def rdv(system):
    return Rendezvous(system)


def test_unexport_waits_for_pending_messages(system, rdv):
    """'Before completing, these calls wait for all currently pending
    messages using the mapping to be delivered.'  A send racing an
    unexport either lands fully before the unexport completes or is
    refused — never half-delivered."""
    def receiver(proc):
        ep = attach(system, proc)
        buf = yield from ep.export_new(PAGE)
        rdv.put("x", (proc.node.node_id, buf.export_id))
        yield rdv.get("sent")
        yield from ep.unexport(buf)
        # After unexport returns, whatever was in flight has landed.
        return proc.peek(buf.vaddr, 8)

    def sender(proc):
        ep = attach(system, proc)
        node, xid = yield rdv.get("x")
        imported = yield from ep.import_buffer(node, xid)
        src = ep.alloc_buffer(PAGE)
        yield from proc.write(src, b"in-flite")
        yield from ep.send(imported, src, 8)
        rdv.put("sent", True)

    r = system.spawn(1, receiver)
    s = system.spawn(0, sender)
    system.run_processes([r, s])
    assert r.value == b"in-flite"


def test_unimport_waits_for_pending_sends(system, rdv):
    """unimport drains this sender's outgoing traffic first."""
    def receiver(proc):
        ep = attach(system, proc)
        buf = yield from ep.export_new(2 * PAGE)
        rdv.put("x", (proc.node.node_id, buf.export_id))
        yield rdv.get("done")
        return proc.peek(buf.vaddr, 16)

    def sender(proc):
        ep = attach(system, proc)
        node, xid = yield rdv.get("x")
        imported = yield from ep.import_buffer(node, xid)
        src = ep.alloc_buffer(2 * PAGE)
        yield from proc.write(src, b"last message!!!!")
        yield from ep.send(imported, src, 16)
        yield from ep.unimport(imported)
        # A short settle so the in-flight packet (already drained from
        # the NIC when unimport returned) lands at the receiver.
        yield proc.sim.timeout(50.0)
        rdv.put("done", True)

    r = system.spawn(1, receiver)
    s = system.spawn(0, sender)
    system.run_processes([r, s])
    assert r.value == b"last message!!!!"


def test_double_bind_same_pages_rejected(system, rdv):
    def receiver(proc):
        ep = attach(system, proc)
        buf = yield from ep.export_new(PAGE)
        rdv.put("x", (proc.node.node_id, buf.export_id))

    def sender(proc):
        ep = attach(system, proc)
        node, xid = yield rdv.get("x")
        imported = yield from ep.import_buffer(node, xid)
        local = ep.alloc_buffer(PAGE)
        yield from ep.bind(local, imported)
        with pytest.raises(ValueError):
            yield from ep.bind(local, imported)
        return "rejected"

    r = system.spawn(1, receiver)
    s = system.spawn(0, sender)
    system.run_processes([r, s])
    assert s.value == "rejected"


def test_rebind_after_unbind(system, rdv):
    def receiver(proc):
        ep = attach(system, proc)
        buf = yield from ep.export_new(PAGE)
        rdv.put("x", (proc.node.node_id, buf.export_id))
        yield from proc.poll(buf.vaddr, 4, lambda b: b == b"2nd!")

    def sender(proc):
        ep = attach(system, proc)
        node, xid = yield rdv.get("x")
        imported = yield from ep.import_buffer(node, xid)
        local = ep.alloc_buffer(PAGE)
        binding = yield from ep.bind(local, imported)
        yield from proc.write(local, b"1st!")
        yield from ep.unbind(binding)
        binding2 = yield from ep.bind(local, imported)
        yield from proc.write(local, b"2nd!")
        return binding2.active

    r = system.spawn(1, receiver)
    s = system.spawn(0, sender)
    system.run_processes([r, s])
    assert s.value is True


def test_set_handler_toggles_interrupt_flags(system):
    def program(proc):
        ep = attach(system, proc)
        buf = yield from ep.export_new(PAGE)
        ipt = proc.node.nic.ipt
        frame = buf.record.frames[0]
        assert not ipt.wants_interrupt(frame)
        yield from ep.set_handler(buf, lambda b, p, s: None)
        on = ipt.wants_interrupt(frame)
        yield from ep.set_handler(buf, None)
        off = ipt.wants_interrupt(frame)
        return on, off

    handle = system.spawn(0, program)
    system.run_processes([handle])
    assert handle.value == (True, False)


def test_discarded_notifications_when_not_accepting(system, rdv):
    """'they can be accepted or discarded (on a per-buffer basis)'."""
    def receiver(proc):
        ep = attach(system, proc)
        buf = yield from ep.export_new(PAGE, handler=lambda b, p, s: None)
        proc.signals.accepting = False
        rdv.put("x", (proc.node.node_id, buf.export_id))
        yield from proc.poll(buf.vaddr, 4, lambda b: b == b"ping")
        yield proc.sim.timeout(100.0)
        return proc.signals.discarded_count, len(proc.signals.pending)

    def sender(proc):
        ep = attach(system, proc)
        node, xid = yield rdv.get("x")
        imported = yield from ep.import_buffer(node, xid)
        src = ep.alloc_buffer(PAGE)
        yield from proc.write(src, b"ping")
        yield from ep.send(imported, src, 4, notify=True)

    r = system.spawn(1, receiver)
    s = system.spawn(0, sender)
    system.run_processes([r, s])
    discarded, pending = r.value
    assert discarded == 1
    assert pending == 0


def test_import_of_unexported_buffer_fails_cleanly(system, rdv):
    def receiver(proc):
        ep = attach(system, proc)
        buf = yield from ep.export_new(PAGE)
        yield from ep.unexport(buf)
        rdv.put("gone", (proc.node.node_id, buf.export_id))

    def sender(proc):
        ep = attach(system, proc)
        node, xid = yield rdv.get("gone")
        with pytest.raises(MappingError):
            yield from ep.import_buffer(node, xid)
        return "clean"

    r = system.spawn(1, receiver)
    s = system.spawn(0, sender)
    system.run_processes([r, s])
    assert s.value == "clean"
