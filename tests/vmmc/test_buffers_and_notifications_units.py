"""Unit tests for the buffer handles and notification center plumbing."""

import pytest

from repro.testbed import make_system
from repro.vmmc import attach
from repro.vmmc.notifications import NotificationCenter

PAGE = 4096


def test_exported_buffer_accessors():
    system = make_system()

    def program(proc):
        ep = attach(system, proc)
        buf = yield from ep.export_new(2 * PAGE)
        return buf

    handle = system.spawn(0, program)
    system.run_processes([handle])
    buf = handle.value
    assert buf.nbytes == 2 * PAGE
    assert buf.node_id == 0
    assert buf.active
    assert buf.address_of(0) == buf.vaddr
    assert buf.address_of(100) == buf.vaddr + 100
    with pytest.raises(ValueError):
        buf.address_of(2 * PAGE)
    with pytest.raises(ValueError):
        buf.address_of(-1)


def test_notification_center_register_unregister():
    system = make_system()

    def program(proc):
        ep = attach(system, proc)
        buf = yield from ep.export_new(PAGE, handler=lambda b, p, s: None)
        center: NotificationCenter = ep.notifications
        assert buf.export_id in center._by_export_id
        center.unregister(buf)
        assert buf.export_id not in center._by_export_id
        center.unregister(buf)  # idempotent
        return "ok"

    handle = system.spawn(0, program)
    system.run_processes([handle])
    assert handle.value == "ok"


def test_dispatch_skips_signal_for_unknown_export():
    """A queued signal whose export was unregistered dispatches to
    nothing — no crash, no cost for a handler that is gone."""
    system = make_system()

    def program(proc):
        from repro.kernel.signals import Signal

        ep = attach(system, proc)
        proc.signals.post(Signal("vmmc-notify", payload=(999, 0, 4)))
        before = proc.sim.now
        delivered = yield from ep.dispatch_notifications()
        return delivered, proc.sim.now - before

    handle = system.spawn(0, program)
    system.run_processes([handle])
    delivered, elapsed = handle.value
    assert delivered == []
    assert elapsed == 0.0


def test_endpoint_counters_track_sends():
    system = make_system()
    from repro.testbed import Rendezvous

    rdv = Rendezvous(system)

    def receiver(proc):
        ep = attach(system, proc)
        buf = yield from ep.export_new(PAGE)
        rdv.put("x", (proc.node.node_id, buf.export_id))

    def sender(proc):
        ep = attach(system, proc)
        node, xid = yield rdv.get("x")
        imported = yield from ep.import_buffer(node, xid)
        src = ep.alloc_buffer(PAGE)
        yield from ep.send(imported, src, 64)
        yield from ep.send(imported, src, 128)
        return ep.sends, ep.bytes_sent

    r = system.spawn(1, receiver)
    s = system.spawn(0, sender)
    system.run_processes([r, s])
    assert s.value == (2, 192)
