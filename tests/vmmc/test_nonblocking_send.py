"""Tests for the non-blocking deliberate-update send."""

import pytest

from repro.testbed import Rendezvous, make_system
from repro.vmmc import VmmcAlignmentError, attach

PAGE = 4096


@pytest.fixture
def system():
    return make_system()


@pytest.fixture
def rdv(system):
    return Rendezvous(system)


def test_nonblocking_returns_before_source_read(system, rdv):
    """The call returns after initiation; the completion event fires
    later, once the DU engine has drained the source."""
    def receiver(proc):
        ep = attach(system, proc)
        buf = yield from ep.export_new(2 * PAGE)
        rdv.put("x", (proc.node.node_id, buf.export_id))
        yield from proc.poll(buf.vaddr + PAGE - 4, 4, lambda b: b != b"\x00" * 4)
        return proc.peek(buf.vaddr, 16)

    def sender(proc):
        ep = attach(system, proc)
        node, xid = yield rdv.get("x")
        imported = yield from ep.import_buffer(node, xid)
        src = ep.alloc_buffer(2 * PAGE)
        proc.poke(src, b"nonblocking-send" + bytes(PAGE - 16))
        proc.poke(src + PAGE - 4, b"\x99\x99\x99\x99")
        initiated_at = proc.sim.now
        done = yield from ep.send_nonblocking(imported, src, PAGE)
        returned_at = proc.sim.now
        assert not done.triggered  # source not yet drained
        yield from ep.wait_send(done)
        drained_at = proc.sim.now
        return returned_at - initiated_at, drained_at - returned_at

    r = system.spawn(1, receiver)
    s = system.spawn(0, sender)
    system.run_processes([r, s])
    call_time, drain_time = s.value
    # Initiation is a few microseconds; draining a page through the
    # EISA engine takes tens more.
    assert call_time < 5.0
    assert drain_time > 30.0
    assert r.value == b"nonblocking-send"


def test_ordering_with_blocking_sends_preserved(system, rdv):
    def receiver(proc):
        ep = attach(system, proc)
        buf = yield from ep.export_new(2 * PAGE)
        rdv.put("x", (proc.node.node_id, buf.export_id))
        yield from proc.poll(buf.vaddr + PAGE, 4, lambda b: b == b"flag")
        return proc.peek(buf.vaddr, 8)

    def sender(proc):
        ep = attach(system, proc)
        node, xid = yield rdv.get("x")
        imported = yield from ep.import_buffer(node, xid)
        src = ep.alloc_buffer(2 * PAGE)
        proc.poke(src, b"payload!")
        proc.poke(src + PAGE, b"flag")
        done = yield from ep.send_nonblocking(imported, src, 8)
        # Blocking send of the flag, issued immediately after: it must
        # not overtake the non-blocking payload.
        yield from ep.send(imported, src + PAGE, 4, offset=PAGE)
        yield done

    r = system.spawn(1, receiver)
    s = system.spawn(0, sender)
    system.run_processes([r, s])
    assert r.value == b"payload!"


def test_modifying_source_before_completion_is_hazardous(system, rdv):
    """The documented hazard: scribbling on the source buffer before
    the completion event means the transfer carries the new bytes."""
    def receiver(proc):
        ep = attach(system, proc)
        buf = yield from ep.export_new(PAGE)
        rdv.put("x", (proc.node.node_id, buf.export_id))
        yield from proc.poll(buf.vaddr + PAGE - 4, 4, lambda b: b == b"END!")
        return proc.peek(buf.vaddr + 2048, 8)

    def sender(proc):
        ep = attach(system, proc)
        node, xid = yield rdv.get("x")
        imported = yield from ep.import_buffer(node, xid)
        src = ep.alloc_buffer(PAGE)
        proc.poke(src, b"A" * PAGE)
        proc.poke(src + PAGE - 4, b"END!")
        done = yield from ep.send_nonblocking(imported, src, PAGE)
        # Scribble on a later part of the source while the DU engine is
        # still reading (it reads ~1 KB chunks through the EISA bus).
        proc.poke(src + 2048, b"SCRIBBLE")
        yield done

    r = system.spawn(1, receiver)
    s = system.spawn(0, sender)
    system.run_processes([r, s])
    assert r.value == b"SCRIBBLE"  # the hazard, observed


def test_alignment_still_enforced(system, rdv):
    def receiver(proc):
        ep = attach(system, proc)
        buf = yield from ep.export_new(PAGE)
        rdv.put("x", (proc.node.node_id, buf.export_id))

    def sender(proc):
        ep = attach(system, proc)
        node, xid = yield rdv.get("x")
        imported = yield from ep.import_buffer(node, xid)
        src = ep.alloc_buffer(PAGE)
        with pytest.raises(VmmcAlignmentError):
            yield from ep.send_nonblocking(imported, src + 1, 8)
        return "checked"

    r = system.spawn(1, receiver)
    s = system.spawn(0, sender)
    system.run_processes([r, s])
    assert s.value == "checked"
