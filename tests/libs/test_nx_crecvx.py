"""Tests for crecvx (source-selective receive)."""

from repro.libs.nx import VARIANTS, nx_world
from repro.libs.nx.api import ANY_NODE
from repro.testbed import make_system

PAGE = 4096


def run_world(programs, **kwargs):
    system = make_system()
    handles = nx_world(system, programs, variant=VARIANTS["AU-1copy"], **kwargs)
    system.run_processes(handles)
    return [h.value for h in handles]


def test_crecvx_selects_by_source():
    """Two senders, same type: the receiver picks by rank, regardless
    of arrival order."""
    def rank0(nx):
        dst = nx.proc.space.mmap(PAGE)
        # Receive rank 2's message first, even though rank 1's will
        # almost certainly arrive first (it sends immediately).
        yield from nx.crecvx(7, dst, PAGE, 2)
        first = nx.proc.peek(dst, 6)
        yield from nx.crecvx(7, dst, PAGE, 1)
        second = nx.proc.peek(dst, 6)
        return first, second

    def rank1(nx):
        src = nx.proc.space.mmap(PAGE)
        nx.proc.poke(src, b"from-1")
        yield from nx.csend(7, src, 6, to=0)

    def rank2(nx):
        yield from nx.proc.compute(2000.0)  # deliberately late
        src = nx.proc.space.mmap(PAGE)
        nx.proc.poke(src, b"from-2")
        yield from nx.csend(7, src, 6, to=0)

    results = run_world([rank0, rank1, rank2])
    assert results[0] == (b"from-2", b"from-1")


def test_crecvx_any_node_behaves_like_crecv():
    def sender(nx):
        src = nx.proc.space.mmap(PAGE)
        nx.proc.poke(src, b"anyone")
        yield from nx.csend(3, src, 6, to=1)

    def receiver(nx):
        dst = nx.proc.space.mmap(PAGE)
        size = yield from nx.crecvx(3, dst, PAGE, ANY_NODE)
        return size, nx.infonode()

    results = run_world([sender, receiver])
    assert results[1] == (6, 0)


def test_crecvx_with_any_type_but_fixed_source():
    def rank0(nx):
        dst = nx.proc.space.mmap(PAGE)
        yield from nx.crecvx(-1, dst, PAGE, 2)
        return nx.infonode(), nx.infotype()

    def rank1(nx):
        src = nx.proc.space.mmap(PAGE)
        yield from nx.csend(11, src, 4, to=0)

    def rank2(nx):
        yield from nx.proc.compute(1500.0)
        src = nx.proc.space.mmap(PAGE)
        yield from nx.csend(22, src, 4, to=0)

    results = run_world([rank0, rank1, rank2])
    assert results[0] == (2, 22)
