"""Pipelined (multi-call window) SHRIMP RPC: submit/finish, ordering,
flow control, and zero-overhead equivalence at window=1.

The pipelining contract under test (docs/PROTOCOLS.md):

* a binding opened with ``window=W`` may keep up to W calls in flight,
  each in its own frame of the replicated buffer;
* the server serves strictly in sequence order (the binding FIFO is the
  program order), but the client may *finish* tickets in any order;
* submitting an eighth call into a full 4-deep window first harvests
  the frame's occupant (sliding-window flow control), so overcommitting
  is safe, just not faster;
* ``window=1`` is byte-identical to the unwindowed protocol — same
  frames, same timing.
"""

import pytest

from repro.libs.shrimp_rpc import SrpcError, compile_stubs
from repro.testbed import make_system

PIPE_IDL = """
program Pipe version 1 {
    int add(in int a, in int b);
    int negate(in int a);
    string<64> label(in int a);
}
"""


class PipeImpl:
    """Records dispatch order so tests can assert server-side FIFO."""

    def __init__(self):
        self.order = []

    def add(self, a, b):
        self.order.append(("add", a, b))
        return a + b
        yield  # pragma: no cover

    def negate(self, a):
        self.order.append(("negate", a))
        return -a
        yield  # pragma: no cover

    def label(self, a):
        self.order.append(("label", a))
        return "value-%d" % a
        yield  # pragma: no cover


def run_pipe(client_body, window=4, max_calls=None):
    """One client binding against one server handler, both windowed."""
    system = make_system()
    client_cls, server_cls, _idl = compile_stubs(PIPE_IDL)
    impl = PipeImpl()
    state = {"impl": impl}

    def server(proc):
        srv = server_cls(system, proc, impl, window=window)
        yield from srv.serve_binding(port=9)
        yield from srv.run(max_calls=max_calls)
        state["served"] = srv.calls_served

    def client(proc):
        cl = client_cls(system, proc, window=window)
        yield from cl.bind(1, port=9)
        state["client"] = cl
        state["result"] = yield from client_body(proc, cl)
        yield from cl.drain()

    s = system.spawn(1, server)
    c = system.spawn(0, client)
    system.run_processes([s, c])
    return state


def test_window_validation():
    system = make_system()
    client_cls, _server_cls, _ = compile_stubs(PIPE_IDL)

    def client(proc):
        with pytest.raises(SrpcError):
            client_cls(system, proc, window=0)
        with pytest.raises(SrpcError):
            client_cls(system, proc, window=65)
        return
        yield  # pragma: no cover

    system.run_processes([system.spawn(0, client)])


def test_submit_then_finish_in_order():
    def body(proc, cl):
        t1 = yield from cl.add_begin(1, 2)
        t2 = yield from cl.add_begin(3, 4)
        r1 = yield from cl.finish(t1)
        r2 = yield from cl.finish(t2)
        return [r1, r2]

    state = run_pipe(body, window=4, max_calls=2)
    assert state["result"] == [3, 7]
    assert state["served"] == 2


def test_out_of_order_finish():
    """Replies are matched by sequence-numbered frame, not arrival
    order: finishing the newest ticket first must not disturb the
    others' results."""
    def body(proc, cl):
        tickets = []
        for i in range(4):
            t = yield from cl.add_begin(i, 10 * i)
            tickets.append(t)
        results = []
        for t in reversed(tickets):
            r = yield from cl.finish(t)
            results.append(r)
        return results

    state = run_pipe(body, window=4, max_calls=4)
    assert state["result"] == [33, 22, 11, 0]


def test_mixed_procedures_in_flight():
    """Different procedures share the window; each ticket decodes with
    its own procedure's reply shape."""
    def body(proc, cl):
        ta = yield from cl.add_begin(20, 22)
        tn = yield from cl.negate_begin(5)
        tl = yield from cl.label_begin(7)
        label = yield from cl.finish(tl)
        neg = yield from cl.finish(tn)
        add = yield from cl.finish(ta)
        return [add, neg, label]

    state = run_pipe(body, window=4, max_calls=3)
    assert state["result"] == [42, -5, "value-7"]


def test_server_dispatches_in_sequence_order():
    def body(proc, cl):
        tickets = []
        for i in range(6):
            t = yield from cl.add_begin(i, 0)
            tickets.append(t)
        results = []
        for t in reversed(tickets):
            results.append((yield from cl.finish(t)))
        return results

    state = run_pipe(body, window=3, max_calls=6)
    assert state["result"] == [5, 4, 3, 2, 1, 0]
    # The server saw program order even though finishes were reversed.
    assert state["impl"].order == [("add", i, 0) for i in range(6)]


def test_overcommit_window_blocks_not_breaks():
    """Submitting more calls than the window holds forces a harvest of
    the reused frame — results still come back complete and correct."""
    def body(proc, cl):
        tickets = []
        for i in range(8):
            tickets.append((yield from cl.add_begin(i, 100)))
        results = []
        for t in tickets:
            results.append((yield from cl.finish(t)))
        return results

    state = run_pipe(body, window=2, max_calls=8)
    assert state["result"] == [100 + i for i in range(8)]
    assert state["client"].inflight_high_water <= 2


def test_drain_completes_outstanding():
    def body(proc, cl):
        yield from cl.add_begin(1, 1)
        yield from cl.add_begin(2, 2)
        yield from cl.drain()
        assert not cl._frames
        return "drained"

    state = run_pipe(body, window=4, max_calls=2)
    assert state["result"] == "drained"


def test_sync_calls_still_work_on_windowed_binding():
    """A plain call on a windowed binding drains the pipeline first and
    then runs synchronously — the two styles compose."""
    def body(proc, cl):
        t = yield from cl.add_begin(1, 2)
        sync = yield from cl.add(10, 20)
        pipelined = yield from cl.finish(t)
        return [sync, pipelined]

    state = run_pipe(body, window=4, max_calls=2)
    assert state["result"] == [30, 3]


def test_depth_statistics():
    def body(proc, cl):
        tickets = []
        for i in range(4):
            tickets.append((yield from cl.add_begin(i, 0)))
        for t in tickets:
            yield from cl.finish(t)
        return None

    state = run_pipe(body, window=4, max_calls=4)
    cl = state["client"]
    assert cl.submits == 4
    assert cl.inflight_high_water == 4
    assert cl.mean_depth > 1.0


def test_finish_is_idempotent_per_ticket():
    """A ticket already finished returns its cached decode — replayed
    harvests never hit the wire twice."""
    def body(proc, cl):
        t = yield from cl.add_begin(6, 7)
        first = yield from cl.finish(t)
        again = yield from cl.finish(t)
        return [first, again]

    state = run_pipe(body, window=4, max_calls=1)
    assert state["result"] == [13, 13]


def test_window_one_matches_unwindowed_timing():
    """window=1 is the zero-overhead mode: the same call sequence takes
    exactly as long as on an unwindowed binding."""
    def elapsed(window):
        system = make_system()
        client_cls, server_cls, _ = compile_stubs(PIPE_IDL)
        timing = {}

        def server(proc):
            srv = server_cls(system, proc, PipeImpl(), window=window)
            yield from srv.serve_binding(port=3)
            yield from srv.run(max_calls=5)

        def client(proc):
            cl = client_cls(system, proc, window=window)
            yield from cl.bind(1, port=3)
            start = proc.sim.now
            for i in range(5):
                yield from cl.add(i, i)
            timing["us"] = proc.sim.now - start

        system.run_processes([system.spawn(1, server),
                              system.spawn(0, client)])
        return timing["us"]

    base = elapsed(1)
    # Construct the unwindowed binding by omitting the kwarg entirely.
    system = make_system()
    client_cls, server_cls, _ = compile_stubs(PIPE_IDL)
    timing = {}

    def server(proc):
        srv = server_cls(system, proc, PipeImpl())
        yield from srv.serve_binding(port=3)
        yield from srv.run(max_calls=5)

    def client(proc):
        cl = client_cls(system, proc)
        yield from cl.bind(1, port=3)
        start = proc.sim.now
        for i in range(5):
            yield from cl.add(i, i)
        timing["us"] = proc.sim.now - start

    system.run_processes([system.spawn(1, server), system.spawn(0, client)])
    assert base == timing["us"]


def test_pipelining_overlaps_round_trips():
    """The point of the window: W calls submitted together complete in
    less wall-clock than W sequential round trips."""
    def sequential(proc, cl):
        start = proc.sim.now
        for i in range(4):
            yield from cl.add(i, i)
        return proc.sim.now - start

    def pipelined(proc, cl):
        start = proc.sim.now
        tickets = []
        for i in range(4):
            tickets.append((yield from cl.add_begin(i, i)))
        for t in tickets:
            yield from cl.finish(t)
        return proc.sim.now - start

    seq_us = run_pipe(sequential, window=1, max_calls=4)["result"]
    pipe_us = run_pipe(pipelined, window=4, max_calls=4)["result"]
    assert pipe_us < seq_us
