"""Tests for the NX global operations (gisum/gdsum/gihigh/.../gcol)."""

import pytest

from repro.hardware.config import MachineConfig
from repro.libs.nx import VARIANTS, nx_world
from repro.libs.nx.globals import gcol, gdhigh, gdlow, gdsum, gihigh, gilow, gisum
from repro.testbed import make_system

PAGE = 4096


def run_world(programs, config=None):
    system = make_system(config)
    handles = nx_world(system, programs, variant=VARIANTS["AU-1copy"])
    system.run_processes(handles)
    return [h.value for h in handles]


def test_gisum_every_rank_gets_total():
    def program(nx):
        result = yield from gisum(nx, [nx.mynode() + 1, 100])
        return result

    results = run_world([program] * 4)
    assert all(r == [1 + 2 + 3 + 4, 400] for r in results)


def test_gdsum_doubles():
    def program(nx):
        result = yield from gdsum(nx, [0.5 * (nx.mynode() + 1)])
        return result

    results = run_world([program] * 4)
    assert all(r == [pytest.approx(5.0)] for r in results)


def test_gihigh_and_gilow():
    def program(nx):
        high = yield from gihigh(nx, [nx.mynode() * 7, -nx.mynode()])
        low = yield from gilow(nx, [nx.mynode() * 7, -nx.mynode()])
        return high, low

    results = run_world([program] * 4)
    assert all(r == ([21, 0], [0, -3]) for r in results)


def test_gdhigh_and_gdlow():
    def program(nx):
        high = yield from gdhigh(nx, [float(nx.mynode())])
        low = yield from gdlow(nx, [float(nx.mynode())])
        return high[0], low[0]

    results = run_world([program] * 4)
    assert all(r == (3.0, 0.0) for r in results)


def test_gisum_on_sixteen_nodes():
    def program(nx):
        result = yield from gisum(nx, [1])
        return result[0]

    results = run_world([program] * 16, config=MachineConfig.sixteen_node())
    assert results == [16] * 16


def test_gcol_concatenates_in_rank_order():
    def program(nx):
        buf = nx.proc.space.mmap(PAGE)
        nx.proc.poke(buf, bytes([0xA0 + nx.mynode()]) * 8)
        result = yield from gcol(nx, buf, 8)
        return result

    results = run_world([program] * 4)
    expected = b"".join(bytes([0xA0 + r]) * 8 for r in range(4))
    assert all(r == expected for r in results)


def test_negative_values_and_large_ints():
    def program(nx):
        result = yield from gisum(nx, [-(1 << 40), 1 << 40])
        return result

    results = run_world([program] * 4)
    assert all(r == [-(1 << 42), 1 << 42] for r in results)
