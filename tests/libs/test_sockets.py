"""Stream sockets library tests: rings, connections, stream semantics."""

import pytest

from repro.libs.sockets import SOCKET_VARIANTS, RecordRing, SocketError, SocketLib
from repro.libs.sockets.circular import record_bytes
from repro.testbed import make_system

PAGE = 4096


class TestRecordRing:
    def test_space_accounting(self):
        ring = RecordRing(1024)
        assert ring.free == 1024
        ring.place_record(100)
        assert ring.used == record_bytes(100) == 104  # 4-byte header + payload
        ring.consume_record(100)
        assert ring.used == 0

    def test_padding_keeps_word_alignment(self):
        ring = RecordRing(1024)
        for payload in (1, 2, 3, 5, 7):
            header, segments, _ = ring.place_record(payload)
            assert all(seg.ring_offset % 4 == 0 for seg in segments)
            ring.consume_record(payload)

    def test_wraparound_splits_segments(self):
        ring = RecordRing(256)
        ring.place_record(200)
        ring.consume_record(200)
        _, segments, _ = ring.place_record(100)  # wraps past 256
        assert len(segments) == 2
        assert sum(s.length for s in segments) == 100

    def test_overfill_rejected(self):
        ring = RecordRing(128)
        with pytest.raises(ValueError):
            ring.place_record(200)

    def test_max_payload_fitting(self):
        ring = RecordRing(128)
        assert ring.max_payload_fitting() == 124
        ring.place_record(60)
        assert ring.max_payload_fitting() == 128 - 64 - 4

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            RecordRing(130)  # not a word multiple... (130 % 4 != 0)


def echo_pair(system, variant, client_body, server_body=None, port=7):
    """Spawn a server (accept) on node 1 and a client on node 0."""
    results = {}

    def server(proc):
        lib = SocketLib(system, proc, variant=SOCKET_VARIANTS[variant])
        listener = lib.listen(port)
        sock = yield from listener.accept()
        result = yield from server_body(proc, sock)
        results["server"] = result

    def client(proc):
        lib = SocketLib(system, proc, variant=SOCKET_VARIANTS[variant])
        sock = yield from lib.connect(1, port)
        result = yield from client_body(proc, sock)
        results["client"] = result

    s = system.spawn(1, server)
    c = system.spawn(0, client)
    system.run_processes([s, c])
    return results


def default_echo_server(total_bytes):
    def body(proc, sock):
        buf = proc.space.mmap(max(total_bytes, PAGE))
        got = yield from sock.recv_exactly(buf, total_bytes)
        yield from sock.send(buf, got)
        yield from sock.close()
        return got

    return body


@pytest.mark.parametrize("variant", ["AU-2copy", "DU-1copy", "DU-2copy"])
def test_echo_roundtrip_all_variants(variant):
    system = make_system()
    payload = bytes(range(256)) * 4  # 1 KB

    def client_body(proc, sock):
        src = proc.space.mmap(PAGE)
        dst = proc.space.mmap(PAGE)
        proc.poke(src, payload)
        yield from sock.send(src, len(payload))
        got = yield from sock.recv_exactly(dst, len(payload))
        yield from sock.close()
        return proc.peek(dst, got)

    results = echo_pair(system, variant, client_body,
                        default_echo_server(len(payload)))
    assert results["client"] == payload
    assert results["server"] == len(payload)


def test_large_stream_crosses_ring_capacity():
    """Stream far more data than the ring holds: flow control must cycle."""
    system = make_system()
    total = 48 * 4096  # 192 KB >> the 32 KB ring
    pattern = bytes((i * 11) % 256 for i in range(4096))

    def client_body(proc, sock):
        src = proc.space.mmap(4096)
        proc.poke(src, pattern)
        for _ in range(total // 4096):
            yield from sock.send(src, 4096)
        yield from sock.close()
        return total

    def server_body(proc, sock):
        buf = proc.space.mmap(4096)
        received = 0
        ok = True
        while True:
            got = yield from sock.recv(buf, 4096)
            if got == 0:
                break
            # Verify stream contents chunk-relative.
            start = received % 4096
            expect = (pattern * 3)[start : start + got]
            if proc.peek(buf, got) != expect:
                ok = False
            received += got
        return received, ok

    results = echo_pair(system, "DU-1copy", client_body, server_body)
    received, ok = results["server"]
    assert received == total
    assert ok


def test_unaligned_send_falls_back_but_delivers():
    system = make_system()
    payload = b"unaligned payload bytes!!"

    def client_body(proc, sock):
        region = proc.space.mmap(PAGE)
        src = region + 1  # break word alignment
        proc.poke(src, payload)
        yield from sock.send(src, len(payload))
        yield from sock.close()

    def server_body(proc, sock):
        buf = proc.space.mmap(PAGE)
        got = yield from sock.recv_exactly(buf, len(payload))
        return proc.peek(buf, got)

    results = echo_pair(system, "DU-1copy", client_body, server_body)
    assert results["server"] == payload


def test_odd_sizes_byte_exact_stream():
    """Sizes that defeat word alignment everywhere: 1, 3, 5, 7, 13 bytes."""
    system = make_system()
    sizes = [1, 3, 5, 7, 13]

    def client_body(proc, sock):
        src = proc.space.mmap(PAGE)
        for i, size in enumerate(sizes):
            proc.poke(src, bytes([65 + i]) * size)
            yield from sock.send(src, size)
        yield from sock.close()

    def server_body(proc, sock):
        buf = proc.space.mmap(PAGE)
        total = sum(sizes)
        got = yield from sock.recv_exactly(buf, total)
        return proc.peek(buf, got)

    results = echo_pair(system, "DU-2copy", client_body, server_body)
    expected = b"".join(bytes([65 + i]) * s for i, s in enumerate(sizes))
    assert results["server"] == expected


def test_recv_returns_available_not_waiting_for_max():
    system = make_system()

    def client_body(proc, sock):
        src = proc.space.mmap(PAGE)
        proc.poke(src, b"short")
        yield from sock.send(src, 5)
        yield from proc.compute(10000.0)
        yield from sock.close()

    def server_body(proc, sock):
        buf = proc.space.mmap(PAGE)
        got = yield from sock.recv(buf, PAGE)  # must not wait for PAGE bytes
        return got, proc.sim.now

    results = echo_pair(system, "AU-2copy", client_body, server_body)
    got, when = results["server"]
    assert got == 5
    assert when < 10000.0


def test_partial_record_consumption():
    """recv with a tiny buffer consumes one record across several calls."""
    system = make_system()

    def client_body(proc, sock):
        src = proc.space.mmap(PAGE)
        proc.poke(src, b"abcdefghij")
        yield from sock.send(src, 10)
        yield from sock.close()

    def server_body(proc, sock):
        buf = proc.space.mmap(PAGE)
        pieces = []
        for _ in range(4):
            got = yield from sock.recv(buf, 3)
            pieces.append(proc.peek(buf, got))
        return pieces

    results = echo_pair(system, "DU-1copy", client_body, server_body)
    assert results["server"] == [b"abc", b"def", b"ghi", b"j"]


def test_eof_after_peer_close():
    system = make_system()

    def client_body(proc, sock):
        src = proc.space.mmap(PAGE)
        proc.poke(src, b"last words")
        yield from sock.send(src, 10)
        yield from sock.close()

    def server_body(proc, sock):
        buf = proc.space.mmap(PAGE)
        first = yield from sock.recv_exactly(buf, 10)
        eof = yield from sock.recv(buf, 100)
        return first, eof

    results = echo_pair(system, "AU-2copy", client_body, server_body)
    assert results["server"] == (10, 0)


def test_send_on_closed_socket_raises():
    system = make_system()

    def client_body(proc, sock):
        yield from sock.close()
        src = proc.space.mmap(PAGE)
        try:
            yield from sock.send(src, 4)
        except SocketError:
            return "raised"

    def server_body(proc, sock):
        buf = proc.space.mmap(PAGE)
        got = yield from sock.recv(buf, 4)
        return got

    results = echo_pair(system, "DU-1copy", client_body, server_body)
    assert results["client"] == "raised"
    assert results["server"] == 0


def test_connect_to_nobody_blocks_forever_is_not_tested_but_two_clients_work():
    """Two sequential connections to one listener port."""
    system = make_system()
    results = {}

    def server(proc):
        lib = SocketLib(system, proc)
        listener = lib.listen(9)
        total = 0
        for _ in range(2):
            sock = yield from listener.accept()
            buf = proc.space.mmap(PAGE)
            total += yield from sock.recv_exactly(buf, 4)
            yield from sock.close()
        results["server"] = total

    def client(proc, node=0):
        lib = SocketLib(system, proc)
        sock = yield from lib.connect(1, 9)
        src = proc.space.mmap(PAGE)
        proc.poke(src, b"ping")
        yield from sock.send(src, 4)
        yield from sock.close()

    s = system.spawn(1, server)
    c1 = system.spawn(0, client)
    c2 = system.spawn(2, client)
    system.run_processes([s, c1, c2])
    assert results["server"] == 8
