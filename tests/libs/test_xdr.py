"""XDR codec tests: RFC 1014 encoding rules, plus round-trip properties."""

import struct

import pytest
from hypothesis import given, strategies as st

from repro.libs.rpc import XdrDecoder, XdrEncoder, XdrError


def roundtrip(pack, unpack, value):
    enc = XdrEncoder()
    pack(enc, value)
    data = enc.getvalue()
    assert len(data) % 4 == 0, "XDR data must be word-aligned"
    dec = XdrDecoder(data)
    result = unpack(dec)
    assert dec.done()
    return result


class TestPrimitives:
    def test_int_big_endian(self):
        enc = XdrEncoder()
        enc.pack_int(-2)
        assert enc.getvalue() == b"\xff\xff\xff\xfe"

    def test_uint_encoding(self):
        enc = XdrEncoder()
        enc.pack_uint(0xDEADBEEF)
        assert enc.getvalue() == b"\xde\xad\xbe\xef"

    def test_int_range_checked(self):
        with pytest.raises(XdrError):
            XdrEncoder().pack_int(1 << 31)
        with pytest.raises(XdrError):
            XdrEncoder().pack_uint(-1)

    def test_hyper(self):
        assert roundtrip(
            lambda e, v: e.pack_hyper(v), lambda d: d.unpack_hyper(), -(1 << 62)
        ) == -(1 << 62)

    def test_uhyper_range(self):
        with pytest.raises(XdrError):
            XdrEncoder().pack_uhyper(1 << 64)

    def test_bool(self):
        enc = XdrEncoder()
        enc.pack_bool(True)
        assert enc.getvalue() == b"\x00\x00\x00\x01"
        assert roundtrip(lambda e, v: e.pack_bool(v), lambda d: d.unpack_bool(), False) is False

    def test_bool_rejects_garbage(self):
        with pytest.raises(XdrError):
            XdrDecoder(b"\x00\x00\x00\x07").unpack_bool()

    def test_float_double(self):
        assert roundtrip(
            lambda e, v: e.pack_double(v), lambda d: d.unpack_double(), 3.140625
        ) == 3.140625
        enc = XdrEncoder()
        enc.pack_float(1.0)
        assert enc.getvalue() == struct.pack(">f", 1.0)


class TestOpaqueAndStrings:
    def test_opaque_padded_to_word(self):
        enc = XdrEncoder()
        enc.pack_opaque(b"abcde")
        data = enc.getvalue()
        assert len(data) == 4 + 8  # length word + 5 bytes padded to 8
        assert data[4:9] == b"abcde"
        assert data[9:12] == b"\x00\x00\x00"

    def test_fixed_opaque_requires_exact_length(self):
        with pytest.raises(XdrError):
            XdrEncoder().pack_fixed_opaque(b"abc", 4)

    def test_string_utf8(self):
        assert roundtrip(
            lambda e, v: e.pack_string(v), lambda d: d.unpack_string(), "héllo"
        ) == "héllo"

    def test_opaque_bound_enforced(self):
        enc = XdrEncoder()
        enc.pack_opaque(b"0123456789")
        with pytest.raises(XdrError):
            XdrDecoder(enc.getvalue()).unpack_opaque(max_length=5)

    def test_truncated_opaque_detected(self):
        enc = XdrEncoder()
        enc.pack_uint(100)  # claims 100 bytes, provides none
        with pytest.raises(XdrError):
            XdrDecoder(enc.getvalue()).unpack_opaque()


class TestComposites:
    def test_array_roundtrip(self):
        values = [1, -5, 1 << 20]
        got = roundtrip(
            lambda e, v: e.pack_array(v, XdrEncoder.pack_int),
            lambda d: d.unpack_array(XdrDecoder.unpack_int),
            values,
        )
        assert got == values

    def test_fixed_array(self):
        enc = XdrEncoder()
        enc.pack_fixed_array([1, 2], XdrEncoder.pack_uint)
        assert len(enc.getvalue()) == 8  # no length prefix

    def test_array_bound(self):
        enc = XdrEncoder()
        enc.pack_array([0] * 10, XdrEncoder.pack_int)
        with pytest.raises(XdrError):
            XdrDecoder(enc.getvalue()).unpack_array(XdrDecoder.unpack_int, max_length=3)

    def test_bogus_array_length_detected(self):
        with pytest.raises(XdrError):
            XdrDecoder(b"\xff\xff\xff\xff").unpack_array(XdrDecoder.unpack_int)

    def test_optional(self):
        assert roundtrip(
            lambda e, v: e.pack_optional(v, XdrEncoder.pack_int),
            lambda d: d.unpack_optional(XdrDecoder.unpack_int),
            42,
        ) == 42
        assert roundtrip(
            lambda e, v: e.pack_optional(v, XdrEncoder.pack_int),
            lambda d: d.unpack_optional(XdrDecoder.unpack_int),
            None,
        ) is None

    def test_struct_as_concatenation(self):
        def pack(enc, value):
            enc.pack_string(value["name"])
            enc.pack_int(value["age"])
            enc.pack_array(value["scores"], XdrEncoder.pack_double)

        def unpack(dec):
            return {
                "name": dec.unpack_string(),
                "age": dec.unpack_int(),
                "scores": dec.unpack_array(XdrDecoder.unpack_double),
            }

        value = {"name": "shrimp", "age": 29, "scores": [1.5, -2.25]}
        assert roundtrip(pack, unpack, value) == value


class TestProperties:
    @given(st.integers(min_value=-(1 << 31), max_value=(1 << 31) - 1))
    def test_int_roundtrip(self, value):
        assert roundtrip(lambda e, v: e.pack_int(v), lambda d: d.unpack_int(), value) == value

    @given(st.binary(max_size=300))
    def test_opaque_roundtrip(self, data):
        assert roundtrip(
            lambda e, v: e.pack_opaque(v), lambda d: d.unpack_opaque(), data
        ) == data

    @given(st.text(max_size=120))
    def test_string_roundtrip(self, text):
        assert roundtrip(
            lambda e, v: e.pack_string(v), lambda d: d.unpack_string(), text
        ) == text

    @given(st.lists(st.integers(min_value=0, max_value=(1 << 32) - 1), max_size=50))
    def test_uint_array_roundtrip(self, values):
        assert roundtrip(
            lambda e, v: e.pack_array(v, XdrEncoder.pack_uint),
            lambda d: d.unpack_array(XdrDecoder.unpack_uint),
            values,
        ) == values

    @given(st.binary(max_size=64), st.binary(max_size=64))
    def test_sequential_fields_do_not_bleed(self, a, b):
        enc = XdrEncoder()
        enc.pack_opaque(a)
        enc.pack_opaque(b)
        dec = XdrDecoder(enc.getvalue())
        assert dec.unpack_opaque() == a
        assert dec.unpack_opaque() == b

    @given(st.floats(allow_nan=False, allow_infinity=False))
    def test_double_roundtrip(self, value):
        assert roundtrip(
            lambda e, v: e.pack_double(v), lambda d: d.unpack_double(), value
        ) == value
