"""VRPC tests: SunRPC headers, binding, calls, faults, both variants."""

import pytest

from repro.libs.rpc import (
    PROC_UNAVAIL,
    RpcCallHeader,
    RpcFault,
    RpcReplyHeader,
    SUCCESS,
    VrpcServer,
    XdrDecoder,
    XdrEncoder,
    clnt_create,
)
from repro.testbed import make_system

PROG, VERS = 0x20000A11, 1


class TestHeaders:
    def test_call_header_roundtrip(self):
        enc = XdrEncoder()
        RpcCallHeader(xid=0x1234, prog=PROG, vers=VERS, proc=3).encode(enc)
        header = RpcCallHeader.decode(XdrDecoder(enc.getvalue()))
        assert (header.xid, header.prog, header.vers, header.proc) == (0x1234, PROG, VERS, 3)

    def test_call_header_size_is_nontrivial(self):
        """The SunRPC header cost the specialized RPC avoids (Figure 8)."""
        enc = XdrEncoder()
        RpcCallHeader(xid=1, prog=PROG, vers=VERS, proc=0).encode(enc)
        assert len(enc.getvalue()) == 40

    def test_reply_header_roundtrip(self):
        enc = XdrEncoder()
        RpcReplyHeader(xid=7, accept_status=SUCCESS).encode(enc)
        reply = RpcReplyHeader.decode(XdrDecoder(enc.getvalue()))
        assert reply.xid == 7
        assert reply.accept_status == SUCCESS

    def test_reply_decoding_call_raises(self):
        enc = XdrEncoder()
        RpcCallHeader(xid=1, prog=PROG, vers=VERS, proc=0).encode(enc)
        with pytest.raises(Exception):
            RpcReplyHeader.decode(XdrDecoder(enc.getvalue()))


def rpc_pair(client_body, register, automatic=True, max_calls=None, n_calls_hint=4):
    """Server on node 1, client on node 0; returns (client result, server)."""
    system = make_system()
    state = {}

    def server(proc):
        srv = VrpcServer(system, proc, PROG, VERS, automatic=automatic)
        register(srv)
        ok = yield from srv.accept_binding()
        assert ok
        yield from srv.svc_run(max_calls=max_calls or n_calls_hint)
        state["server"] = srv

    def client(proc):
        handle = yield from clnt_create(system, proc, 1, PROG, VERS,
                                        automatic=automatic)
        result = yield from client_body(proc, handle)
        state["client"] = result

    s = system.spawn(1, server)
    c = system.spawn(0, client)
    system.run_processes([s, c])
    return state


def test_null_call():
    def register(srv):
        srv.register(0, lambda args: None)

    def body(proc, client):
        result = yield from client.call(0)
        return result

    state = rpc_pair(body, register, n_calls_hint=1)
    assert state["client"] is None
    assert state["server"].calls_served == 1


@pytest.mark.parametrize("automatic", [True, False])
def test_echo_string_both_variants(automatic):
    def register(srv):
        srv.register(
            1,
            lambda s: s.upper(),
            decode_args=lambda dec: dec.unpack_string(),
            encode_result=lambda enc, v: enc.pack_string(v),
        )

    def body(proc, client):
        result = yield from client.call(
            1, "shrimp rpc",
            encode_args=lambda enc, v: enc.pack_string(v),
            decode_result=lambda dec: dec.unpack_string(),
        )
        return result

    state = rpc_pair(body, register, automatic=automatic, n_calls_hint=1)
    assert state["client"] == "SHRIMP RPC"


def test_struct_arguments_and_results():
    def register(srv):
        def add_vectors(args):
            a, b = args
            return [x + y for x, y in zip(a, b)]

        srv.register(
            2, add_vectors,
            decode_args=lambda dec: (
                dec.unpack_array(XdrDecoder.unpack_int),
                dec.unpack_array(XdrDecoder.unpack_int),
            ),
            encode_result=lambda enc, v: enc.pack_array(v, XdrEncoder.pack_int),
        )

    def body(proc, client):
        result = yield from client.call(
            2, ([1, 2, 3], [10, 20, 30]),
            encode_args=lambda enc, v: (
                enc.pack_array(v[0], XdrEncoder.pack_int),
                enc.pack_array(v[1], XdrEncoder.pack_int),
            ),
            decode_result=lambda dec: dec.unpack_array(XdrDecoder.unpack_int),
        )
        return result

    state = rpc_pair(body, register, n_calls_hint=1)
    assert state["client"] == [11, 22, 33]


def test_multiple_sequential_calls_share_binding():
    def register(srv):
        srv.register(
            3, lambda n: n * n,
            decode_args=lambda dec: dec.unpack_int(),
            encode_result=lambda enc, v: enc.pack_int(v),
        )

    def body(proc, client):
        results = []
        for n in range(5):
            r = yield from client.call(
                3, n,
                encode_args=lambda enc, v: enc.pack_int(v),
                decode_result=lambda dec: dec.unpack_int(),
            )
            results.append(r)
        return results

    state = rpc_pair(body, register, max_calls=5)
    assert state["client"] == [0, 1, 4, 9, 16]


def test_unknown_procedure_faults():
    def register(srv):
        srv.register(0, lambda args: None)

    def body(proc, client):
        try:
            yield from client.call(99)
        except RpcFault as fault:
            return fault.status

    state = rpc_pair(body, register, n_calls_hint=1)
    assert state["client"] == PROC_UNAVAIL


def test_large_opaque_argument():
    blob = bytes(range(256)) * 32  # 8 KB through the 16 KB stream ring

    def register(srv):
        srv.register(
            4, lambda data: len(data),
            decode_args=lambda dec: dec.unpack_opaque(),
            encode_result=lambda enc, v: enc.pack_int(v),
        )

    def body(proc, client):
        result = yield from client.call(
            4, blob,
            encode_args=lambda enc, v: enc.pack_opaque(v),
            decode_result=lambda dec: dec.unpack_int(),
        )
        return result

    state = rpc_pair(body, register, n_calls_hint=1)
    assert state["client"] == len(blob)


def test_stream_ring_wraps_across_many_calls():
    """Enough traffic to wrap the 16 KB cyclic queue several times."""
    blob = bytes(1000)

    def register(srv):
        srv.register(
            5, lambda data: data[:8],
            decode_args=lambda dec: dec.unpack_opaque(),
            encode_result=lambda enc, v: enc.pack_opaque(v),
        )

    def body(proc, client):
        for i in range(60):
            result = yield from client.call(
                5, blob,
                encode_args=lambda enc, v: enc.pack_opaque(v),
                decode_result=lambda dec: dec.unpack_opaque(),
            )
            assert result == blob[:8]
        return "wrapped"

    state = rpc_pair(body, register, max_calls=60)
    assert state["client"] == "wrapped"


def test_null_rtt_near_29us():
    """Headline scalar: 'a round-trip time of about 29 usec for a null
    RPC with no arguments and results.'"""
    system = make_system()
    timing = {}

    def server(proc):
        srv = VrpcServer(system, proc, PROG, VERS, automatic=True)
        srv.register(0, lambda args: None)
        yield from srv.accept_binding()
        yield from srv.svc_run(max_calls=12)

    def client(proc):
        client_handle = yield from clnt_create(system, proc, 1, PROG, VERS)
        yield from client_handle.call(0)  # warmup
        yield from client_handle.call(0)
        start = proc.sim.now
        for _ in range(10):
            yield from client_handle.call(0)
        timing["rtt"] = (proc.sim.now - start) / 10

    s = system.spawn(1, server)
    c = system.spawn(0, client)
    system.run_processes([s, c])
    assert 26.0 < timing["rtt"] < 32.0, timing["rtt"]
