"""Direct unit tests of the NX connection layer (no nx_world)."""

import pytest

from repro.libs.nx import VARIANTS
from repro.libs.nx.connection import Connection, HEADER_BYTES, _pad4
from repro.testbed import Rendezvous, make_system
from repro.vmmc import attach

PAGE = 4096


def test_pad4():
    assert [_pad4(n) for n in (0, 1, 2, 3, 4, 5, 8)] == [0, 4, 4, 4, 4, 8, 8]


def test_slot_geometry():
    system = make_system()
    proc = system.kernels[0].create_process()
    ep = attach(system, proc)
    conn = Connection(proc, ep, peer_node=1, peer_rank=1,
                      variant=VARIANTS["AU-1copy"], slots=8, payload_bytes=2048)
    assert conn.slot_bytes == 2048 + HEADER_BYTES
    assert conn.slot_offset(0) == 0
    assert conn.slot_offset(3) == 3 * conn.slot_bytes
    assert conn.data_bytes % PAGE == 0
    assert conn.data_bytes >= 8 * conn.slot_bytes


def test_send_small_rejects_oversize():
    system = make_system()

    def driver(proc):
        ep = attach(system, proc)
        conn = Connection(proc, ep, peer_node=1, peer_rank=7,
                          variant=VARIANTS["AU-1copy"], slots=4,
                          payload_bytes=1024)
        # establish needs a peer: export only our half and skip the
        # peer exchange by pairing with ourselves via the rendezvous.
        rdv2 = Rendezvous(system)

        def fake_peer(peer_proc):
            peer_ep = attach(system, peer_proc)
            peer_conn = Connection(peer_proc, peer_ep, peer_node=0, peer_rank=0,
                                   variant=VARIANTS["AU-1copy"], slots=4,
                                   payload_bytes=1024)
            yield from peer_conn.establish(rdv2, 7)

        handle = system.spawn(1, fake_peer)
        yield from conn.establish(rdv2, 0)
        src = proc.space.mmap(2 * PAGE)
        with pytest.raises(ValueError):
            yield from conn.send_small(src, 2000, mtype=1)  # > 1024 payload
        return "rejected"

    d = system.spawn(0, driver)
    system.run_processes([d], timeout=1e6)
    assert d.value == "rejected"


def test_peek_payload_reads_slot():
    system = make_system()
    rdv = Rendezvous(system)
    out = {}

    def sender(proc):
        ep = attach(system, proc)
        conn = Connection(proc, ep, peer_node=1, peer_rank=1,
                          variant=VARIANTS["AU-1copy"], slots=4, payload_bytes=256)
        yield from conn.establish(rdv, 0)
        src = proc.space.mmap(PAGE)
        proc.poke(src, b"slot-payload")
        yield from conn.send_small(src, 12, mtype=5)

    def receiver(proc):
        ep = attach(system, proc)
        conn = Connection(proc, ep, peer_node=0, peer_rank=0,
                          variant=VARIANTS["AU-1copy"], slots=4, payload_bytes=256)
        yield from conn.establish(rdv, 1)
        while True:
            parsed = yield from conn.scan_descriptor()
            if parsed is not None:
                break
            yield proc.sim.timeout(10.0)
        slot, mtype, size, _seq, _tctx = parsed
        out["peek"] = conn.peek_payload(slot, size)
        out["mtype"] = mtype

    s = system.spawn(0, sender)
    r = system.spawn(1, receiver)
    system.run_processes([s, r])
    assert out["peek"] == b"slot-payload"
    assert out["mtype"] == 5
