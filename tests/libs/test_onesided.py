"""One-sided remote-memory channel: slot codec, hints, reads, shadow.

Covers the layers of docs/ONESIDED.md bottom-up: the slot codec as
pure functions, the occupancy-hint semantics (including the
skip-resurrection hazard), the end-to-end rendezvous/read flow over
VMMC, the bounded seqlock retry with its typed timeout, and the NIC's
snoop-fed region shadow.
"""

import pytest

from repro.hardware.nic.shadow import RegionShadow
from repro.libs.onesided import (OVERSIZE, SLOT_HEADER, SLOT_TAIL,
                                 RegionAdvert, RegionFormat, RegionReader,
                                 RegionWriter, SeqlockTimeoutError, SlotHints,
                                 decode_slot)
from repro.testbed import Rendezvous, make_system
from repro.vmmc import VmmcTimeoutError, attach

PAGE = 4096
FMT = RegionFormat(slots=64, slot_size=256, page_size=PAGE)


def _slot(fmt, key, value, version=2, oversize=False):
    """A stable slot image, as RegionWriter would write it."""
    import zlib
    kb = key.encode()
    if oversize:
        return (SLOT_HEADER.pack(version, len(kb), OVERSIZE, 0) + kb
                + SLOT_TAIL.pack(version))
    crc = zlib.crc32(kb + value) & 0xFFFFFFFF
    return (SLOT_HEADER.pack(version, len(kb), len(value), crc)
            + kb + value + SLOT_TAIL.pack(version))


# ---------------------------------------------------------------- codec

def test_decode_hit():
    raw = _slot(FMT, "k1", b"hello")
    assert decode_slot(FMT, raw, "k1") == ("hit", b"hello")


def test_decode_prefix_hit_ignores_trailing_garbage():
    raw = _slot(FMT, "k1", b"hello") + b"\xff" * 32
    assert decode_slot(FMT, raw, "k1") == ("hit", b"hello")


def test_decode_empty_slot_is_absent():
    assert decode_slot(FMT, bytes(FMT.slot_size), "k1") == ("absent", None)


def test_decode_other_key_is_absent():
    raw = _slot(FMT, "other", b"x")
    assert decode_slot(FMT, raw, "k1") == ("absent", None)


def test_decode_oversize_marker_is_absent():
    raw = _slot(FMT, "k1", b"", oversize=True)
    assert decode_slot(FMT, raw, "k1") == ("absent", None)


def test_decode_odd_head_is_torn():
    raw = _slot(FMT, "k1", b"hello", version=3)
    assert decode_slot(FMT, raw, "k1") == ("torn", None)


def test_decode_tail_mismatch_is_torn():
    raw = bytearray(_slot(FMT, "k1", b"hello"))
    raw[-SLOT_TAIL.size:] = SLOT_TAIL.pack(4)
    assert decode_slot(FMT, bytes(raw), "k1") == ("torn", None)


def test_decode_crc_mismatch_is_torn():
    raw = bytearray(_slot(FMT, "k1", b"hello"))
    raw[SLOT_HEADER.size + 2] ^= 0x40  # flip one body byte
    assert decode_slot(FMT, bytes(raw), "k1") == ("torn", None)


def test_decode_short_prefix_names_needed_total():
    raw = _slot(FMT, "k1", b"x" * 100)
    state, total = decode_slot(FMT, raw[:40], "k1")
    assert state == "short"
    assert total == len(raw)
    assert decode_slot(FMT, raw[:total], "k1") == ("hit", b"x" * 100)


def test_decode_bogus_lengths_are_torn_not_crash():
    raw = SLOT_HEADER.pack(2, 5000, 5000, 0) + b"\0" * 64
    assert decode_slot(FMT, raw, "k1") == ("torn", None)


def test_format_rejects_bad_geometry():
    with pytest.raises(ValueError):
        RegionFormat(slots=0)
    with pytest.raises(ValueError):
        RegionFormat(slots=4, slot_size=8)          # no body room
    with pytest.raises(ValueError):
        RegionFormat(slots=4, slot_size=240)        # does not divide 4096


# ---------------------------------------------------------------- hints

def _bare_reader(hints=None):
    """A reader for hint bookkeeping only — no endpoint behind it."""
    return RegionReader(None, None, FMT, 0, hints=hints)


def test_note_size_teaches_exact_read_length():
    r = _bare_reader()
    assert not r.knows("k1")
    r.note_size("k1", 100)
    assert r.knows("k1")
    assert r.hints.sizes["k1"] == SLOT_HEADER.size + 2 + 100 + SLOT_TAIL.size


def test_note_size_miss_marks_skip():
    r = _bare_reader()
    r.note_size("k1", None)
    assert not r.knows("k1")
    assert "k1" in r.hints.skip


def test_note_size_oversize_marks_skip():
    r = _bare_reader()
    r.note_size("k1", FMT.capacity + 1)
    assert not r.knows("k1")


def test_note_size_never_resurrects_a_skipped_key():
    """The collision ping-pong guard: an RPC answer for a skipped key
    must not re-arm a bypass read that is doomed to come back absent."""
    r = _bare_reader()
    r.hints.skip.add("k1")
    r.note_size("k1", 64)
    assert not r.knows("k1")
    assert "k1" not in r.hints.sizes


def test_note_write_is_authoritative_and_clears_skip():
    r = _bare_reader()
    r.hints.skip.add("k1")
    r.note_write("k1", 64)
    assert r.knows("k1")


def test_note_write_delete_and_oversize_mark_skip():
    r = _bare_reader()
    r.note_write("k1", 64)
    r.note_write("k1", None)
    assert not r.knows("k1")
    r.note_write("k2", FMT.capacity + 1)
    assert not r.knows("k2")


def test_shared_hints_pool_learning_across_readers():
    hints = SlotHints()
    a, b = _bare_reader(hints), _bare_reader(hints)
    a.note_size("k1", 40)
    assert b.knows("k1")


# ------------------------------------------------------ end-to-end reads

def _exporter(system, rdv, fmt, items, hold=None):
    """Region bootstrap program: export, preload, advertise.

    ``hold`` (an int) leaves that key's slot head stamped odd after the
    advert — a writer stalled mid-update, frozen forever.
    """
    def program(proc):
        ep = attach(system, proc)
        region = yield from ep.export_new(fmt.nbytes)
        shadow = proc.node.nic.shadow
        if not shadow.register(region.record.frames):
            shadow = None
        writer = RegionWriter(proc.node.memory, region.record.frames, fmt,
                              proc.config, shadow=shadow)
        for key, value in items.items():
            writer.preload(key, value)
        if hold is not None:
            base = fmt.slot_offset(fmt.slot_of(hold))
            head = writer._phys_read(base, 4)
            odd = (int.from_bytes(head, "little") + 1).to_bytes(4, "little")
            writer._phys_write(base, odd)
        rdv.put("region", RegionAdvert(
            node_id=proc.node.node_id, export_id=region.record.export_id,
            slots=fmt.slots, slot_size=fmt.slot_size))
        return writer

    return program


def _reader_program(system, rdv, fmt, body, hints=None):
    """Import the advertised region, build a reader, run ``body``."""
    def program(proc):
        ep = attach(system, proc)
        advert = yield rdv.get("region")
        imported = yield from ep.import_buffer(advert.node_id,
                                               advert.export_id)
        reply = yield from ep.export_new(proc.config.page_size)
        reader = RegionReader(ep, imported,
                              advert.format(proc.config.page_size),
                              reply.record.vaddr, hints=hints)
        result = yield from body(proc, reader)
        return result

    return program


def _run_pair(items, body, fmt=FMT, hold=None, hints=None):
    system = make_system()
    rdv = Rendezvous(system)
    exp = system.spawn(1, _exporter(system, rdv, fmt, items, hold=hold))
    rdr = system.spawn(0, _reader_program(system, rdv, fmt, body,
                                          hints=hints))
    system.run_processes([exp, rdr])
    return exp, rdr


def test_remote_lookup_hits_preloaded_key():
    def body(proc, reader):
        found, value = yield from reader.lookup("alpha")
        return found, value, reader.hits

    _, rdr = _run_pair({"alpha": b"A" * 80}, body)
    assert rdr.value == (True, b"A" * 80, 1)


def test_remote_lookup_absent_key_marks_skip_then_skips():
    def body(proc, reader):
        first = yield from reader.lookup("ghost")
        second = yield from reader.lookup("ghost")
        return first, second, reader.absences, reader.skips

    _, rdr = _run_pair({"alpha": b"A"}, body)
    first, second, absences, skips = rdr.value
    assert first == (False, None) and second == (False, None)
    assert absences == 1 and skips == 1


def test_remote_lookup_oversize_value_falls_back():
    big = b"B" * (FMT.capacity + 50)

    def body(proc, reader):
        return (yield from reader.lookup("big"))

    _, rdr = _run_pair({"big": big}, body)
    assert rdr.value == (False, None)


def test_wrong_size_hint_corrects_with_one_reread():
    def body(proc, reader):
        reader.note_size("alpha", 4)    # stale: the slot holds 90 bytes
        found, value = yield from reader.lookup("alpha")
        return found, value, reader.rereads

    _, rdr = _run_pair({"alpha": b"A" * 90}, body)
    assert rdr.value == (True, b"A" * 90, 1)


def test_stalled_writer_raises_typed_seqlock_timeout():
    def body(proc, reader):
        try:
            yield from reader.lookup("alpha")
        except SeqlockTimeoutError as exc:
            assert isinstance(exc, VmmcTimeoutError)
            return "typed-timeout", reader.retries
        return "no-error", reader.retries

    _, rdr = _run_pair({"alpha": b"A" * 40}, body, hold="alpha")
    outcome, retries = rdr.value
    assert outcome == "typed-timeout"
    assert retries == RegionReader.MAX_ATTEMPTS - 1


def test_ipt_denied_read_times_out_typed():
    """Disabling the region's pages models an unexport racing a read:
    the target drops the request, the poll expires, and the bounded
    retries surface as the typed seqlock timeout."""
    system = make_system()
    rdv = Rendezvous(system)
    target = system.machine.nodes[1]

    def body(proc, reader):
        # Disable every IPT page on the target that belongs to the
        # imported region (its frames are the export's pages).
        for frame in reader.imported.remote_frames:
            target.nic.ipt.disable(frame)
        reader.base_timeout_us = 40.0
        try:
            yield from reader.lookup("alpha")
        except SeqlockTimeoutError:
            return "typed-timeout"
        return "no-error"

    exp = system.spawn(1, _exporter(system, rdv, FMT, {"alpha": b"A" * 40}))
    rdr = system.spawn(0, _reader_program(system, rdv, FMT, body))
    system.run_processes([exp, rdr])
    assert rdr.value == "typed-timeout"


# ------------------------------------------------------- region shadow

class _ShadowConfig:
    page_size = PAGE
    nic_shadow_bytes = 2 * PAGE


def test_shadow_register_is_all_or_nothing():
    shadow = RegionShadow(_ShadowConfig())
    assert shadow.register([7, 9])
    assert shadow.resident_bytes == 2 * PAGE
    assert not shadow.register([11])        # over capacity: rejected
    assert shadow.resident_bytes == 2 * PAGE
    assert shadow.rejects == 1


def test_shadow_read_returns_none_for_unregistered_pages():
    shadow = RegionShadow(_ShadowConfig())
    shadow.register([7])
    assert shadow.read(7 * PAGE, 16) == b"\0" * 16
    assert shadow.read(8 * PAGE, 16) is None


def test_shadow_mirrors_writes_across_page_boundary():
    shadow = RegionShadow(_ShadowConfig())
    shadow.register([7, 8])
    data = bytes(range(64))
    shadow.write(7 * PAGE + PAGE - 32, data)
    assert shadow.read(7 * PAGE + PAGE - 32, 64) == data


def test_remote_read_is_served_from_shadow_without_bus():
    """With the region resident on-card, the serve path never takes the
    target's arbiter: the shadowed counter accounts for every read."""
    system = make_system()
    rdv = Rendezvous(system)
    target = system.machine.nodes[1]

    def body(proc, reader):
        found, value = yield from reader.lookup("alpha")
        return found, value, target.nic.stats()["read_requests_shadowed"]

    exp = system.spawn(1, _exporter(system, rdv, FMT, {"alpha": b"A" * 80}))
    rdr = system.spawn(0, _reader_program(system, rdv, FMT, body))
    system.run_processes([exp, rdr])
    found, value, shadowed = rdr.value
    assert (found, value) == (True, b"A" * 80)
    assert shadowed >= 1


def test_shadow_stays_coherent_with_writer_stores():
    """A post-boot store must be visible to the next shadow-served read
    (the snooped write-through keeps the card's copy current)."""
    def body(proc, reader):
        first = yield from reader.lookup("alpha")
        yield proc.sim.timeout(10_000.0)   # let the exporter's store land
        second = yield from reader.lookup("alpha")
        return first, second

    system = make_system()
    rdv = Rendezvous(system)

    def exporter(proc):
        ep = attach(system, proc)
        region = yield from ep.export_new(FMT.nbytes)
        shadow = proc.node.nic.shadow
        assert shadow.register(region.record.frames)
        writer = RegionWriter(proc.node.memory, region.record.frames, FMT,
                              proc.config, shadow=shadow)
        writer.preload("alpha", b"old")
        rdv.put("region", RegionAdvert(
            node_id=proc.node.node_id, export_id=region.record.export_id,
            slots=FMT.slots, slot_size=FMT.slot_size))
        yield proc.sim.timeout(5_000.0)
        yield from writer.store(proc, "alpha", b"new-value")

    exp = system.spawn(1, exporter)
    rdr = system.spawn(0, _reader_program(system, rdv, FMT, body))
    system.run_processes([exp, rdr])
    first, second = rdr.value
    assert first == (True, b"old")
    assert second == (True, b"new-value")
