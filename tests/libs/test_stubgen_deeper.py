"""Deeper stub-generator tests: every type, every direction, edge shapes."""

import pytest

from repro.libs.shrimp_rpc import compile_stubs, generate_stubs, parse_idl
from repro.libs.shrimp_rpc.runtime import decode_value, encode_value
from repro.libs.shrimp_rpc.idl import IdlType
from repro.testbed import make_system

ALL_TYPES_IDL = """
program Kitchen version 3 {
    void nothing();
    int negate(in int x);
    uint mask(in uint x);
    float halve(in float x);
    double stats(in double xs[5]);
    opaque[16] xor16(in opaque[16] a, in opaque[16] b);
    void swap(inout int a, inout int b);
    void produce(out double d, out string<16> label);
    uint many(in int a, in uint b, in double c, in opaque<8> d);
}
"""


class KitchenImpl:
    def nothing(self):
        return None
        yield  # pragma: no cover

    def negate(self, x):
        return -x
        yield  # pragma: no cover

    def mask(self, x):
        return x & 0xFFFF0000
        yield  # pragma: no cover

    def halve(self, x):
        return x / 2.0
        yield  # pragma: no cover

    def stats(self, xs):
        return sum(xs)
        yield  # pragma: no cover

    def xor16(self, a, b):
        return bytes(x ^ y for x, y in zip(a, b))
        yield  # pragma: no cover

    def swap(self, a, b):
        va = yield from a.get()
        vb = yield from b.get()
        yield from a.set(vb)
        yield from b.set(va)

    def produce(self, d, label):
        yield from d.set(2.5)
        yield from label.set("made-it")

    def many(self, a, b, c, d):
        return (a + b + int(c) + len(d)) & 0xFFFFFFFF
        yield  # pragma: no cover


def run_kitchen(body, max_calls):
    system = make_system()
    client_cls, server_cls, _ = compile_stubs(ALL_TYPES_IDL)

    def server(proc):
        srv = server_cls(system, proc, KitchenImpl())
        yield from srv.serve_binding(port=9)
        yield from srv.run(max_calls=max_calls)

    out = {}

    def client(proc):
        cl = client_cls(system, proc)
        yield from cl.bind(1, port=9)
        out["result"] = yield from body(cl)

    system.run_processes([system.spawn(1, server), system.spawn(0, client)])
    return out["result"]


def test_every_scalar_type():
    def body(cl):
        results = []
        results.append((yield from cl.nothing()))
        results.append((yield from cl.negate(-17)))
        results.append((yield from cl.mask(0xDEADBEEF)))
        results.append((yield from cl.halve(5.0)))
        return results

    assert run_kitchen(body, 4) == [None, 17, 0xDEAD0000, 2.5]


def test_fixed_array_and_fixed_opaque():
    def body(cl):
        total = yield from cl.stats([1.5, 2.5, 3.0, -1.0, 4.0])
        xored = yield from cl.xor16(bytes(range(16)), b"\xff" * 16)
        return total, xored

    total, xored = run_kitchen(body, 2)
    assert total == pytest.approx(10.0)
    assert xored == bytes(255 - i for i in range(16))


def test_two_inout_params_swap():
    def body(cl):
        result = yield from cl.swap(111, 222)
        return result

    assert run_kitchen(body, 1) == (222, 111)


def test_pure_out_params():
    def body(cl):
        result = yield from cl.produce()
        return result

    assert run_kitchen(body, 1) == (2.5, "made-it")


def test_mixed_parameter_pack():
    def body(cl):
        result = yield from cl.many(1, 2, 3.9, b"abcd")
        return result

    assert run_kitchen(body, 1) == 1 + 2 + 3 + 4


def test_generated_source_has_docstrings_and_ids():
    source = generate_stubs(ALL_TYPES_IDL)
    assert '"""void swap(inout int a, inout int b)"""' in source
    for i in range(1, 10):
        assert "_dispatch_%d" % i in source
    # The generated module embeds its own IDL (self-contained).
    assert "program Kitchen version 3" in source


def test_codec_roundtrip_every_type():
    idl = parse_idl(ALL_TYPES_IDL)
    samples = {
        "int": -5,
        "uint": 0xCAFEBABE,
        "float": 0.5,
        "double": -1.25,
        "array": [1.0, 2.0, 3.0, 4.0, 5.0],
        "opaque_fixed": bytes(range(16)),
        "opaque_var": b"abc",
        "string": "hello",
    }
    types = {
        "int": IdlType("int"),
        "uint": IdlType("uint"),
        "float": IdlType("float"),
        "double": IdlType("double"),
        "array": IdlType("array", 5, "double"),
        "opaque_fixed": IdlType("opaque_fixed", 16),
        "opaque_var": IdlType("opaque_var", 8),
        "string": IdlType("string", 16),
    }
    for kind, value in samples.items():
        idltype = types[kind]
        raw = encode_value(idltype, value)
        padded = raw + b"\x00" * (idltype.slot_bytes - len(raw))
        assert decode_value(idltype, padded) == value
    assert idl.procedure("many").args_bytes == 4 + 4 + 8 + (4 + 8)
