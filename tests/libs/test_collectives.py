"""Tests for software collectives (tree multicast, reduce, gather)."""

import pytest

from repro.libs.collectives import broadcast, broadcast_naive, gather, reduce_int
from repro.libs.nx import VARIANTS, nx_world
from repro.testbed import make_system

PAGE = 4096


def run_world(programs, **kwargs):
    system = make_system(**kwargs)
    handles = nx_world(system, programs, variant=VARIANTS["AU-1copy"])
    system.run_processes(handles)
    return system, [h.value for h in handles]


@pytest.mark.parametrize("bcast", [broadcast, broadcast_naive])
@pytest.mark.parametrize("root", [0, 2])
def test_broadcast_delivers_to_all(bcast, root):
    payload = b"broadcast payload." * 4

    def program(nx):
        buf = nx.proc.space.mmap(PAGE)
        if nx.mynode() == root:
            nx.proc.poke(buf, payload)
        yield from bcast(nx, buf, len(payload), root=root)
        return nx.proc.peek(buf, len(payload))

    _sys, results = run_world([program] * 4)
    assert all(r == payload for r in results)


def test_tree_broadcast_beats_naive_on_16_nodes():
    """The co-design claim: software multicast has acceptable
    performance — the tree finishes in O(log N) rounds."""
    from repro.hardware.config import MachineConfig

    payload = bytes(1024)
    times = {}
    for name, bcast in (("tree", broadcast), ("naive", broadcast_naive)):
        system = make_system(MachineConfig.sixteen_node())
        started = []
        finished = []

        def program(nx, bcast=bcast):
            buf = nx.proc.space.mmap(PAGE)
            if nx.mynode() == 0:
                nx.proc.poke(buf, payload)
            yield from nx.gsync()  # exclude connection setup from timing
            started.append(nx.proc.sim.now)
            yield from bcast(nx, buf, len(payload), root=0)
            finished.append(nx.proc.sim.now)

        handles = nx_world(system, [program] * 16, variant=VARIANTS["AU-1copy"])
        system.run_processes(handles)
        times[name] = max(finished) - min(started)
    assert times["tree"] < times["naive"]


def test_reduce_sum():
    def program(nx):
        result = yield from reduce_int(nx, (nx.mynode() + 1) * 10, lambda a, b: a + b)
        return result

    _sys, results = run_world([program] * 4)
    assert results[0] == 10 + 20 + 30 + 40
    assert results[1] is None and results[2] is None and results[3] is None


def test_reduce_max_nonzero_root():
    def program(nx):
        result = yield from reduce_int(nx, nx.mynode() * 7, max, root=3)
        return result

    _sys, results = run_world([program] * 4)
    assert results[3] == 21
    assert results[0] is None


@pytest.mark.parametrize("bcast", [broadcast, broadcast_naive])
@pytest.mark.parametrize("size,root", [(3, 1), (3, 2)])
def test_broadcast_non_power_of_two_world(bcast, size, root):
    """The binomial tree must terminate cleanly when the world size is
    not a power of two and the root is rank-shifted."""
    payload = b"npot payload " * 3

    def program(nx):
        buf = nx.proc.space.mmap(PAGE)
        if nx.mynode() == root:
            nx.proc.poke(buf, payload)
        yield from bcast(nx, buf, len(payload), root=root)
        return nx.proc.peek(buf, len(payload))

    _sys, results = run_world([program] * size)
    assert all(r == payload for r in results)


@pytest.mark.parametrize("size,root", [(3, 1), (3, 2), (4, 3)])
def test_reduce_non_power_of_two_world(size, root):
    def program(nx):
        result = yield from reduce_int(nx, (nx.mynode() + 1) * 5,
                                       lambda a, b: a + b, root=root)
        return result

    _sys, results = run_world([program] * size)
    expected = sum((i + 1) * 5 for i in range(size))
    for rank, value in enumerate(results):
        assert value == (expected if rank == root else None)


@pytest.mark.parametrize("size,root", [(3, 2), (4, 3)])
def test_gather_non_power_of_two_world_nonzero_root(size, root):
    def program(nx):
        buf = nx.proc.space.mmap(PAGE)
        nx.proc.poke(buf, bytes([nx.mynode() + 65]) * 8)
        result = yield from gather(nx, buf, 8, root=root)
        return result

    _sys, results = run_world([program] * size)
    assert results[root] == [bytes([i + 65]) * 8 for i in range(size)]
    for rank, value in enumerate(results):
        if rank != root:
            assert value is None


def test_gather_collects_per_rank_payloads():
    def program(nx):
        buf = nx.proc.space.mmap(PAGE)
        nx.proc.poke(buf, bytes([nx.mynode() + 1]) * 16)
        result = yield from gather(nx, buf, 16)
        return result

    _sys, results = run_world([program] * 4)
    assert results[0] == [bytes([i + 1]) * 16 for i in range(4)]
    assert results[1] is None
