"""NX library tests: basic send/receive semantics across variants."""

import pytest

from repro.libs.nx import ANY_TYPE, VARIANTS, nx_world
from repro.testbed import make_system

PAGE = 4096


def run_world(programs, variant="AU-1copy", **kwargs):
    system = make_system()
    handles = nx_world(system, programs, variant=VARIANTS[variant], **kwargs)
    system.run_processes(handles)
    return [h.value for h in handles]


def alloc_filled(nx, data: bytes) -> int:
    vaddr = nx.proc.space.mmap(max(len(data), 4))
    nx.proc.poke(vaddr, data)
    return vaddr


@pytest.mark.parametrize("variant", ["AU-1copy", "AU-2copy", "DU-1copy", "DU-2copy"])
def test_small_message_roundtrip_all_variants(variant):
    payload = b"nx message payload." * 3

    def sender(nx):
        src = alloc_filled(nx, payload)
        yield from nx.csend(7, src, len(payload), to=1)
        return "sent"

    def receiver(nx):
        dst = nx.proc.space.mmap(PAGE)
        size = yield from nx.crecv(7, dst, PAGE)
        return nx.proc.peek(dst, size)

    results = run_world([sender, receiver], variant=variant)
    assert results[1] == payload


@pytest.mark.parametrize("variant", ["AU-1copy", "DU-1copy", "DU-0copy"])
def test_large_message_roundtrip(variant):
    payload = bytes((i * 31) % 256 for i in range(3 * PAGE))  # > packet buffer

    def sender(nx):
        src = alloc_filled(nx, payload)
        yield from nx.csend(9, src, len(payload), to=1)

    def receiver(nx):
        dst = nx.proc.space.mmap(4 * PAGE)
        size = yield from nx.crecv(9, dst, 4 * PAGE)
        return size, nx.proc.peek(dst, size)

    results = run_world([sender, receiver], variant=variant)
    size, data = results[1]
    assert size == len(payload)
    assert data == payload


def test_messages_arrive_in_order_same_type():
    def sender(nx):
        src = nx.proc.space.mmap(PAGE)
        for i in range(5):
            nx.proc.poke(src, bytes([i]) * 8)
            yield from nx.csend(3, src, 8, to=1)

    def receiver(nx):
        dst = nx.proc.space.mmap(PAGE)
        got = []
        for _ in range(5):
            yield from nx.crecv(3, dst, PAGE)
            got.append(nx.proc.peek(dst, 1))
        return got

    results = run_world([sender, receiver])
    assert results[1] == [bytes([i]) for i in range(5)]


def test_out_of_order_consumption_by_type():
    """The receiver consumes the second message first — the packet
    buffers must recycle out of order (credit identifies the buffer)."""
    def sender(nx):
        src = nx.proc.space.mmap(PAGE)
        nx.proc.poke(src, b"first-->")
        yield from nx.csend(1, src, 8, to=1)
        nx.proc.poke(src, b"second->")
        yield from nx.csend(2, src, 8, to=1)

    def receiver(nx):
        dst = nx.proc.space.mmap(PAGE)
        yield from nx.crecv(2, dst, PAGE)
        second = nx.proc.peek(dst, 8)
        yield from nx.crecv(1, dst, PAGE)
        first = nx.proc.peek(dst, 8)
        return first, second

    results = run_world([sender, receiver])
    assert results[1] == (b"first-->", b"second->")


def test_any_type_receives_in_arrival_order():
    def sender(nx):
        src = nx.proc.space.mmap(PAGE)
        for i, mtype in enumerate((11, 22, 33)):
            nx.proc.poke(src, bytes([i]) * 4)
            yield from nx.csend(mtype, src, 4, to=1)

    def receiver(nx):
        dst = nx.proc.space.mmap(PAGE)
        types = []
        for _ in range(3):
            yield from nx.crecv(ANY_TYPE, dst, PAGE)
            types.append(nx.infotype())
        return types

    results = run_world([sender, receiver])
    assert results[1] == [11, 22, 33]


def test_info_calls_reflect_last_receive():
    def sender(nx):
        src = alloc_filled(nx, b"abcdef")
        yield from nx.csend(42, src, 6, to=1)

    def receiver(nx):
        dst = nx.proc.space.mmap(PAGE)
        size = yield from nx.crecv(ANY_TYPE, dst, PAGE)
        return size, nx.infocount(), nx.infonode(), nx.infotype()

    results = run_world([sender, receiver])
    assert results[1] == (6, 6, 0, 42)


def test_mynode_numnodes():
    def program(nx):
        return nx.mynode(), nx.numnodes()
        yield  # pragma: no cover

    results = run_world([program, program, program])
    assert results == [(0, 3), (1, 3), (2, 3)]


def test_send_to_self():
    def program(nx):
        src = alloc_filled(nx, b"loopback")
        yield from nx.csend(5, src, 8, to=0)
        dst = nx.proc.space.mmap(PAGE)
        yield from nx.crecv(5, dst, PAGE)
        return nx.proc.peek(dst, 8)

    results = run_world([program])
    assert results[0] == b"loopback"


def test_receive_buffer_too_small_raises():
    def sender(nx):
        src = alloc_filled(nx, b"x" * 100)
        yield from nx.csend(1, src, 100, to=1)

    def receiver(nx):
        dst = nx.proc.space.mmap(PAGE)
        try:
            yield from nx.crecv(1, dst, 50)
        except ValueError:
            return "too small"

    results = run_world([sender, receiver])
    assert results[1] == "too small"


def test_three_way_communication():
    """Ranks 1 and 2 both send to rank 0; rank 0 receives by source type."""
    def rank0(nx):
        dst = nx.proc.space.mmap(PAGE)
        got = {}
        for _ in range(2):
            yield from nx.crecv(ANY_TYPE, dst, PAGE)
            got[nx.infonode()] = nx.proc.peek(dst, nx.infocount())
        return got

    def rank1(nx):
        src = alloc_filled(nx, b"from-1")
        yield from nx.csend(100, src, 6, to=0)

    def rank2(nx):
        src = alloc_filled(nx, b"from-2")
        yield from nx.csend(200, src, 6, to=0)

    results = run_world([rank0, rank1, rank2])
    assert results[0] == {1: b"from-1", 2: b"from-2"}


def test_gsync_barrier():
    """No rank may leave the barrier before every rank has entered."""
    system = make_system()
    enter_times = {}
    leave_times = {}

    def program(nx):
        yield from nx.proc.compute(100.0 * (nx.mynode() + 1))
        enter_times[nx.mynode()] = nx.proc.sim.now
        yield from nx.gsync()
        leave_times[nx.mynode()] = nx.proc.sim.now

    handles = nx_world(system, [program] * 4, variant=VARIANTS["AU-1copy"])
    system.run_processes(handles)
    assert max(enter_times.values()) <= min(leave_times.values())
