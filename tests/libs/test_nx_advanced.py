"""NX library tests: async operations, probes, flow control, fallbacks."""

import pytest

from repro.libs.nx import ANY_TYPE, VARIANTS, nx_world
from repro.testbed import make_system

PAGE = 4096


def run_world(programs, variant="AU-1copy", **kwargs):
    system = make_system()
    handles = nx_world(system, programs, variant=VARIANTS[variant], **kwargs)
    system.run_processes(handles)
    return system, [h.value for h in handles]


def alloc_filled(nx, data: bytes) -> int:
    vaddr = nx.proc.space.mmap(max(len(data), 4))
    nx.proc.poke(vaddr, data)
    return vaddr


def test_irecv_msgwait_roundtrip():
    def sender(nx):
        yield from nx.proc.compute(200.0)  # receiver posts first
        src = alloc_filled(nx, b"async!")
        yield from nx.csend(4, src, 6, to=1)

    def receiver(nx):
        dst = nx.proc.space.mmap(PAGE)
        mid = yield from nx.irecv(4, dst, PAGE)
        posted_at = nx.proc.sim.now
        yield from nx.msgwait(mid)
        return nx.proc.peek(dst, 6), mid.info, posted_at < nx.proc.sim.now

    _sys, results = run_world([sender, receiver])
    data, info, waited = results[1]
    assert data == b"async!"
    assert info == (6, 0, 4)
    assert waited


def test_msgdone_polls_without_blocking():
    def sender(nx):
        yield from nx.proc.compute(500.0)
        src = alloc_filled(nx, b"late")
        yield from nx.csend(4, src, 4, to=1)

    def receiver(nx):
        dst = nx.proc.space.mmap(PAGE)
        mid = yield from nx.irecv(4, dst, PAGE)
        early = yield from nx.msgdone(mid)
        yield from nx.proc.compute(2000.0)
        late = yield from nx.msgdone(mid)
        return early, late

    _sys, results = run_world([sender, receiver])
    assert results[1] == (False, True)


def test_isend_completes_eagerly():
    def sender(nx):
        src = alloc_filled(nx, b"eager-send")
        mid = yield from nx.isend(1, src, 10, to=1)
        done = yield from nx.msgdone(mid)
        return done

    def receiver(nx):
        dst = nx.proc.space.mmap(PAGE)
        yield from nx.crecv(1, dst, PAGE)
        return nx.proc.peek(dst, 10)

    _sys, results = run_world([sender, receiver])
    assert results[0] is True
    assert results[1] == b"eager-send"


def test_iprobe_and_cprobe():
    def sender(nx):
        yield from nx.proc.compute(300.0)
        src = alloc_filled(nx, b"probe-me")
        yield from nx.csend(77, src, 8, to=1)

    def receiver(nx):
        before = yield from nx.iprobe(77)
        yield from nx.cprobe(77)
        info = (nx.infocount(), nx.infonode(), nx.infotype())
        after = yield from nx.iprobe(77)   # still there: probe doesn't consume
        dst = nx.proc.space.mmap(PAGE)
        yield from nx.crecv(77, dst, PAGE)
        gone = yield from nx.iprobe(77)
        return before, info, after, gone

    _sys, results = run_world([sender, receiver])
    before, info, after, gone = results[1]
    assert before is False
    assert info == (8, 0, 77)
    assert after is True
    assert gone is False


def test_credit_exhaustion_blocks_then_recovers():
    """More in-flight messages than packet buffers: the sender must
    block on credits, fire the buffer-request interrupt, and recover."""
    slots = 2
    n_messages = 8

    def sender(nx):
        src = nx.proc.space.mmap(PAGE)
        for i in range(n_messages):
            nx.proc.poke(src, bytes([i]) * 16)
            yield from nx.csend(1, src, 16, to=1)
        return "done"

    def receiver(nx):
        yield from nx.proc.compute(3000.0)  # let the sender pile up
        dst = nx.proc.space.mmap(PAGE)
        got = []
        for _ in range(n_messages):
            yield from nx.crecv(1, dst, PAGE)
            got.append(nx.proc.peek(dst, 1)[0])
        return got, nx.connections[0].buffer_requests_seen

    _sys, results = run_world([sender, receiver], slots=slots)
    got, requests = results[1]
    assert got == list(range(n_messages))
    assert requests >= 1  # the buffer-full interrupt fired


def test_unaligned_large_receive_falls_back_to_chunked():
    """Receiver's buffer offset breaks word alignment: zero-copy is
    forbidden, data streams through the packet buffers instead."""
    payload = bytes((i * 3) % 256 for i in range(3 * PAGE))

    def sender(nx):
        src = alloc_filled(nx, payload)
        yield from nx.csend(6, src, len(payload), to=1)
        return nx.ep.sends

    def receiver(nx):
        region = nx.proc.space.mmap(5 * PAGE)
        dst = region + 2  # deliberately unaligned
        size = yield from nx.crecv(6, dst, 4 * PAGE)
        return nx.proc.peek(dst, size)

    _sys, results = run_world([sender, receiver], variant="DU-1copy")
    assert results[1] == payload


def test_zero_copy_import_cached_across_messages():
    """The second large message to the same buffer must not redo the
    (expensive, Ethernet) import."""
    payload = bytes(3 * PAGE)

    def sender(nx):
        src = alloc_filled(nx, payload)
        yield from nx.csend(1, src, len(payload), to=1)
        yield from nx.csend(1, src, len(payload), to=1)
        return len(nx._import_cache)

    def receiver(nx):
        dst = nx.proc.space.mmap(4 * PAGE)
        yield from nx.crecv(1, dst, 4 * PAGE)
        yield from nx.crecv(1, dst, 4 * PAGE)
        return len(nx._export_cache)

    _sys, results = run_world([sender, receiver])
    assert results[0] == 1   # one cached import
    assert results[1] == 1   # one cached export


def test_bidirectional_traffic_simultaneously():
    def make(peer):
        def program(nx):
            src = alloc_filled(nx, (b"to-%d!!" % peer).ljust(8, b"_"))
            dst = nx.proc.space.mmap(PAGE)
            yield from nx.csend(1, src, 8, to=peer)
            yield from nx.crecv(1, dst, PAGE)
            return nx.proc.peek(dst, 8)

        return program

    _sys, results = run_world([make(1), make(0)])
    assert results[0] == b"to-0!!__"
    assert results[1] == b"to-1!!__"


def test_mixed_small_and_large_messages_interleave():
    def sender(nx):
        small = alloc_filled(nx, b"small-one")
        big_payload = bytes((i * 7) % 256 for i in range(3 * PAGE))
        big = alloc_filled(nx, big_payload)
        yield from nx.csend(1, small, 9, to=1)
        yield from nx.csend(2, big, len(big_payload), to=1)
        yield from nx.csend(1, small, 9, to=1)
        return big_payload

    def receiver(nx):
        dst_small = nx.proc.space.mmap(PAGE)
        dst_big = nx.proc.space.mmap(4 * PAGE)
        yield from nx.crecv(1, dst_small, PAGE)
        size = yield from nx.crecv(2, dst_big, 4 * PAGE)
        yield from nx.crecv(1, dst_small, PAGE)
        return nx.proc.peek(dst_big, size)

    _sys, results = run_world([sender, receiver])
    assert results[1] == results[0]


def test_invalid_arguments_rejected():
    def program(nx):
        src = nx.proc.space.mmap(PAGE)
        try:
            yield from nx.csend(1, src, 4, to=99)
        except ValueError:
            pass
        else:
            return "missed rank check"
        try:
            yield from nx.csend(-5, src, 4, to=0)
        except ValueError:
            return "ok"
        return "missed type check"

    _sys, results = run_world([program])
    assert results[0] == "ok"
