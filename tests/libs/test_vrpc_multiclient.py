"""VRPC multi-client serving: svc_run multiplexes bound transports."""

import pytest

from repro.libs.rpc import VrpcServer, clnt_create
from repro.libs.rpc.xdr import XdrDecoder, XdrEncoder
from repro.testbed import make_system

PROG, VERS = 0x600, 1


def test_two_clients_interleave_calls():
    system = make_system()
    results = {}

    def server(proc):
        srv = VrpcServer(system, proc, PROG, VERS)
        srv.register(
            1, lambda n: n + 1000,
            decode_args=lambda dec: dec.unpack_int(),
            encode_result=lambda enc, v: enc.pack_int(v),
        )
        yield from srv.accept_binding()
        yield from srv.accept_binding()
        yield from srv.svc_run(max_calls=12)
        results["served"] = srv.calls_served
        results["transports"] = len(srv.transports)

    def client(node):
        def body(proc):
            handle = yield from clnt_create(system, proc, 1, PROG, VERS)
            got = []
            for i in range(6):
                value = yield from handle.call(
                    1, node * 100 + i,
                    encode_args=lambda enc, v: enc.pack_int(v),
                    decode_result=lambda dec: dec.unpack_int(),
                )
                got.append(value)
                yield from proc.compute(25.0)  # interleave with the peer
            results["client-%d" % node] = got

        return body

    handles = [
        system.spawn(1, server),
        system.spawn(0, client(0)),
        system.spawn(2, client(2)),
    ]
    system.run_processes(handles)
    assert results["served"] == 12
    assert results["transports"] == 2
    assert results["client-0"] == [1000 + i for i in range(6)]
    assert results["client-2"] == [1200 + i for i in range(6)]


def test_three_clients_fair_service():
    """Three clients hammer the server; every call gets its own answer
    (no cross-binding reply leakage)."""
    system = make_system()
    results = {}
    n_calls = 5

    def server(proc):
        srv = VrpcServer(system, proc, PROG, VERS)
        srv.register(
            2, lambda s: s[::-1],
            decode_args=lambda dec: dec.unpack_string(),
            encode_result=lambda enc, v: enc.pack_string(v),
        )
        for _ in range(3):
            yield from srv.accept_binding()
        yield from srv.svc_run(max_calls=3 * n_calls)

    def client(node):
        def body(proc):
            handle = yield from clnt_create(system, proc, 1, PROG, VERS)
            ok = True
            for i in range(n_calls):
                text = "node%d-call%d" % (node, i)
                value = yield from handle.call(
                    2, text,
                    encode_args=lambda enc, v: enc.pack_string(v),
                    decode_result=lambda dec: dec.unpack_string(),
                )
                ok = ok and (value == text[::-1])
            results[node] = ok

        return body

    handles = [system.spawn(1, server)]
    for node in (0, 2, 3):
        handles.append(system.spawn(node, client(node)))
    system.run_processes(handles)
    assert results == {0: True, 2: True, 3: True}
