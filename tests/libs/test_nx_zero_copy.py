"""Deep tests of NX's zero-copy scout protocol (Section 4.1).

'The sender sends a scout packet... then immediately begins copying the
data into a local buffer.  The receive call, upon finding the scout,
sends back a reply... If the sender has not finished copying the data
by the time the receiver replies, the sender transmits the data from
the sender's user memory directly...  If the sender finishes copying
before the reply arrives, the sending program can continue, since a
safe version of the message data is available.'
"""

import pytest

from repro.libs.nx import VARIANTS, nx_world
from repro.testbed import make_system

PAGE = 4096
BIG = 3 * PAGE  # above the packet-buffer threshold


def run_world(programs, **kwargs):
    system = make_system()
    handles = nx_world(system, programs, variant=VARIANTS["AU-1copy"], **kwargs)
    system.run_processes(handles)
    return [h.value for h in handles]


def test_fast_receiver_interrupts_the_safety_copy():
    """Receiver is already waiting: the reply comes back quickly, the
    sender stops copying early and sends straight from user memory."""
    payload = bytes((i * 5) % 256 for i in range(BIG))

    def sender(nx):
        src = nx.proc.space.mmap(4 * PAGE)
        nx.proc.poke(src, payload)
        yield from nx.csend(1, src, BIG, to=1)
        # The sender never finished its backup copy: only the early
        # chunks (copied while waiting for the reply) are in the backup.
        backup = nx.proc.peek(nx._backup_vaddr, BIG)
        return backup != payload  # incomplete backup == stopped early

    def receiver(nx):
        dst = nx.proc.space.mmap(4 * PAGE)
        size = yield from nx.crecv(1, dst, 4 * PAGE)  # posted immediately
        return size, nx.proc.peek(dst, BIG)

    results = run_world([sender, receiver])
    stopped_early = results[0]
    size, data = results[1]
    assert stopped_early
    assert size == BIG and data == payload


def test_slow_receiver_full_backup_then_send():
    """Receiver shows up late: the sender completes the safety copy and
    ships from the backup buffer."""
    payload = bytes((i * 9) % 256 for i in range(BIG))

    def sender(nx):
        src = nx.proc.space.mmap(4 * PAGE)
        nx.proc.poke(src, payload)
        yield from nx.csend(2, src, BIG, to=1)
        backup = nx.proc.peek(nx._backup_vaddr, BIG)
        return backup == payload  # backup completed

    def receiver(nx):
        yield from nx.proc.compute(5000.0)  # far longer than the copy
        dst = nx.proc.space.mmap(4 * PAGE)
        yield from nx.crecv(2, dst, 4 * PAGE)
        return nx.proc.peek(dst, BIG)

    results = run_world([sender, receiver])
    assert results[0] is True
    assert results[1] == payload


def test_sender_buffer_reusable_after_blocking_csend_returns():
    """After csend returns, scribbling on the source must not corrupt
    what the receiver got (blocking semantics: the data is out)."""
    payload_a = bytes([0xAA]) * BIG
    payload_b = bytes([0xBB]) * BIG

    def sender(nx):
        src = nx.proc.space.mmap(4 * PAGE)
        nx.proc.poke(src, payload_a)
        yield from nx.csend(3, src, BIG, to=1)
        nx.proc.poke(src, payload_b)          # immediate reuse
        yield from nx.csend(3, src, BIG, to=1)

    def receiver(nx):
        dst = nx.proc.space.mmap(4 * PAGE)
        yield from nx.crecv(3, dst, 4 * PAGE)
        first = nx.proc.peek(dst, BIG)
        yield from nx.crecv(3, dst, 4 * PAGE)
        second = nx.proc.peek(dst, BIG)
        return first, second

    results = run_world([sender, receiver])
    first, second = results[1]
    assert first == payload_a
    assert second == payload_b


def test_scout_consumes_no_packet_buffer():
    """Large messages must not tie up the small-message slot pool: a
    burst of large sends works even with a single slot configured."""
    payload = bytes(BIG)

    def sender(nx):
        src = nx.proc.space.mmap(4 * PAGE)
        for _ in range(3):
            yield from nx.csend(4, src, BIG, to=1)
        return "done"

    def receiver(nx):
        dst = nx.proc.space.mmap(4 * PAGE)
        for _ in range(3):
            size = yield from nx.crecv(4, dst, 4 * PAGE)
            assert size == BIG
        return "done"

    results = run_world([sender, receiver], slots=1)
    assert results == ["done", "done"]


def test_exact_threshold_boundary():
    """payload_bytes is the largest one-copy message; one byte more
    switches to the scout protocol.  Both arrive intact."""
    def sender(nx):
        src = nx.proc.space.mmap(2 * PAGE)
        at = bytes([1]) * 2048
        over = bytes([2]) * 2052
        nx.proc.poke(src, at)
        yield from nx.csend(5, src, 2048, to=1)
        nx.proc.poke(src, over)
        yield from nx.csend(6, src, 2052, to=1)

    def receiver(nx):
        dst = nx.proc.space.mmap(2 * PAGE)
        a = yield from nx.crecv(5, dst, 2 * PAGE)
        first = nx.proc.peek(dst, a)
        b = yield from nx.crecv(6, dst, 2 * PAGE)
        second = nx.proc.peek(dst, b)
        return first, second

    results = run_world([sender, receiver])
    first, second = results[1]
    assert first == bytes([1]) * 2048
    assert second == bytes([2]) * 2052
