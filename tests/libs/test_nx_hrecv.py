"""Tests for NX hrecv (handler-based receive)."""

from repro.libs.nx import VARIANTS, nx_world
from repro.testbed import make_system

PAGE = 4096


def run_world(programs, **kwargs):
    system = make_system()
    handles = nx_world(system, programs, variant=VARIANTS["AU-1copy"], **kwargs)
    system.run_processes(handles)
    return [h.value for h in handles]


def test_hrecv_handler_fires_with_info():
    events = []

    def sender(nx):
        yield from nx.proc.compute(300.0)
        src = nx.proc.space.mmap(PAGE)
        nx.proc.poke(src, b"handled!")
        yield from nx.csend(33, src, 8, to=1)

    def receiver(nx):
        dst = nx.proc.space.mmap(PAGE)
        mid = yield from nx.hrecv(
            33, dst, PAGE,
            lambda count, node, mtype: events.append((count, node, mtype)),
        )
        yield from nx.msgwait(mid)
        return nx.proc.peek(dst, 8)

    results = run_world([sender, receiver])
    assert results[1] == b"handled!"
    assert events == [(8, 0, 33)]


def test_hrecv_fires_during_unrelated_progress():
    """The handler runs when *any* library call makes progress — the
    receiver is in a crecv for a different type when the hrecv matches."""
    events = []

    def sender(nx):
        src = nx.proc.space.mmap(PAGE)
        nx.proc.poke(src, b"asynchro")
        yield from nx.csend(70, src, 8, to=1)   # matches the hrecv
        yield from nx.proc.compute(500.0)
        nx.proc.poke(src, b"mainline")
        yield from nx.csend(71, src, 8, to=1)   # matches the crecv

    def receiver(nx):
        hbuf = nx.proc.space.mmap(PAGE)
        dst = nx.proc.space.mmap(PAGE)
        yield from nx.hrecv(
            70, hbuf, PAGE,
            lambda count, node, mtype: events.append(nx.proc.sim.now),
        )
        yield from nx.crecv(71, dst, PAGE)
        finished = nx.proc.sim.now
        return nx.proc.peek(hbuf, 8), events[0] < finished

    results = run_world([sender, receiver])
    payload, fired_before_crecv_done = results[1]
    assert payload == b"asynchro"
    assert fired_before_crecv_done


def test_multiple_hrecvs_fire_in_post_order():
    order = []

    def sender(nx):
        yield from nx.proc.compute(200.0)
        src = nx.proc.space.mmap(PAGE)
        for mtype in (1, 2):
            yield from nx.csend(mtype, src, 4, to=1)

    def receiver(nx):
        buf_a = nx.proc.space.mmap(PAGE)
        buf_b = nx.proc.space.mmap(PAGE)
        a = yield from nx.hrecv(1, buf_a, PAGE, lambda c, n, t: order.append("a"))
        b = yield from nx.hrecv(2, buf_b, PAGE, lambda c, n, t: order.append("b"))
        yield from nx.msgwait(a)
        yield from nx.msgwait(b)

    run_world([sender, receiver])
    assert order == ["a", "b"]
