"""Corner paths of the library protocols that only odd shapes reach."""

import pytest

from repro.libs.sockets import SOCKET_VARIANTS, SocketLib
from repro.testbed import Rendezvous, make_system
from repro.vmmc import attach

PAGE = 4096


def test_socket_du1copy_odd_length_aligned_start():
    """Aligned buffer, odd byte count: whole words go straight from user
    memory, the trailing partial word via the staging area."""
    system = make_system()
    payload = bytes(range(137))  # 34 words + 1 byte
    out = {}

    def server(proc):
        lib = SocketLib(system, proc, variant=SOCKET_VARIANTS["DU-1copy"])
        sock = yield from lib.listen(5).accept()
        buf = proc.space.mmap(PAGE)
        got = yield from sock.recv_exactly(buf, len(payload))
        out["data"] = proc.peek(buf, got)

    def client(proc):
        lib = SocketLib(system, proc, variant=SOCKET_VARIANTS["DU-1copy"])
        sock = yield from lib.connect(1, 5)
        src = proc.space.mmap(PAGE)  # page-aligned == word-aligned
        proc.poke(src, payload)
        yield from sock.send(src, len(payload))
        yield from sock.close()

    system.run_processes([system.spawn(1, server), system.spawn(0, client)])
    assert out["data"] == payload


def test_socket_record_wrapping_with_du():
    """Records that wrap the ring's end take the multi-segment DU path."""
    system = make_system()
    out = {}
    chunk = 3000  # with an 8 KB ring, the third record wraps

    def server(proc):
        lib = SocketLib(system, proc, variant=SOCKET_VARIANTS["DU-2copy"],
                        ring_bytes=8192)
        sock = yield from lib.listen(5).accept()
        buf = proc.space.mmap(PAGE)
        received = bytearray()
        while len(received) < 5 * chunk:
            got = yield from sock.recv(buf, PAGE)
            if got == 0:
                break
            received += proc.peek(buf, got)
        out["data"] = bytes(received)

    def client(proc):
        lib = SocketLib(system, proc, variant=SOCKET_VARIANTS["DU-2copy"],
                        ring_bytes=8192)
        sock = yield from lib.connect(1, 5)
        src = proc.space.mmap(PAGE)
        for i in range(5):
            proc.poke(src, bytes([i + 1]) * chunk)
            yield from sock.send(src, chunk)
        yield from sock.close()

    system.run_processes([system.spawn(1, server), system.spawn(0, client)])
    assert out["data"] == b"".join(bytes([i + 1]) * chunk for i in range(5))


def test_au_binding_at_nonzero_offset():
    """Bind local pages into the *middle* of an imported buffer."""
    system = make_system()
    rdv = Rendezvous(system)

    def receiver(proc):
        ep = attach(system, proc)
        buf = yield from ep.export_new(3 * PAGE)
        rdv.put("x", (proc.node.node_id, buf.export_id))
        yield from proc.poll(buf.vaddr + PAGE, 8, lambda b: b == b"mid-page")
        return (
            proc.peek(buf.vaddr, 8),            # page 0: untouched
            proc.peek(buf.vaddr + PAGE, 8),     # page 1: written
            proc.peek(buf.vaddr + 2 * PAGE, 8), # page 2: untouched
        )

    def sender(proc):
        ep = attach(system, proc)
        node, xid = yield rdv.get("x")
        imported = yield from ep.import_buffer(node, xid)
        local = ep.alloc_buffer(PAGE)
        yield from ep.bind(local, imported, nbytes=PAGE, offset=PAGE)
        yield from proc.write(local, b"mid-page")

    r = system.spawn(1, receiver)
    s = system.spawn(0, sender)
    system.run_processes([r, s])
    untouched0, written, untouched2 = r.value
    assert written == b"mid-page"
    assert untouched0 == b"\x00" * 8
    assert untouched2 == b"\x00" * 8


def test_du_send_to_offset_beyond_first_page():
    system = make_system()
    rdv = Rendezvous(system)

    def receiver(proc):
        ep = attach(system, proc)
        buf = yield from ep.export_new(4 * PAGE)
        rdv.put("x", (proc.node.node_id, buf.export_id))
        yield from proc.poll(buf.vaddr + 3 * PAGE + 96, 4, lambda b: b == b"tail")
        return proc.peek(buf.vaddr + 3 * PAGE, 100)

    def sender(proc):
        ep = attach(system, proc)
        node, xid = yield rdv.get("x")
        imported = yield from ep.import_buffer(node, xid)
        src = ep.alloc_buffer(PAGE)
        proc.poke(src, b"x" * 96 + b"tail")
        yield from ep.send(imported, src, 100, offset=3 * PAGE)

    r = system.spawn(1, receiver)
    s = system.spawn(0, sender)
    system.run_processes([r, s])
    assert r.value == b"x" * 96 + b"tail"
