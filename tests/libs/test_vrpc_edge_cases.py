"""VRPC edge cases: version mismatches, stream limits, daemon noise."""

import pytest

from repro.libs.rpc import PROG_MISMATCH, RpcFault, VrpcServer, clnt_create
from repro.libs.rpc.stream import VrpcStream
from repro.libs.rpc.xdr import XdrDecoder, XdrEncoder
from repro.testbed import make_system

PROG = 0x900


def test_version_mismatch_reported_per_rfc():
    """A call with the wrong version gets PROG_MISMATCH plus the
    supported range, as RFC 1057 specifies."""
    system = make_system()
    out = {}

    def server(proc):
        srv = VrpcServer(system, proc, PROG, vers=2)
        srv.register(0, lambda a: None)
        ok = yield from srv.accept_binding()
        out["accepted"] = ok
        if ok:
            yield from srv.svc_run(max_calls=1)

    def client(proc):
        # Bind claims version 2 (so binding succeeds), then the client
        # forges a version-9 call header by binding a handle with the
        # right version but calling through a version-shifted one.
        handle = yield from clnt_create(system, proc, 1, PROG, 2)
        handle.vers = 9  # forge the per-call version
        try:
            yield from handle.call(0)
        except RpcFault as fault:
            out["status"] = fault.status

    system.run_processes([system.spawn(1, server), system.spawn(0, client)])
    assert out["accepted"] is True
    assert out["status"] == PROG_MISMATCH


def test_binding_wrong_program_refused():
    system = make_system()
    out = {}

    def server(proc):
        srv = VrpcServer(system, proc, PROG, vers=1)
        ok = yield from srv.accept_binding()
        out["accepted"] = ok

    def client(proc):
        # Request reaches the server's Ethernet port, but with a
        # mismatched version: the server refuses the binding.
        try:
            yield from clnt_create(system, proc, 1, PROG, 7)
        except RpcFault as fault:
            out["client_error"] = str(fault)

    system.run_processes([system.spawn(1, server), system.spawn(0, client)])
    assert out["accepted"] is False
    assert "mismatch" in out["client_error"]


def test_oversized_message_rejected_at_stream():
    system = make_system()
    out = {}

    def server(proc):
        srv = VrpcServer(system, proc, PROG, 1, ring_bytes=4096)
        srv.register(1, lambda d: d,
                     decode_args=lambda dec: dec.unpack_opaque(),
                     encode_result=lambda enc, v: enc.pack_opaque(v))
        yield from srv.accept_binding()

    def client(proc):
        handle = yield from clnt_create(system, proc, 1, PROG, 1, ring_bytes=4096)
        with pytest.raises(ValueError):
            yield from handle.call(
                1, bytes(8000),
                encode_args=lambda enc, v: enc.pack_opaque(v),
                decode_result=lambda dec: dec.unpack_opaque(),
            )
        out["ok"] = True

    system.run_processes([system.spawn(1, server), system.spawn(0, client)])
    assert out["ok"]


def test_stream_rejects_unaligned_payload():
    system = make_system()

    def program(proc):
        from repro.vmmc import attach

        ep = attach(system, proc)
        vaddr = ep.alloc_buffer(4096)
        stream = VrpcStream(proc, ep, vaddr, 4096, automatic=True)
        with pytest.raises(ValueError):
            yield from stream.send_message(b"abc")  # not a word multiple
        return "rejected"

    handle = system.spawn(0, program)
    system.run_processes([handle])
    assert handle.value == "rejected"


def test_daemon_drops_unknown_ethernet_messages():
    """Diagnostics noise on the daemon port must not wedge anything."""
    system = make_system()

    def noisemaker(proc):
        from repro.kernel.daemon import DAEMON_PORT

        system.machine.ethernet.send(0, 1, DAEMON_PORT, {"junk": True})
        yield proc.sim.timeout(2000.0)
        # The daemon is still functional: a real export/import works.
        from repro.vmmc import attach

        ep = attach(system, proc)
        buf = yield from ep.export_new(4096)
        imported = yield from ep.import_buffer(0, buf.export_id)
        return imported.nbytes

    handle = system.spawn(0, noisemaker)
    system.run_processes([handle])
    assert handle.value == 4096
