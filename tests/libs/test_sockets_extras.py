"""Tests for the non-blocking / readiness socket extensions."""

import pytest

from repro.libs.sockets import SOCKET_VARIANTS, SocketLib
from repro.testbed import make_system

PAGE = 4096


def pair(system, client_body, server_body, variant="DU-1copy", port=6):
    results = {}

    def server(proc):
        lib = SocketLib(system, proc, variant=SOCKET_VARIANTS[variant])
        sock = yield from lib.listen(port).accept()
        results["server"] = yield from server_body(proc, sock)

    def client(proc):
        lib = SocketLib(system, proc, variant=SOCKET_VARIANTS[variant])
        sock = yield from lib.connect(1, port)
        results["client"] = yield from client_body(proc, sock)

    system.run_processes([system.spawn(1, server), system.spawn(0, client)])
    return results


def test_recv_nowait_returns_zero_when_empty():
    system = make_system()

    def client_body(proc, sock):
        yield from proc.compute(5000.0)
        src = proc.space.mmap(PAGE)
        yield from sock.send(src, 8)
        yield from sock.close()

    def server_body(proc, sock):
        start = proc.sim.now
        buf = proc.space.mmap(PAGE)
        empty = yield from sock.recv_nowait(buf, PAGE)
        elapsed = proc.sim.now - start
        got = yield from sock.recv(buf, PAGE)  # now block for it
        return empty, elapsed, got

    results = pair(system, client_body, server_body)
    empty, elapsed, got = results["server"]
    assert empty == 0
    assert elapsed < 100.0   # did not block
    assert got == 8


def test_recv_nowait_drains_buffered_data():
    system = make_system()

    def client_body(proc, sock):
        src = proc.space.mmap(PAGE)
        proc.poke(src, b"buffered")
        yield from sock.send(src, 8)
        yield from sock.close()

    def server_body(proc, sock):
        ok = yield from sock.wait_readable()
        buf = proc.space.mmap(PAGE)
        got = yield from sock.recv_nowait(buf, PAGE)
        return ok, got, proc.peek(buf, 8)

    results = pair(system, client_body, server_body)
    assert results["server"] == (True, 8, b"buffered")


def test_bytes_available_counts_payload_only():
    system = make_system()

    def client_body(proc, sock):
        src = proc.space.mmap(PAGE)
        yield from sock.send(src, 5)    # one record, 5 payload bytes
        yield from sock.send(src, 11)   # another, 11
        yield from sock.close()

    def server_body(proc, sock):
        yield from sock.wait_readable()
        # Give the second record time to land.
        yield from proc.compute(200.0)
        available = yield from sock.bytes_available()
        buf = proc.space.mmap(PAGE)
        got = yield from sock.recv(buf, 3)  # partial read of record 1
        after = yield from sock.bytes_available()
        return available, got, after

    results = pair(system, client_body, server_body)
    available, got, after = results["server"]
    assert available == 16
    assert got == 3
    assert after == 13


def test_wait_readable_returns_false_at_eof():
    system = make_system()

    def client_body(proc, sock):
        yield from sock.close()
        return None

    def server_body(proc, sock):
        readable = yield from sock.wait_readable()
        return readable

    results = pair(system, client_body, server_body)
    assert results["server"] is False
