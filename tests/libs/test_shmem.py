"""Tests for the two-party shared-memory model."""

import struct

import pytest

from repro.libs.shmem import SharedRegion
from repro.testbed import Rendezvous, make_system
from repro.vmmc import attach

PAGE = 4096


def run_pair(body0, body1):
    system = make_system()
    rdv = Rendezvous(system)

    def make(member, body):
        def program(proc):
            ep = attach(system, proc)
            region = yield from SharedRegion.join(ep, rdv, "seg", PAGE, member)
            result = yield from body(proc, region)
            return result

        return program

    a = system.spawn(0, make(0, body0))
    b = system.spawn(1, make(1, body1))
    system.run_processes([a, b])
    return a.value, b.value


def test_writes_appear_on_both_sides():
    def writer(proc, region):
        yield from region.write(0, b"shared-bytes")
        yield from region.set_flag(64, 1)
        # The writer's own copy holds the data too.
        return region.peek(0, 12)

    def reader(proc, region):
        yield from region.wait_flag(64, 1)
        data = yield from region.read(0, 12)
        return data

    local, remote = run_pair(writer, reader)
    assert local == b"shared-bytes"
    assert remote == b"shared-bytes"


def test_bidirectional_token_counter():
    """The classic shared-memory handshake: a counter incremented
    alternately by the two parties through the shared segment."""
    rounds = 6

    def party(member):
        def body(proc, region):
            for turn in range(rounds):
                owner = turn % 2
                if owner == member:
                    raw = region.peek(0, 4)
                    (value,) = struct.unpack("<I", raw)
                    yield from region.write(0, struct.pack("<I", value + 1))
                    yield from region.set_flag(8, turn + 1)
                else:
                    yield from region.wait_flag(8, turn + 1)
            final = yield from region.read(0, 4)
            return struct.unpack("<I", final)[0]

        return body

    a, b = run_pair(party(0), party(1))
    assert a == rounds
    assert b == rounds


def test_disjoint_regions_concurrent_writers():
    """Single-writer-per-location discipline: each side owns half the
    segment; both halves end up identical everywhere."""
    def party(member):
        def body(proc, region):
            base = 0 if member == 0 else 2048
            pattern = bytes([0x10 + member]) * 256
            yield from region.write(base, pattern)
            yield from region.set_flag(4000 + 4 * member, 1)
            yield from region.wait_flag(4000 + 4 * (1 - member), 1)
            mine = region.peek(base, 256)
            theirs = region.peek(2048 - base, 256)
            return mine, theirs

        return body

    (a_mine, a_theirs), (b_mine, b_theirs) = run_pair(party(0), party(1))
    assert a_mine == bytes([0x10]) * 256
    assert a_theirs == bytes([0x11]) * 256
    assert b_mine == bytes([0x11]) * 256
    assert b_theirs == bytes([0x10]) * 256


def test_wait_change_sees_update():
    def writer(proc, region):
        yield from proc.compute(500.0)
        yield from region.write(100, b"NEWS")

    def watcher(proc, region):
        old = region.peek(100, 4)
        new = yield from region.wait_change(100, 4, old)
        return new, proc.sim.now >= 500.0

    _w, (new, after) = run_pair(writer, watcher)
    assert new == b"NEWS"
    assert after


def test_bounds_checked():
    def body(proc, region):
        with pytest.raises(ValueError):
            yield from region.write(PAGE - 2, b"overflow")
        return "checked"

    def other(proc, region):
        return "ok"
        yield  # pragma: no cover

    a, b = run_pair(body, other)
    assert a == "checked"


def test_member_id_validated():
    system = make_system()
    rdv = Rendezvous(system)

    def program(proc):
        ep = attach(system, proc)
        with pytest.raises(ValueError):
            yield from SharedRegion.join(ep, rdv, "g", PAGE, member=2)
        return "validated"

    handle = system.spawn(0, program)
    system.run_processes([handle])
    assert handle.value == "validated"
