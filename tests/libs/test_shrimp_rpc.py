"""Specialized SHRIMP RPC tests: IDL, stub generation, calls, AU return."""

import pytest

from repro.libs.shrimp_rpc import (
    IdlError,
    SrpcError,
    compile_stubs,
    generate_stubs,
    parse_idl,
)
from repro.testbed import make_system

CALC_IDL = """
program Calc version 1 {
    int add(in int a, in int b);
    void touch(inout opaque<1000> buf);
    double dot(in double x[3], in double y[3]);
    string<64> greet(in string<32> name);
    void fill(out opaque[8] pattern, in int seed);
}
"""


class TestIdl:
    def test_parse_structure(self):
        idl = parse_idl(CALC_IDL)
        assert idl.name == "Calc"
        assert idl.version == 1
        assert [p.name for p in idl.procedures] == [
            "add", "touch", "dot", "greet", "fill",
        ]

    def test_fixed_offsets(self):
        idl = parse_idl(CALC_IDL)
        add = idl.procedure("add")
        assert [p.offset for p in add.params] == [0, 4]
        assert add.args_bytes == 8
        dot = idl.procedure("dot")
        assert [p.offset for p in dot.params] == [0, 24]
        assert dot.args_bytes == 48

    def test_areas_are_max_over_procedures(self):
        idl = parse_idl(CALC_IDL)
        touch = idl.procedure("touch")
        assert touch.args_bytes == 4 + 1000  # len word + bounded payload
        assert idl.args_area_bytes == touch.args_bytes
        assert idl.ret_area_bytes == 4 + 64  # greet's string<64> return

    def test_variable_types_reserve_bounded_slots(self):
        idl = parse_idl(CALC_IDL)
        greet = idl.procedure("greet")
        assert greet.params[0].type.slot_bytes == 4 + 32
        assert greet.return_type.slot_bytes == 4 + 64

    @pytest.mark.parametrize("bad", [
        "",
        "program X { }",                       # missing version
        "program X version 1 {\n}",            # no procedures
        "program X version 1 {\nint f(in void v);\n}",
        "program X version 1 {\nint f(sideways int v);\n}",
        "program X version 1 {\nint f(in int a);\nint f(in int b);\n}",
        "program X version 1 {\nwat f();\n}",
    ])
    def test_rejects_bad_definitions(self, bad):
        with pytest.raises(IdlError):
            parse_idl(bad)

    def test_comments_stripped(self):
        idl = parse_idl(
            "program C version 3 { // interface\n"
            "int f(in int a); // adds\n"
            "}"
        )
        assert idl.procedure("f").proc_id == 1


class TestStubgen:
    def test_generated_source_is_valid_python(self):
        source = generate_stubs(CALC_IDL)
        compile(source, "<test>", "exec")
        assert "class CalcClient" in source
        assert "class CalcServer" in source
        assert "_dispatch_1" in source

    def test_compile_stubs_returns_classes(self):
        client_cls, server_cls, idl = compile_stubs(CALC_IDL)
        assert client_cls.__name__ == "CalcClient"
        assert server_cls.__name__ == "CalcServer"
        assert idl.name == "Calc"
        for proc in idl.procedures:
            assert hasattr(client_cls, proc.name)
            assert hasattr(server_cls, "_dispatch_%d" % proc.proc_id)


class CalcImpl:
    """Server implementation: generator methods, refs for out/inout."""

    def add(self, a, b):
        return a + b
        yield  # pragma: no cover

    def touch(self, buf):
        data = yield from buf.get()
        if data.startswith(b"flip"):
            yield from buf.set(data[::-1])

    def dot(self, x, y):
        return sum(a * b for a, b in zip(x, y))
        yield  # pragma: no cover

    def greet(self, name):
        return "hello, %s!" % name
        yield  # pragma: no cover

    def fill(self, pattern, seed):
        yield from pattern.set(bytes((seed + i) % 256 for i in range(8)))


def run_calc(client_body, max_calls=4):
    system = make_system()
    client_cls, server_cls, _idl = compile_stubs(CALC_IDL)
    state = {}

    def server(proc):
        srv = server_cls(system, proc, CalcImpl())
        yield from srv.serve_binding(port=5)
        yield from srv.run(max_calls=max_calls)
        state["served"] = srv.calls_served

    def client(proc):
        cl = client_cls(system, proc)
        yield from cl.bind(1, port=5)
        state["result"] = yield from client_body(proc, cl)

    s = system.spawn(1, server)
    c = system.spawn(0, client)
    system.run_processes([s, c])
    return state


def test_scalar_call():
    def body(proc, cl):
        result = yield from cl.add(20, 22)
        return result

    assert run_calc(body, max_calls=1)["result"] == 42


def test_array_call():
    def body(proc, cl):
        result = yield from cl.dot([1.0, 2.0, 3.0], [4.0, 5.0, 6.0])
        return result

    assert run_calc(body, max_calls=1)["result"] == pytest.approx(32.0)


def test_string_call():
    def body(proc, cl):
        result = yield from cl.greet("shrimp")
        return result

    assert run_calc(body, max_calls=1)["result"] == "hello, shrimp!"


def test_inout_modified_by_server():
    def body(proc, cl):
        result = yield from cl.touch(b"flip-me!")
        return result

    assert run_calc(body, max_calls=1)["result"] == b"flip-me!"[::-1]


def test_inout_unmodified_returns_original():
    """The server never writes the INOUT: nothing travels back except
    the flag, and the client still sees its own (unchanged) value."""
    payload = bytes(range(200)) * 5  # 1000 bytes

    def body(proc, cl):
        result = yield from cl.touch(payload)
        return result

    assert run_calc(body, max_calls=1)["result"] == payload


def test_out_param():
    def body(proc, cl):
        result = yield from cl.fill(7)
        return result

    assert run_calc(body, max_calls=1)["result"] == bytes(range(7, 15))


def test_sequential_calls_reuse_binding():
    def body(proc, cl):
        results = []
        for i in range(4):
            r = yield from cl.add(i, i)
            results.append(r)
        return results

    assert run_calc(body, max_calls=4)["result"] == [0, 2, 4, 6]


def test_bound_overflow_rejected():
    def body(proc, cl):
        try:
            yield from cl.touch(bytes(2000))  # exceeds opaque<1000>
        except SrpcError:
            # Make one valid call so the server's serve loop completes.
            yield from cl.add(1, 1)
            return "bounded"

    assert run_calc(body, max_calls=1)["result"] == "bounded"


def test_null_call_rtt_near_9_5us():
    """Headline scalar: '9.5 usec for the non-compatible system' — a
    null call is one flag word each way, both single packets."""
    system = make_system()
    client_cls, server_cls, _ = compile_stubs(
        "program Null version 1 {\nvoid ping();\n}"
    )

    class NullImpl:
        def ping(self):
            return None
            yield  # pragma: no cover

    timing = {}

    def server(proc):
        srv = server_cls(system, proc, NullImpl())
        yield from srv.serve_binding(port=2)
        yield from srv.run(max_calls=12)

    def client(proc):
        cl = client_cls(system, proc)
        yield from cl.bind(1, port=2)
        yield from cl.ping()
        yield from cl.ping()
        start = proc.sim.now
        for _ in range(10):
            yield from cl.ping()
        timing["rtt"] = (proc.sim.now - start) / 10

    s = system.spawn(1, server)
    c = system.spawn(0, client)
    system.run_processes([s, c])
    assert 8.5 < timing["rtt"] < 11.0, timing["rtt"]
