"""Documentation contract: every public item carries a docstring.

The README promises 'doc comments on every public item'; this test
makes the promise structural.
"""

import importlib
import inspect
import pathlib
import pkgutil

import pytest

import repro

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def _walk_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if "__main__" in info.name:
            continue
        yield importlib.import_module(info.name)


MODULES = list(_walk_modules())


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), module.__name__


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_public_classes_and_functions_documented(module):
    undocumented = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-export; documented at its home
        if not (obj.__doc__ and obj.__doc__.strip()):
            undocumented.append(name)
        if inspect.isclass(obj):
            for member_name, member in vars(obj).items():
                if member_name.startswith("_"):
                    continue
                if inspect.isfunction(member) and not (
                    member.__doc__ and member.__doc__.strip()
                ):
                    undocumented.append("%s.%s" % (name, member_name))
    assert not undocumented, (
        "%s has undocumented public items: %s" % (module.__name__, undocumented)
    )


@pytest.mark.parametrize("doc", [
    "docs/CALIBRATION.md",
    "docs/PROTOCOLS.md",
    "docs/OBSERVABILITY.md",
    "docs/FAULTS.md",
    "docs/ONESIDED.md",
])
def test_doc_files_exist_and_are_linked_from_readme(doc):
    path = REPO_ROOT / doc
    assert path.is_file(), "%s is promised but missing" % doc
    assert path.read_text().lstrip().startswith("# "), doc
    assert doc in (REPO_ROOT / "README.md").read_text(), (
        "%s is not linked from the README docs index" % doc)


def test_observability_doc_matches_the_code():
    text = (REPO_ROOT / "docs" / "OBSERVABILITY.md").read_text()
    # The doc names the CLI, categories, and tracks the code implements;
    # pin the load-bearing ones so the doc cannot silently drift.
    for needle in ("python -m repro trace", "metrics_snapshot",
                   "cpu.store", "mesh.transit", "nic.dma_in",
                   "trace_event", "mesh.backplane"):
        assert needle in text, "OBSERVABILITY.md no longer mentions %r" % needle


def test_faults_doc_matches_the_code():
    text = (REPO_ROOT / "docs" / "FAULTS.md").read_text()
    # The doc names the CLI, the injection sites, and the typed errors
    # the code implements; pin them so the doc cannot silently drift.
    for needle in ("python -m repro faults", "FaultPlan.from_seed",
                   "mesh.link", "nic.du", "nic.dma_in", "bus.eisa",
                   "opt.timer", "VmmcTimeoutError", "SocketTimeoutError",
                   "NXTimeoutError", "RpcTimeout", "SrpcTimeoutError",
                   "firing_log", "MAX_XMIT"):
        assert needle in text, "FAULTS.md no longer mentions %r" % needle


def test_every_package_dir_is_importable():
    names = {m.__name__ for m in MODULES}
    for expected in (
        "repro.sim", "repro.hardware", "repro.hardware.nic",
        "repro.hardware.router", "repro.kernel", "repro.vmmc",
        "repro.libs.nx", "repro.libs.rpc", "repro.libs.sockets",
        "repro.libs.shrimp_rpc", "repro.bench",
    ):
        assert expected in names
