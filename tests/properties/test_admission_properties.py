"""Property tests: the admission queue's discipline holds under any
schedule.

:class:`~repro.apps.kv.admission.AdmissionQueue` is the pure half of
server-side admission control (docs/OVERLOAD.md): bounded occupancy,
FIFO within each priority lane, lanes served in ascending order, and
deadline-aware shedding.  Time is an explicit argument, so these tests
drive it with randomized arrival/service schedules — interleaved
offers, pops, and claims at monotonically increasing timestamps — and
check the discipline against a mirror model after every step:

* occupancy never exceeds the bound, and an offer is refused *iff* the
  queue was full at that instant;
* pops serve lanes in priority order and each lane in offer order, and
  a lane is only skipped past by shedding it dry;
* an entry is shed iff its queueing delay exceeded the deadline at the
  moment it reached the head — never served late, never shed early;
* every offered ticket is accounted exactly once:
  ``offers == rejected_full + shed + popped + waiting``.

``derandomize=True`` keeps the schedules fixed-seed: the sweep is the
same on every run, like the seeded fault schedules.
"""

from hypothesis import given, settings, strategies as st

from repro.apps.kv.admission import AdmissionQueue

LANES = (0, 1, 2)

events = st.lists(
    st.tuples(
        st.sampled_from(["offer", "pop", "claim"]),
        st.sampled_from(LANES),
        st.floats(min_value=0.0, max_value=150.0,
                  allow_nan=False, allow_infinity=False),
    ),
    max_size=200,
)
bounds = st.integers(min_value=1, max_value=6)
deadlines = st.sampled_from([0.0, 40.0, 120.0])


class Mirror:
    """The reference model: what the queue should be holding."""

    def __init__(self):
        self.waiting = {}           # ticket -> (lane, enqueued_at)

    def offer(self, ticket, lane, now):
        self.waiting[ticket] = (lane, now)

    def remove(self, ticket):
        return self.waiting.pop(ticket)

    def lanes_below(self, lane):
        """Tickets currently waiting in lanes of higher priority."""
        return [t for t, (l, _at) in self.waiting.items() if l < lane]


def drive(schedule, bound, deadline_us):
    """Run one schedule, checking every invariant at every step."""
    q = AdmissionQueue(bound, deadline_us)
    mirror = Mirror()
    served_order = []               # (lane, ticket) in pop order
    now = 0.0
    for action, lane, dt in schedule:
        now += dt
        if action == "offer":
            was_full = q.waiting >= bound
            ticket = q.offer(now, lane)
            if was_full:
                assert ticket is None, "offer admitted past the bound"
            else:
                assert ticket is not None, "offer refused below the bound"
                mirror.offer(ticket, lane, now)
        elif action == "pop":
            ticket, shed = q.pop(now)
            for t in shed:
                _lane, at = mirror.remove(t)
                assert now - at > deadline_us > 0.0, \
                    "shed ticket %d had not expired" % t
            if ticket is not None:
                t_lane, at = mirror.remove(ticket)
                assert deadline_us == 0.0 or now - at <= deadline_us, \
                    "served ticket %d past its deadline" % ticket
                # Priority: pop only reaches lane L by shedding every
                # higher-priority lane dry, so nothing of a lower lane
                # number may still be waiting.
                assert mirror.lanes_below(t_lane) == [], \
                    "lane %d served while a higher lane waited" % t_lane
                served_order.append((t_lane, ticket))
            else:
                assert not mirror.waiting, \
                    "pop came up empty with entries waiting"
        else:  # claim: service the queue's own choice of head, if any
            head = next(iter(sorted(
                mirror.waiting,
                key=lambda t: (mirror.waiting[t][0], t))), None)
            if head is None:
                continue
            _lane, at = mirror.remove(head)
            verdict = q.claim(head, now)
            expired = deadline_us > 0.0 and now - at > deadline_us
            assert verdict == ("shed" if expired else "serve")
        # Step invariants: occupancy and conservation.
        assert q.waiting == len(mirror.waiting)
        assert q.waiting <= bound
        assert q.high_water <= bound
        assert q.offers == q.rejected_full + q.shed + q.popped + q.waiting
    # FIFO within each lane: tickets are issued in offer order, so the
    # served sequence restricted to one lane must be increasing.
    for lane in LANES:
        lane_served = [t for l, t in served_order if l == lane]
        assert lane_served == sorted(lane_served), \
            "lane %d served out of offer order" % lane
    return q


@settings(max_examples=80, deadline=None, derandomize=True)
@given(schedule=events, bound=bounds, deadline_us=deadlines)
def test_admission_queue_discipline(schedule, bound, deadline_us):
    drive(schedule, bound, deadline_us)


@settings(max_examples=40, deadline=None, derandomize=True)
@given(schedule=events, bound=bounds)
def test_no_deadline_means_no_shedding(schedule, bound):
    q = drive(schedule, bound, 0.0)
    assert q.shed == 0


@settings(max_examples=40, deadline=None, derandomize=True)
@given(bound=bounds, lanes=st.lists(st.sampled_from(LANES),
                                    min_size=1, max_size=6))
def test_full_queue_rejects_exactly_the_overflow(bound, lanes):
    """Offering k arrivals into a bound-b queue admits min(k, b) and
    refuses the rest, regardless of lane mix."""
    q = AdmissionQueue(bound)
    admitted = sum(1 for lane in lanes if q.offer(0.0, lane) is not None)
    assert admitted == min(len(lanes), bound)
    assert q.rejected_full == len(lanes) - admitted
