"""Property tests: address translation covers exactly the right bytes."""

from hypothesis import given, settings, strategies as st

from repro.hardware import MachineConfig
from repro.hardware.memory import FrameAllocator
from repro.kernel.vm import AddressSpace

PAGE = 4096


def make_space(sizes):
    config = MachineConfig.shrimp_prototype()
    space = AddressSpace(config, FrameAllocator(config))
    regions = [space.mmap(size) for size in sizes]
    return space, regions


@given(
    st.lists(st.integers(min_value=1, max_value=5 * PAGE), min_size=1, max_size=6),
    st.data(),
)
@settings(max_examples=80, deadline=None)
def test_translate_covers_exact_byte_count(sizes, data):
    space, regions = make_space(sizes)
    index = data.draw(st.integers(min_value=0, max_value=len(regions) - 1))
    region_pages = -(-sizes[index] // PAGE)
    offset = data.draw(st.integers(min_value=0, max_value=region_pages * PAGE - 1))
    length = data.draw(st.integers(min_value=0,
                                   max_value=region_pages * PAGE - offset))
    segments = space.translate(regions[index] + offset, length)
    assert sum(seg_len for _p, seg_len in segments) == length


@given(st.lists(st.integers(min_value=1, max_value=3 * PAGE), min_size=2, max_size=6))
@settings(max_examples=60, deadline=None)
def test_distinct_regions_never_share_frames(sizes):
    space, regions = make_space(sizes)
    seen = set()
    for vaddr, size in zip(regions, sizes):
        frames = set(space.frames_of(vaddr, size))
        assert not (frames & seen)
        seen |= frames


@given(
    st.integers(min_value=1, max_value=4 * PAGE),
    st.integers(min_value=0, max_value=PAGE - 1),
)
@settings(max_examples=80, deadline=None)
def test_segments_are_page_bounded_and_nonoverlapping(size, offset):
    space, regions = make_space([size + offset + 1])
    segments = space.translate(regions[0] + offset, size)
    covered = []
    for paddr, length in segments:
        assert length > 0
        # A segment never extends past memory and never wraps a page in
        # a way that would cross into an unrelated frame (merging only
        # happens for physically adjacent frames, which is fine).
        covered.append((paddr, paddr + length))
    covered.sort()
    for (a_start, a_end), (b_start, b_end) in zip(covered, covered[1:]):
        assert a_end <= b_start  # no overlap


@given(st.integers(min_value=1, max_value=8))
@settings(max_examples=20, deadline=None)
def test_contiguous_alloc_translates_to_one_segment(npages):
    config = MachineConfig.shrimp_prototype()
    space = AddressSpace(config, FrameAllocator(config))
    vaddr = space.mmap(npages * PAGE, contiguous=True)
    segments = space.translate(vaddr, npages * PAGE)
    assert len(segments) == 1


@given(st.binary(min_size=1, max_size=2 * PAGE))
@settings(max_examples=40, deadline=None)
def test_roundtrip_through_memory_via_translation(data):
    """Writing via translated segments then reading back reproduces the
    data regardless of frame scatter."""
    from repro.hardware import PhysicalMemory

    config = MachineConfig.shrimp_prototype()
    allocator = FrameAllocator(config)
    space = AddressSpace(config, allocator)
    memory = PhysicalMemory(config)
    # Interleave allocations to encourage scattered frames.
    space.mmap(PAGE)
    vaddr = space.mmap(len(data) + PAGE)
    space.mmap(PAGE)
    offset = 0
    for paddr, length in space.translate(vaddr + 100, len(data), write=True):
        memory.write(paddr, data[offset : offset + length])
        offset += length
    out = b"".join(
        memory.read(paddr, length)
        for paddr, length in space.translate(vaddr + 100, len(data))
    )
    assert out == data
