"""Property tests: circular-buffer bookkeeping (sockets ring, credit
ring, VRPC stream segments) never loses, duplicates, or reorders bytes."""

from hypothesis import given, settings, strategies as st

from repro.libs.nx.credits import CreditRing
from repro.libs.sockets.circular import RECORD_HEADER_BYTES, RecordRing, record_bytes


class TestRecordRingProperties:
    @given(st.lists(st.integers(min_value=1, max_value=400), min_size=1, max_size=60))
    @settings(max_examples=80, deadline=None)
    def test_producer_consumer_through_shared_memory(self, payload_sizes):
        """Write records through a simulated ring memory; read them back
        in order through an independent reader-side RecordRing."""
        capacity = 1024
        writer = RecordRing(capacity)
        reader = RecordRing(capacity)
        memory = bytearray(capacity)
        produced = []
        consumed = []
        pending = list(payload_sizes)
        fill = 7
        while pending or writer.produced != reader.consumed:
            wrote = False
            if pending and writer.can_write(min(pending[0], writer.max_payload_fitting() or 0) or pending[0]):
                size = pending[0]
                if record_bytes(size) <= writer.free:
                    pending.pop(0)
                    payload = bytes((fill + i) % 256 for i in range(size))
                    fill += 31
                    header_off = writer.offset_of(writer.produced)
                    header, segments, _new = writer.place_record(size)
                    memory[header_off : header_off + 4] = header
                    cursor = 0
                    for seg in segments:
                        take = min(seg.length, size - cursor)
                        if take > 0:
                            memory[seg.ring_offset : seg.ring_offset + take] = (
                                payload[cursor : cursor + take]
                            )
                        cursor += seg.length
                    produced.append(payload)
                    wrote = True
            # Reader drains whatever is visible.
            reader.produced = writer.produced
            while reader.used > 0:
                header_off = reader.next_header_offset()
                (size,) = __import__("struct").unpack(
                    "<I", bytes(memory[header_off : header_off + 4])
                )
                data = bytearray()
                for seg in reader.payload_segments(size):
                    take = min(seg.length, size - len(data))
                    data += memory[seg.ring_offset : seg.ring_offset + take]
                consumed.append(bytes(data[:size]))
                reader.consume_record(size)
                writer.consumed = reader.consumed
            if not wrote and not pending:
                break
        assert consumed == produced

    @given(st.integers(min_value=12, max_value=2048))
    @settings(max_examples=50, deadline=None)
    def test_free_plus_used_is_capacity(self, size):
        ring = RecordRing(4096)
        if ring.can_write(size):
            ring.place_record(size)
        assert ring.free + ring.used == ring.capacity

    @given(st.lists(st.integers(min_value=1, max_value=100), max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_segments_cover_padded_payload_exactly(self, sizes):
        ring = RecordRing(512)
        for size in sizes:
            if not ring.can_write(size):
                break
            _h, segments, _p = ring.place_record(size)
            covered = sum(seg.length for seg in segments)
            assert covered == (size + 3) & ~3
            assert all(0 <= seg.ring_offset < ring.capacity for seg in segments)
            assert all(seg.ring_offset + seg.length <= ring.capacity for seg in segments)
            ring.consume_record(size)


class TestCreditRingProperties:
    @given(st.lists(st.integers(min_value=0, max_value=7), min_size=1, max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_credits_flow_in_order_through_memory(self, credits):
        """Writer stamps credits into a shared slot array; reader
        recovers exactly the same sequence."""
        slots = 16
        memory = {}
        writer = CreditRing(0, slots)
        reader = CreditRing(0, slots)
        recovered = []
        for index, credit in enumerate(credits):
            vaddr, data = writer.next_write(credit)
            memory[vaddr] = data
            # Reader polls after every write (worst-case interleaving
            # for ring reuse is bounded by the in-flight credit count,
            # which the NX protocol caps below the ring size).
            while True:
                slot = memory.get(reader.expected_slot_vaddr())
                if slot is None:
                    break
                got = reader.try_read(slot)
                if got is None:
                    break
                recovered.append(got)
        assert recovered == credits

    @given(st.integers(min_value=2, max_value=64), st.integers(min_value=0, max_value=500))
    @settings(max_examples=50, deadline=None)
    def test_slot_addresses_stay_in_ring(self, slots, seq_offset):
        ring = CreditRing(0x1000, slots)
        ring.next_seq += seq_offset
        vaddr = ring.expected_slot_vaddr()
        assert 0x1000 <= vaddr < 0x1000 + ring.region_bytes
        assert (vaddr - 0x1000) % 8 == 0
