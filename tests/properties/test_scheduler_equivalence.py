"""Property tests: the calendar queue is order-equivalent to the heap.

The simulator's total dispatch order — ``(time, priority, seq)``
lexicographic — is the determinism contract everything above it leans
on (docs/SIMULATOR.md).  The calendar-queue scheduler
(``Simulator(scheduler="calendar")``) must reproduce that order
*exactly*, including the seq tiebreak for entries at the same instant
and the URGENT-before-NORMAL rule, across bucket resizes and year
wrap-arounds.

Two angles:

* drive the raw queues (``CalendarQueue`` vs a plain heap) with
  randomized push/pop interleavings and compare every popped entry;
* run the same randomized process program under both schedulers and
  compare the full dispatch transcript.

``derandomize=True`` keeps the sweeps fixed-seed, like the repo's
other property suites.
"""

import heapq

from hypothesis import given, settings, strategies as st

from repro.sim.core import NORMAL, URGENT, CalendarQueue, Simulator

# Times cluster near zero and at a few identical instants so the seq
# tiebreak and same-bucket ordering actually get exercised; the big
# outliers force year-skips and resizes.
times = st.one_of(
    st.floats(min_value=0.0, max_value=8.0, allow_nan=False),
    st.sampled_from([0.0, 1.0, 1.0, 2.5, 1000.0, 12345.678]),
)
priorities = st.sampled_from([URGENT, NORMAL])

ops = st.lists(
    st.tuples(st.booleans(), times, priorities),  # (push?, time, priority)
    min_size=1,
    max_size=400,
)


@settings(derandomize=True, max_examples=200)
@given(ops=ops)
def test_calendar_pops_in_heap_order(ops):
    """Any push/pop interleaving yields exactly the heap's order."""
    cal = CalendarQueue()
    heap = []
    seq = 0
    last = 0.0
    for push, time, priority in ops:
        if push:
            seq += 1
            # Entries are never scheduled in the past (the Simulator
            # enforces delay >= 0), so times are bumped monotonically
            # to at least the last pop.
            entry = (max(time, last), priority, seq, None, ())
            cal.push(entry)
            heapq.heappush(heap, entry)
        elif heap:
            expected = heapq.heappop(heap)
            got = cal.pop()
            assert got == expected
            last = got[0]
    while heap:
        assert cal.pop() == heapq.heappop(heap)
    assert len(cal) == 0


@settings(derandomize=True, max_examples=50)
@given(
    delays=st.lists(
        st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
        min_size=1, max_size=40),
    splits=st.lists(st.integers(min_value=1, max_value=5),
                    min_size=1, max_size=8),
)
def test_schedulers_produce_identical_transcripts(delays, splits):
    """The same program dispatches identically under heap and calendar.

    The program forks several processes that sleep randomized delays,
    schedule urgent and normal callbacks at shared instants, and log
    every step; the transcripts (time, label) must match entry for
    entry, and both engines must count the same events_executed.
    """

    def run(scheduler):
        sim = Simulator(scheduler=scheduler)
        transcript = []

        def note(label):
            transcript.append((sim.now, label))

        def proc(pid, mine):
            for i, delay in enumerate(mine):
                yield sim.timeout(delay)
                note("p%d.step%d" % (pid, i))
                sim.schedule_call(0.0, note, "p%d.urgent%d" % (pid, i),
                                  priority=URGENT)
                sim.schedule_call(delay, note, "p%d.later%d" % (pid, i))

        from repro.sim.process import Process
        start = 0
        for pid, width in enumerate(splits):
            mine = delays[start:start + width] or [1.0]
            start += width
            Process(sim, proc(pid, mine), name="p%d" % pid)
        sim.run()
        return transcript, sim.events_executed

    heap_log, heap_events = run("heap")
    cal_log, cal_events = run("calendar")
    assert cal_log == heap_log
    assert cal_events == heap_events
