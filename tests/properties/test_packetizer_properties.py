"""Property tests: the combining packetizer never corrupts or reorders.

Whatever sequence of AU writes the snoop feeds it, the packets that
come out must (a) reconstruct exactly the written bytes at exactly the
written destinations, (b) respect the maximum packet size, and (c) for
a single monotone write stream, deliver payload bytes in order.
"""

from hypothesis import given, settings, strategies as st

from repro.hardware import MachineConfig
from repro.hardware.nic import OPTEntry
from repro.hardware.nic.fifo import OutgoingFifo
from repro.hardware.nic.packetizer import Packetizer
from repro.sim import Simulator, spawn


def run_writes(writes, combining=True, gap_us=0.0, max_payload=256):
    """Feed (offset, data) writes; return the closed packets."""
    sim = Simulator()
    config = MachineConfig(max_packet_payload=max_payload)
    fifo = OutgoingFifo(sim, config)
    packetizer = Packetizer(sim, config, node_id=0, fifo=fifo)
    entry = OPTEntry(dst_node=1, dst_page=100, combining=combining)
    collected = []

    def feeder():
        for offset, data in writes:
            packetizer.au_write(offset, data, entry)
            if gap_us:
                yield sim.timeout(gap_us)
        packetizer.flush()
        if False:
            yield  # pragma: no cover

    def collector():
        while True:
            packet = yield fifo.get()
            collected.append(packet)

    if gap_us:
        spawn(sim, feeder())
    else:
        for offset, data in writes:
            packetizer.au_write(offset, data, entry)
        packetizer.flush()
    spawn(sim, collector())
    sim.run(until=1e7)
    return collected, config


PAGE = 4096

write_lists = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=PAGE - 700),
        st.binary(min_size=1, max_size=600),
    ),
    min_size=1,
    max_size=12,
)


@given(write_lists, st.booleans())
@settings(max_examples=60, deadline=None)
def test_packets_reconstruct_written_bytes(writes, combining):
    packets, config = run_writes(writes, combining=combining)
    # Apply packets in order to a model of the destination page(s).
    page_base = 100 * config.page_size
    model = bytearray(2 * config.page_size)
    for packet in packets:
        rel = packet.dst_paddr - page_base
        assert rel >= 0
        model[rel : rel + packet.size] = packet.payload
    expected = bytearray(2 * config.page_size)
    for offset, data in writes:
        expected[offset : offset + len(data)] = data
    assert model == expected


@given(write_lists, st.booleans())
@settings(max_examples=60, deadline=None)
def test_packet_size_bounded(writes, combining):
    packets, config = run_writes(writes, combining=combining)
    assert all(1 <= p.size <= config.max_packet_payload for p in packets)


@given(st.lists(st.integers(min_value=1, max_value=300), min_size=1, max_size=10))
@settings(max_examples=60, deadline=None)
def test_monotone_stream_stays_in_order(chunk_sizes):
    """Consecutive ascending writes: packet destination ranges must be
    ascending and contiguous — the in-order property flag protocols
    rely on."""
    offset = 0
    writes = []
    value = 0
    for size in chunk_sizes:
        writes.append((offset, bytes((value + i) % 256 for i in range(size))))
        offset += size
        value += size
        if offset > PAGE - 320:
            break
    packets, config = run_writes(writes, combining=True)
    position = 100 * config.page_size
    for packet in packets:
        assert packet.dst_paddr == position
        position += packet.size
    total = sum(len(d) for _o, d in writes)
    assert position - 100 * config.page_size == total


@given(st.integers(min_value=1, max_value=900))
@settings(max_examples=30, deadline=None)
def test_timer_flushes_everything_eventually(nbytes):
    """With gaps larger than the combining timeout, every byte still
    leaves — the timer guarantees no data is stranded in an open packet."""
    writes = [(0, bytes(nbytes)), (2000, b"\x01\x02\x03\x04")]
    packets, _config = run_writes(writes, combining=True, gap_us=50.0)
    assert sum(p.size for p in packets) == nbytes + 4
