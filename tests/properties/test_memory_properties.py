"""Property tests: physical memory behaves like one flat byte array."""

from hypothesis import given, settings, strategies as st

from repro.hardware import MachineConfig, PhysicalMemory

SPAN = 1 << 16  # operate within a 64 KB window

ops = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=SPAN - 1),
        st.binary(min_size=1, max_size=600),
    ),
    min_size=1,
    max_size=30,
)


@given(ops)
@settings(max_examples=60, deadline=None)
def test_writes_match_reference_model(operations):
    memory = PhysicalMemory(MachineConfig.shrimp_prototype())
    reference = bytearray(SPAN)
    for paddr, data in operations:
        data = data[: SPAN - paddr]
        if not data:
            continue
        memory.write(paddr, data)
        reference[paddr : paddr + len(data)] = data
    assert memory.read(0, SPAN) == bytes(reference)


@given(ops, st.integers(min_value=0, max_value=SPAN - 64))
@settings(max_examples=40, deadline=None)
def test_partial_reads_consistent(operations, probe):
    memory = PhysicalMemory(MachineConfig.shrimp_prototype())
    reference = bytearray(SPAN)
    for paddr, data in operations:
        data = data[: SPAN - paddr]
        if data:
            memory.write(paddr, data)
            reference[paddr : paddr + len(data)] = data
    assert memory.read(probe, 64) == bytes(reference[probe : probe + 64])


@given(
    st.integers(min_value=0, max_value=SPAN - 128),
    st.integers(min_value=1, max_value=128),
    ops,
)
@settings(max_examples=60, deadline=None)
def test_watch_fires_iff_overlap(start, length, operations):
    memory = PhysicalMemory(MachineConfig.shrimp_prototype())
    fired = []
    memory.add_watch(start, length, lambda paddr, nbytes: fired.append((paddr, nbytes)))
    expected = []
    for paddr, data in operations:
        data = data[: SPAN - paddr]
        if not data:
            continue
        memory.write(paddr, data)
        if paddr < start + length and start < paddr + len(data):
            expected.append((paddr, len(data)))
    assert fired == expected
