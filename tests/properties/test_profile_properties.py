"""Property tests: profile folding conserves time on arbitrary trees.

`build_profile` must be a lossless re-binning of span time no matter
what shape the causal trees take: for randomized forests of nested
spans the per-stage totals, the folded stacks, and the per-request
decompositions must all sum to exactly the same microseconds as the
root intervals (plus tagged dispatch waits) they partition, up to
float-summation ulps on arbitrary inputs (the real-engine tests in
tests/obs/test_profile.py pin exact zero).

`derandomize=True` keeps the sweeps fixed-seed, like the repo's other
property suites.
"""

from hypothesis import given, settings, strategies as st

from repro.obs import PROFILE_STAGES, build_profile, render_folded
from repro.obs.diff import diff_profiles
from repro.sim.trace import Span

# Categories spanning every profile stage, including the cpu.* split.
CATEGORIES = ("srpc.call", "srpc.serve", "vmmc.send", "cpu.store",
              "cpu.poll", "nic.dma", "mesh.hop", "bus", "kv.serve")


@st.composite
def span_forest(draw):
    """A forest of request trees: roots with nested child chains."""
    spans = []
    sid = 0
    n_trees = draw(st.integers(min_value=1, max_value=6))
    for tid in range(1, n_trees + 1):
        start = draw(st.floats(min_value=0.0, max_value=1000.0))
        length = draw(st.floats(min_value=0.5, max_value=500.0))
        wait = draw(st.floats(min_value=0.0, max_value=50.0))
        tenant = draw(st.sampled_from(["", "gold", "bulk"]))
        sid += 1
        data = {"tid": tid, "arrival": start - wait}
        if tenant:
            data["tenant"] = tenant
        root = Span(sid, None, "kv.client",
                    draw(st.sampled_from(["get", "put"])),
                    "n0.cpu.p%d" % tid, start, start + length, data=data)
        spans.append(root)
        # A chain of nested children strictly inside the root.
        parent, lo, hi = root, start, start + length
        for _ in range(draw(st.integers(min_value=0, max_value=4))):
            pad = (hi - lo) * 0.1
            lo, hi = lo + pad, hi - pad
            if hi - lo < 1e-6:
                break
            sid += 1
            child = Span(sid, parent.sid,
                         draw(st.sampled_from(CATEGORIES)), "work",
                         parent.track, lo, hi)
            spans.append(child)
            parent = child
    return spans


@given(span_forest())
@settings(max_examples=60, derandomize=True, deadline=None)
def test_folding_conserves_time_exactly(spans):
    profile = build_profile(spans)
    roots = [s for s in spans
             if isinstance(s.data, dict) and "tid" in s.data]
    assert len(profile.requests) == len(roots)
    # A few ulps of summation noise on arbitrary floats; the
    # real-engine tests (tests/obs/test_profile.py) pin exact zero.
    assert profile.conservation_error < 1e-12
    # Stage totals, folded stacks, and per-request decompositions all
    # carry the same total microseconds.
    expected = sum((s.end - s.start)
                   + max(0.0, s.start - s.data["arrival"])
                   for s in roots)
    assert abs(profile.total_us - expected) < 1e-6 * max(1.0, expected)
    assert abs(sum(profile.stage_totals.values())
               - profile.total_us) < 1e-9 * max(1.0, profile.total_us)
    assert abs(sum(profile.folded.values())
               - profile.total_us) < 1e-6 * max(1.0, profile.total_us)
    for req in profile.requests:
        assert abs(sum(req.stages.values()) - req.total_us) < 1e-6


@given(span_forest())
@settings(max_examples=60, derandomize=True, deadline=None)
def test_every_stage_lands_in_the_profile_vocabulary(spans):
    profile = build_profile(spans)
    assert set(profile.stage_totals) <= set(PROFILE_STAGES)
    for stack in profile.folded:
        leaf = stack.split(";")[-1]
        assert leaf.strip("[]") in PROFILE_STAGES
    # Rendering never crashes and never invents negative values.
    for line in render_folded(profile).splitlines():
        assert int(line.rsplit(" ", 1)[1]) > 0


@given(span_forest(), span_forest())
@settings(max_examples=30, derandomize=True, deadline=None)
def test_diff_attribution_closes_on_profile_means(spans_a, spans_b):
    a, b = build_profile(spans_a), build_profile(spans_b)
    diff = diff_profiles(a, b)
    # Without measured overrides the stage deltas must sum to the
    # profile mean delta exactly (the plain-path closure property).
    assert abs(diff.attributed_delta_us
               - (b.mean_us() - a.mean_us())) < 1e-6
    assert diff.closure_error < 1e-6
