"""Property tests: the incremental Merkle tree matches a rebuild.

:class:`~repro.apps.kv.replication.MerkleTree` is the pure half of
anti-entropy (docs/REPLICATION.md): every write touches one bucket and
the ``log2(n_leaves)`` path above it, and a digest comparison between
two replicas must name *exactly* the keys whose records differ.  These
tests drive a tree with randomized put/tombstone/forget schedules
against a naive dict mirror and check:

* the incrementally-updated tree has the same root, leaf page, and key
  set as a tree rebuilt from the mirror in one pass — update order and
  overwrites never leak into the digests;
* ``diff`` between two independently-edited trees returns exactly the
  symmetric difference of their record sets (missing keys, differing
  versions, differing values — and nothing that matches);
* equal roots really mean equal record sets, and a wire round trip of
  the leaf page (``pack_leaves``/``unpack_leaves``) changes nothing.

``derandomize=True`` keeps the schedules fixed-seed, like the seeded
fault sweeps.
"""

from hypothesis import given, settings, strategies as st

from repro.apps.kv.replication import MerkleTree, entry_digest

#: Small trees force bucket collisions so multi-key leaves get covered.
N_LEAVES = 8

keys = st.sampled_from(["k%d" % i for i in range(12)])
versions = st.tuples(st.integers(min_value=0, max_value=5),
                     st.integers(min_value=0, max_value=3))
values = st.one_of(st.none(), st.binary(max_size=6))

ops = st.lists(st.tuples(st.sampled_from(["update", "discard"]),
                         keys, versions, values),
               max_size=80)


class Mirror:
    """The reference model: the record set the tree should digest."""

    def __init__(self):
        self.records = {}           # key -> (version, value-or-None)

    def apply(self, op, key, version, value):
        if op == "update":
            self.records[key] = (version, value)
        else:
            self.records.pop(key, None)

    def rebuild(self):
        return MerkleTree.build(
            [(k, v, val) for k, (v, val) in self.records.items()],
            n_leaves=N_LEAVES)


def _run(schedule):
    tree = MerkleTree(N_LEAVES)
    mirror = Mirror()
    for op, key, version, value in schedule:
        if op == "update":
            tree.update(key, version, value)
        else:
            tree.discard(key)
        mirror.apply(op, key, version, value)
    return tree, mirror


@settings(derandomize=True, max_examples=200)
@given(ops)
def test_incremental_updates_match_a_rebuild_from_scratch(schedule):
    tree, mirror = _run(schedule)
    rebuilt = mirror.rebuild()
    assert tree.root() == rebuilt.root()
    assert tree.leaf_digests() == rebuilt.leaf_digests()
    assert tree.keys() == sorted(mirror.records)
    assert len(tree) == len(mirror.records)


@settings(derandomize=True, max_examples=200)
@given(ops, ops)
def test_diff_names_exactly_the_divergent_keys(schedule_a, schedule_b):
    tree_a, mirror_a = _run(schedule_a)
    tree_b, mirror_b = _run(schedule_b)

    expected = sorted(
        key
        for key in set(mirror_a.records) | set(mirror_b.records)
        if mirror_a.records.get(key) != mirror_b.records.get(key)
        # Same digest means anti-entropy has nothing to ship even if
        # the tuples differ — digests are what the wire compares.
        if (key not in mirror_a.records or key not in mirror_b.records
            or entry_digest(key, *mirror_a.records[key])
            != entry_digest(key, *mirror_b.records[key]))
    )

    assert tree_a.diff(tree_b) == expected
    assert tree_b.diff(tree_a) == expected
    # Equal roots <=> nothing to ship.
    assert (tree_a.root() == tree_b.root()) == (not expected)


@settings(derandomize=True, max_examples=100)
@given(ops)
def test_leaf_page_survives_the_wire_round_trip(schedule):
    tree, _ = _run(schedule)
    page = tree.pack_leaves()
    assert len(page) == 8 * N_LEAVES
    assert MerkleTree.unpack_leaves(page, N_LEAVES) == tree.leaf_digests()
    assert tree.diff_leaves(tree.leaf_digests()) == []
