"""Property tests: the mesh delivers everything, in per-pair order.

'The backplane... preserves the order of messages from each sender to
each receiver' — the property every library's flag-after-data protocol
depends on.  Checked over random traffic on the 2x2 and 4x4 meshes.
"""

from collections import defaultdict

from hypothesis import given, settings, strategies as st

from repro.hardware import MachineConfig
from repro.hardware.router import MeshBackplane, Packet, PacketKind
from repro.sim import Simulator


def run_traffic(n_nodes, mesh_w, mesh_h, traffic):
    """traffic: list of (src, dst, size, delay_us). Returns arrivals
    per destination in arrival order as (src, seq)."""
    sim = Simulator()
    config = MachineConfig(n_nodes=n_nodes, mesh_width=mesh_w, mesh_height=mesh_h)
    mesh = MeshBackplane(sim, config)
    arrivals = defaultdict(list)
    for node in range(n_nodes):
        mesh.attach(node, lambda p, node=node: arrivals[node].append((p.src_node, p.seq)))
    injected = []
    for src, dst, size, delay in traffic:
        packet = Packet(src_node=src, dst_node=dst, dst_paddr=0x10000,
                        payload=bytes(size), kind=PacketKind.DELIBERATE_UPDATE)
        injected.append(packet)
        sim.schedule_call(delay, mesh.inject, packet)
    sim.run()
    return arrivals, injected


traffic_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3),    # src
        st.integers(min_value=0, max_value=3),    # dst
        st.integers(min_value=1, max_value=1024), # size
        st.floats(min_value=0.0, max_value=50.0), # injection delay
    ),
    min_size=1,
    max_size=40,
)


@given(traffic_strategy)
@settings(max_examples=60, deadline=None)
def test_every_packet_delivered_exactly_once(traffic):
    arrivals, injected = run_traffic(4, 2, 2, traffic)
    delivered = [seq for node in arrivals.values() for _src, seq in node]
    assert sorted(delivered) == sorted(p.seq for p in injected)


@given(traffic_strategy)
@settings(max_examples=60, deadline=None)
def test_per_pair_order_preserved(traffic):
    # Injection order per (src, dst) is the scheduled-time order with
    # stable tie-breaks; force distinct delays to make it unambiguous.
    traffic = [
        (src, dst, size, index * 0.25)
        for index, (src, dst, size, _delay) in enumerate(traffic)
    ]
    arrivals, injected = run_traffic(4, 2, 2, traffic)
    sent_order = defaultdict(list)
    for packet, (_s, _d, _z, _t) in zip(injected, traffic):
        sent_order[(packet.src_node, packet.dst_node)].append(packet.seq)
    for node, got in arrivals.items():
        per_src = defaultdict(list)
        for src, seq in got:
            per_src[src].append(seq)
        for src, seqs in per_src.items():
            assert seqs == sent_order[(src, node)]


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=15),
            st.integers(min_value=0, max_value=15),
            st.integers(min_value=1, max_value=512),
            st.floats(min_value=0.0, max_value=30.0),
        ),
        min_size=1,
        max_size=30,
    )
)
@settings(max_examples=30, deadline=None)
def test_sixteen_node_mesh_delivers_everything(traffic):
    arrivals, injected = run_traffic(16, 4, 4, traffic)
    delivered = [seq for node in arrivals.values() for _src, seq in node]
    assert sorted(delivered) == sorted(p.seq for p in injected)
