"""Determinism properties: identical runs are identical, always.

Every calibration number in this repository is a single measurement of
a deterministic simulation; these properties guard that determinism
across randomized workload shapes.
"""

from hypothesis import given, settings, strategies as st

from repro.bench.pingpong import STRATEGIES, vmmc_pingpong
from repro.libs.nx import VARIANTS, nx_world
from repro.testbed import make_system

PAGE = 4096


@given(
    st.sampled_from(sorted(STRATEGIES)),
    st.integers(min_value=1, max_value=512).map(lambda n: n * 4),
)
@settings(max_examples=15, deadline=None)
def test_raw_pingpong_is_reproducible(strategy_name, size):
    first = vmmc_pingpong(STRATEGIES[strategy_name], size, iterations=3)
    second = vmmc_pingpong(STRATEGIES[strategy_name], size, iterations=3)
    assert first.one_way_latency_us == second.one_way_latency_us


@given(
    st.lists(
        st.tuples(st.integers(1, 3), st.integers(1, 3000)),
        min_size=1,
        max_size=8,
    )
)
@settings(max_examples=10, deadline=None)
def test_nx_workload_end_times_reproducible(plan):
    def run():
        system = make_system()

        def sender(nx):
            src = nx.proc.space.mmap(PAGE)
            for mtype, size in plan:
                yield from nx.csend(mtype, src, size, to=1)

        def receiver(nx):
            dst = nx.proc.space.mmap(PAGE)
            for _mtype, _size in plan:
                yield from nx.crecv(-1, dst, PAGE)
            return nx.proc.sim.now

        handles = nx_world(system, [sender, receiver],
                           variant=VARIANTS["DU-1copy"])
        system.run_processes(handles)
        return handles[1].value

    assert run() == run()
