"""Property tests: AU snoop traffic and DU chunks share one pipeline.

The mux of Figure 2 feeds both datapaths into one Outgoing FIFO; no
interleaving of snooped writes and DU emissions may reorder, lose, or
corrupt anything.
"""

from hypothesis import given, settings, strategies as st

from repro.hardware import MachineConfig
from repro.hardware.nic import OPTEntry
from repro.hardware.nic.fifo import OutgoingFifo
from repro.hardware.nic.packetizer import Packetizer
from repro.hardware.router.packet import PacketKind
from repro.sim import Simulator, spawn

PAGE = 4096

# An operation is either an AU write (offset, payload) on the bound page
# or a DU emission (dst offset, payload) to a second page.
operations = st.lists(
    st.tuples(
        st.booleans(),                                  # True = AU
        st.integers(min_value=0, max_value=PAGE - 600),
        st.binary(min_size=1, max_size=512),
    ),
    min_size=1,
    max_size=16,
)


def run_mixed(ops):
    sim = Simulator()
    config = MachineConfig(max_packet_payload=256)
    fifo = OutgoingFifo(sim, config)
    packetizer = Packetizer(sim, config, node_id=0, fifo=fifo)
    au_entry = OPTEntry(dst_node=1, dst_page=100, combining=True)
    collected = []

    for is_au, offset, payload in ops:
        if is_au:
            packetizer.au_write(offset, payload, au_entry)
        else:
            # DU chunks arrive pre-bounded by the engine.
            for i in range(0, len(payload), config.max_packet_payload):
                chunk = payload[i : i + config.max_packet_payload]
                packetizer.du_emit(1, 200 * PAGE + offset + i, chunk, interrupt=False)
    packetizer.flush()

    def collector():
        while True:
            packet = yield fifo.get()
            collected.append(packet)

    spawn(sim, collector())
    sim.run(until=1e7)
    return collected, config


@given(operations)
@settings(max_examples=60, deadline=None)
def test_mixed_traffic_reconstructs_both_destinations(ops):
    packets, config = run_mixed(ops)
    au_model = bytearray(2 * PAGE)
    du_model = bytearray(2 * PAGE)
    for packet in packets:
        if packet.dst_paddr >= 200 * PAGE:
            rel = packet.dst_paddr - 200 * PAGE
            du_model[rel : rel + packet.size] = packet.payload
        else:
            rel = packet.dst_paddr - 100 * PAGE
            au_model[rel : rel + packet.size] = packet.payload
    au_expected = bytearray(2 * PAGE)
    du_expected = bytearray(2 * PAGE)
    for is_au, offset, payload in ops:
        target = au_expected if is_au else du_expected
        target[offset : offset + len(payload)] = payload
    assert au_model == au_expected
    assert du_model == du_expected


@given(operations)
@settings(max_examples=60, deadline=None)
def test_du_emission_closes_earlier_au_writes(ops):
    """Any DU packet in the FIFO appears after every AU byte written
    before it — the mux preserves program order."""
    packets, _config = run_mixed(ops)
    # Observed: AU bytes drained from the FIFO before each DU chunk.
    observed = []
    au_seen = 0
    for packet in packets:
        if packet.kind is PacketKind.DELIBERATE_UPDATE:
            observed.append(au_seen)
        else:
            au_seen += packet.size
    # Expected floor: the k-th DU chunk must see at least the AU bytes
    # issued before its originating operation (no overtaking).
    floors = []
    au_running = 0
    for is_au, _offset, payload in ops:
        if is_au:
            au_running += len(payload)
        else:
            for _ in range(-(-len(payload) // 256)):
                floors.append(au_running)
    assert len(observed) == len(floors)
    for got, minimum in zip(observed, floors):
        assert got >= minimum
