"""Property tests: randomly generated interfaces always stub-compile,
and the generated stubs round-trip random values through a live system.
"""

import keyword

from hypothesis import given, settings, strategies as st

from repro.libs.shrimp_rpc import compile_stubs, generate_stubs, parse_idl

_name = st.from_regex(r"[a-z][a-z0-9_]{0,8}", fullmatch=True).filter(
    lambda s: not keyword.iskeyword(s)
)

_scalar = st.sampled_from(["int", "uint", "float", "double"])


@st.composite
def _param_type(draw):
    kind = draw(st.integers(min_value=0, max_value=4))
    if kind == 0:
        return draw(_scalar)
    if kind == 1:
        return "%s[%d]" % (draw(_scalar), draw(st.integers(1, 8)))
    if kind == 2:
        return "opaque[%d]" % draw(st.integers(1, 64))
    if kind == 3:
        return "opaque<%d>" % draw(st.integers(1, 128))
    return "string<%d>" % draw(st.integers(1, 64))


@st.composite
def _interface(draw):
    prog = draw(_name).capitalize()
    version = draw(st.integers(1, 99))
    n_procs = draw(st.integers(1, 5))
    lines = ["program %s version %d {" % (prog, version)]
    used = set()
    for _ in range(n_procs):
        proc_name = draw(_name.filter(lambda s, used=used: s not in used))
        used.add(proc_name)
        ret = draw(st.one_of(st.just("void"), _param_type()))
        n_params = draw(st.integers(0, 4))
        params = []
        pnames = set()
        for _ in range(n_params):
            pname = draw(_name.filter(lambda s, pn=pnames: s not in pn))
            pnames.add(pname)
            direction = draw(st.sampled_from(["in", "out", "inout"]))
            params.append("%s %s %s" % (direction, draw(_param_type()), pname))
        lines.append("%s %s(%s);" % (ret, proc_name, ", ".join(params)))
    lines.append("}")
    return "\n".join(lines)


@given(_interface())
@settings(max_examples=50, deadline=None)
def test_random_interfaces_parse_and_compile(idl_text):
    interface = parse_idl(idl_text)
    assert interface.procedures
    source = generate_stubs(idl_text)
    compile(source, "<fuzz>", "exec")
    client_cls, server_cls, parsed = compile_stubs(idl_text)
    assert parsed.name == interface.name
    for proc in parsed.procedures:
        assert callable(getattr(client_cls, proc.name))
        assert callable(getattr(server_cls, "_dispatch_%d" % proc.proc_id))


@given(_interface())
@settings(max_examples=50, deadline=None)
def test_layouts_are_consistent(idl_text):
    interface = parse_idl(idl_text)
    for proc in interface.procedures:
        offset = 0
        for param in proc.params:
            assert param.offset == offset
            assert param.offset % 4 == 0
            assert param.type.slot_bytes % 4 == 0 or param.type.kind in ("void",)
            offset += param.type.slot_bytes
        assert proc.args_bytes == offset
        assert proc.args_bytes <= interface.args_area_bytes
        assert proc.return_type.slot_bytes <= interface.ret_area_bytes or \
            proc.return_type.kind == "void"
