"""Property tests: the VRPC cyclic queue's segment arithmetic."""

from hypothesis import given, settings, strategies as st

from repro.libs.rpc.stream import STREAM_CTRL_BYTES, VrpcStream


class _Shell(VrpcStream):
    """Segment math only — no simulation objects needed."""

    def __init__(self, ring_bytes):
        # Bypass the full constructor: only the fields segment math uses.
        self.ring_bytes = ring_bytes
        self.data_capacity = ring_bytes - STREAM_CTRL_BYTES
        self.write_total = 0
        self.read_total = 0


message_runs = st.lists(
    st.integers(min_value=1, max_value=500).map(lambda n: n * 4),  # word multiples
    min_size=1,
    max_size=40,
)


@given(message_runs)
@settings(max_examples=80, deadline=None)
def test_writer_and_reader_walk_identical_segments(sizes):
    """The sender's placement and the receiver's read plan for each
    message are byte-for-byte the same ring ranges, in the same order."""
    writer = _Shell(4096)
    reader = _Shell(4096)
    for nbytes in sizes:
        nbytes = min(nbytes, writer.data_capacity)
        write_plan = writer._ring_segments(writer.write_total, nbytes)
        read_plan = reader._ring_segments(reader.read_total, nbytes)
        assert write_plan == read_plan
        writer.write_total += nbytes
        reader.read_total += nbytes


@given(message_runs)
@settings(max_examples=80, deadline=None)
def test_segments_cover_message_within_capacity(sizes):
    stream = _Shell(2048)
    for nbytes in sizes:
        nbytes = min(nbytes, stream.data_capacity)
        segments = stream._ring_segments(stream.write_total, nbytes)
        assert sum(length for _off, length in segments) == nbytes
        for offset, length in segments:
            assert 0 <= offset < stream.data_capacity
            assert offset + length <= stream.data_capacity
            assert offset % 4 == 0
        stream.write_total += nbytes


@given(st.integers(min_value=1, max_value=500).map(lambda n: n * 4))
@settings(max_examples=50, deadline=None)
def test_wrap_produces_at_most_two_segments(nbytes):
    stream = _Shell(4096)
    nbytes = min(nbytes, stream.data_capacity)
    # Park the cursor near the end to force wraps.
    stream.write_total = stream.data_capacity - 8
    segments = stream._ring_segments(stream.write_total, nbytes)
    assert 1 <= len(segments) <= 2
    assert sum(length for _o, length in segments) == nbytes
