"""Unit tests for the Ethernet control network and the node buses."""

import pytest

from repro.hardware import EisaBus, Ethernet, MachineConfig, XpressBus
from repro.hardware.config import CacheMode
from repro.hardware.machine import Machine
from repro.sim import Simulator, spawn


class TestEthernet:
    def make(self):
        sim = Simulator()
        return sim, Ethernet(sim, MachineConfig.shrimp_prototype())

    def test_send_and_receive(self):
        sim, eth = self.make()
        got = []

        def receiver():
            frame = yield eth.recv(1, 50)
            got.append((frame.src_node, frame.payload, sim.now))

        spawn(sim, receiver())
        eth.send(0, 1, 50, {"hello": True}, wire_bytes=200)
        sim.run()
        src, payload, when = got[0]
        assert src == 0
        assert payload == {"hello": True}
        # Slow: kernel-stack latency plus shared-medium time.
        config = MachineConfig.shrimp_prototype()
        assert when >= config.ethernet_latency

    def test_ports_are_independent(self):
        sim, eth = self.make()
        got = []

        def receiver(port):
            frame = yield eth.recv(1, port)
            got.append((port, frame.payload))

        spawn(sim, receiver(10))
        spawn(sim, receiver(11))
        eth.send(0, 1, 11, "for-eleven")
        eth.send(0, 1, 10, "for-ten")
        sim.run()
        assert sorted(got) == [(10, "for-ten"), (11, "for-eleven")]

    def test_per_sender_ordering(self):
        sim, eth = self.make()
        got = []

        def receiver():
            for _ in range(3):
                frame = yield eth.recv(2, 5)
                got.append(frame.payload)

        spawn(sim, receiver())
        for i in range(3):
            eth.send(0, 2, 5, i)
        sim.run()
        assert got == [0, 1, 2]

    def test_shared_medium_serializes(self):
        sim, eth = self.make()
        arrival = {}

        def receiver(node):
            frame = yield eth.recv(node, 5)
            arrival[node] = sim.now

        spawn(sim, receiver(1))
        spawn(sim, receiver(2))
        eth.send(0, 1, 5, "a", wire_bytes=1400)
        eth.send(3, 2, 5, "b", wire_bytes=1400)
        sim.run()
        # Both waited on the same wire: the second arrives later.
        assert abs(arrival[1] - arrival[2]) >= 1400 / MachineConfig().ethernet_bandwidth

    def test_frame_counter(self):
        sim, eth = self.make()
        eth.send(0, 1, 5, "x")
        eth.send(0, 1, 5, "y")
        assert eth.frames_sent == 2


class TestBuses:
    def test_eisa_pio_cost_counts_accesses(self):
        sim = Simulator()
        config = MachineConfig.shrimp_prototype()
        eisa = EisaBus(sim, config, node_id=0)
        cost = eisa.pio_cost(2)
        assert cost == 2 * config.eisa_pio_access
        assert eisa.pio_accesses == 2

    def test_eisa_slower_than_xpress(self):
        sim = Simulator()
        config = MachineConfig.shrimp_prototype()
        eisa = EisaBus(sim, config, 0)
        xpress = XpressBus(sim, config, 0)
        assert eisa.occupancy(1024) > xpress.occupancy(1024)


class TestNodeCpuOps:
    def test_cpu_write_snooped_cpu_read_not(self):
        machine = Machine()
        node = machine.node(0)
        done = []

        def worker():
            yield from node.cpu_write(0x5000, b"abcd", CacheMode.WRITE_BACK)
            data = yield from node.cpu_read(0x5000, 4, CacheMode.WRITE_BACK)
            done.append(data)

        spawn(machine.sim, worker())
        machine.run()
        assert done == [b"abcd"]
        assert node.nic.snoop.writes_seen == 1

    def test_cpu_copy_snoops_destination(self):
        machine = Machine()
        node = machine.node(0)
        node.poke(0x1000, b"source!!")

        def worker():
            yield from node.cpu_copy(0x1000, 0x9000, 8,
                                     CacheMode.WRITE_BACK, CacheMode.WRITE_THROUGH)

        spawn(machine.sim, worker())
        machine.run()
        assert node.peek(0x9000, 8) == b"source!!"
        assert node.nic.snoop.writes_seen == 1

    def test_poke_is_not_snooped(self):
        machine = Machine()
        node = machine.node(0)
        node.poke(0x2000, b"quiet")
        assert node.nic.snoop.writes_seen == 0

    def test_machine_node_bounds(self):
        machine = Machine()
        with pytest.raises(ValueError):
            machine.node(99)
