"""Unit tests for the Outgoing and Incoming Page Tables."""

import pytest

from repro.hardware import MachineConfig
from repro.hardware.nic import IncomingPageTable, OPTEntry, OutgoingPageTable


@pytest.fixture
def config():
    return MachineConfig.shrimp_prototype()


class TestOutgoingPageTable:
    def test_bind_and_lookup(self, config):
        opt = OutgoingPageTable(config)
        entry = OPTEntry(dst_node=2, dst_page=77)
        opt.bind_page(5, entry)
        assert opt.lookup(5) is entry
        assert opt.lookup(6) is None

    def test_double_bind_rejected(self, config):
        opt = OutgoingPageTable(config)
        opt.bind_page(5, OPTEntry(1, 1))
        with pytest.raises(ValueError):
            opt.bind_page(5, OPTEntry(2, 2))

    def test_unbind(self, config):
        opt = OutgoingPageTable(config)
        opt.bind_page(5, OPTEntry(1, 1))
        opt.unbind_page(5)
        assert opt.lookup(5) is None
        with pytest.raises(ValueError):
            opt.unbind_page(5)

    def test_bind_out_of_range_rejected(self, config):
        opt = OutgoingPageTable(config)
        with pytest.raises(ValueError):
            opt.bind_page(config.memory_pages, OPTEntry(1, 1))

    def test_proxy_region_above_direct_region(self, config):
        opt = OutgoingPageTable(config)
        base = opt.allocate_proxy([OPTEntry(1, 10), OPTEntry(1, 11)])
        assert base >= config.memory_pages
        assert opt.proxy_entry(base).dst_page == 10
        assert opt.proxy_entry(base + 1).dst_page == 11

    def test_proxy_allocations_do_not_overlap(self, config):
        opt = OutgoingPageTable(config)
        a = opt.allocate_proxy([OPTEntry(1, 1)] * 3)
        b = opt.allocate_proxy([OPTEntry(2, 2)] * 2)
        assert b >= a + 3

    def test_free_proxy_invalidates_entries(self, config):
        opt = OutgoingPageTable(config)
        base = opt.allocate_proxy([OPTEntry(1, 1), OPTEntry(1, 2)])
        opt.free_proxy(base, 2)
        with pytest.raises(KeyError):
            opt.proxy_entry(base)
        with pytest.raises(ValueError):
            opt.free_proxy(base, 2)

    def test_empty_proxy_rejected(self, config):
        opt = OutgoingPageTable(config)
        with pytest.raises(ValueError):
            opt.allocate_proxy([])

    def test_bound_pages_lists_direct_only(self, config):
        opt = OutgoingPageTable(config)
        opt.bind_page(3, OPTEntry(1, 1))
        opt.allocate_proxy([OPTEntry(1, 2)])
        assert list(opt.bound_pages()) == [3]

    def test_entry_destination_address(self, config):
        entry = OPTEntry(dst_node=1, dst_page=10)
        assert entry.dst_paddr(4096, 16) == 10 * 4096 + 16


class TestIncomingPageTable:
    def test_pages_default_disabled(self, config):
        ipt = IncomingPageTable(config)
        assert not ipt.is_enabled(100)
        assert not ipt.wants_interrupt(100)

    def test_enable_disable_cycle(self, config):
        ipt = IncomingPageTable(config)
        ipt.enable(100, interrupt=True, owner="export-1")
        assert ipt.is_enabled(100)
        assert ipt.wants_interrupt(100)
        assert ipt.entry(100).owner == "export-1"
        ipt.disable(100)
        assert not ipt.is_enabled(100)
        assert ipt.entry(100).owner is None

    def test_set_interrupt_toggles_only_flag(self, config):
        ipt = IncomingPageTable(config)
        ipt.enable(5)
        ipt.set_interrupt(5, True)
        assert ipt.is_enabled(5) and ipt.wants_interrupt(5)
        ipt.set_interrupt(5, False)
        assert ipt.is_enabled(5) and not ipt.wants_interrupt(5)

    def test_check_range_requires_every_page(self, config):
        ipt = IncomingPageTable(config)
        page = config.page_size
        ipt.enable(10)
        assert ipt.check_range(10 * page, page)
        assert ipt.check_range(10 * page + 100, 50)
        # Crossing into page 11, which is disabled:
        assert not ipt.check_range(10 * page + page - 4, 8)
        ipt.enable(11)
        assert ipt.check_range(10 * page + page - 4, 8)

    def test_out_of_range_page_rejected(self, config):
        ipt = IncomingPageTable(config)
        with pytest.raises(ValueError):
            ipt.enable(config.memory_pages)
