"""Unit tests for the packetizer's combining behaviour (Section 3.2)."""

import pytest

from repro.hardware import MachineConfig
from repro.hardware.nic import OPTEntry
from repro.hardware.nic.fifo import OutgoingFifo
from repro.hardware.nic.packetizer import Packetizer
from repro.hardware.router.packet import PacketKind
from repro.sim import Simulator, spawn


def make_packetizer(config=None):
    sim = Simulator()
    config = config or MachineConfig.shrimp_prototype()
    fifo = OutgoingFifo(sim, config)
    packetizer = Packetizer(sim, config, node_id=0, fifo=fifo)
    return sim, config, fifo, packetizer


def drain(sim, fifo, count):
    """Collect ``count`` packets from the FIFO after running the sim."""
    got = []

    def collector():
        for _ in range(count):
            item = yield fifo.get()
            got.append(item)

    spawn(sim, collector())
    sim.run()
    return got


def entry(combining=True, use_timer=True, node=1, page=100, interrupt=False):
    return OPTEntry(dst_node=node, dst_page=page, combining=combining,
                    use_timer=use_timer, dest_interrupt=interrupt)


def test_consecutive_writes_combine_into_one_packet():
    sim, config, fifo, pk = make_packetizer()
    ent = entry()
    pk.au_write(0, b"\x01\x02\x03\x04", ent)
    pk.au_write(4, b"\x05\x06\x07\x08", ent)
    pk.flush()
    packets = drain(sim, fifo, 1)
    assert packets[0].payload == bytes(range(1, 9))
    assert packets[0].dst_paddr == 100 * config.page_size
    assert pk.combined_writes == 1


def test_non_consecutive_write_starts_new_packet():
    sim, _config, fifo, pk = make_packetizer()
    ent = entry()
    pk.au_write(0, b"\x01\x02\x03\x04", ent)
    pk.au_write(64, b"\x05\x06\x07\x08", ent)
    pk.flush()
    packets = drain(sim, fifo, 2)
    assert [p.size for p in packets] == [4, 4]


def test_large_write_is_chunked_at_max_payload():
    sim, config, fifo, pk = make_packetizer()
    data = bytes(range(256)) * 12  # 3072 bytes
    pk.au_write(0, data, entry())
    pk.flush()
    n_full, tail = divmod(len(data), config.max_packet_payload)
    expected = n_full + (1 if tail else 0)
    packets = drain(sim, fifo, expected)
    assert b"".join(p.payload for p in packets) == data
    assert all(p.size <= config.max_packet_payload for p in packets)


def test_timer_flushes_idle_open_packet():
    sim, config, fifo, pk = make_packetizer()
    pk.au_write(0, b"\xaa\xbb\xcc\xdd", entry(use_timer=True))
    packets = drain(sim, fifo, 1)
    assert packets[0].payload == b"\xaa\xbb\xcc\xdd"
    # Sent by the timer, so at/after the combine timeout:
    assert sim.now >= config.combine_timeout


def test_timer_extends_while_writes_keep_arriving():
    sim, config, fifo, pk = make_packetizer()
    ent = entry()
    half = config.combine_timeout / 2

    def writer():
        pk.au_write(0, b"\x01\x02\x03\x04", ent)
        yield sim.timeout(half)
        pk.au_write(4, b"\x05\x06\x07\x08", ent)

    spawn(sim, writer())
    got = []

    def collector():
        item = yield fifo.get()
        got.append((item, sim.now))

    spawn(sim, collector())
    sim.run()
    packet, when = got[0]
    assert packet.size == 8
    # Flush happens a full timeout after the *second* write:
    assert when >= half + config.combine_timeout


def test_no_timer_page_waits_for_explicit_close():
    sim, config, fifo, pk = make_packetizer()
    pk.au_write(0, b"\x01\x02\x03\x04", entry(use_timer=False))
    sim.run(until=config.combine_timeout * 10)
    assert len(fifo) == 0
    pk.flush()
    packets = drain(sim, fifo, 1)
    assert packets[0].size == 4


def test_combining_disabled_emits_per_word_packets():
    sim, config, fifo, pk = make_packetizer()
    data = bytes(range(16))
    pk.au_write(0, data, entry(combining=False))
    packets = drain(sim, fifo, 4)
    assert [p.size for p in packets] == [4, 4, 4, 4]
    assert b"".join(p.payload for p in packets) == data


def test_du_emit_closes_open_au_packet_first():
    sim, _config, fifo, pk = make_packetizer()
    pk.au_write(0, b"\x01\x02\x03\x04", entry())
    pk.du_emit(2, 0x5000, b"\x09\x0a\x0b\x0c", interrupt=False)
    packets = drain(sim, fifo, 2)
    assert packets[0].kind is PacketKind.AUTOMATIC_UPDATE
    assert packets[1].kind is PacketKind.DELIBERATE_UPDATE


def test_writes_to_different_destinations_do_not_combine():
    sim, _config, fifo, pk = make_packetizer()
    pk.au_write(0, b"\x01\x02\x03\x04", entry(node=1, page=100))
    # Same offset progression but a different destination node:
    pk.au_write(4, b"\x05\x06\x07\x08", entry(node=2, page=100))
    pk.flush()
    packets = drain(sim, fifo, 2)
    assert packets[0].dst_node == 1
    assert packets[1].dst_node == 2


def test_interrupt_flag_carried_on_packet():
    sim, _config, fifo, pk = make_packetizer()
    pk.au_write(0, b"\x01\x02\x03\x04", entry(interrupt=True))
    pk.flush()
    packets = drain(sim, fifo, 1)
    assert packets[0].interrupt


def test_exactly_max_payload_closes_packet_immediately():
    sim, config, fifo, pk = make_packetizer()
    pk.au_write(0, bytes(config.max_packet_payload), entry(use_timer=False))
    # No flush needed: the packet closed at the size bound.
    packets = drain(sim, fifo, 1)
    assert packets[0].size == config.max_packet_payload
