"""Utilization accounting: metrics must agree with direct measurement.

The metrics registry's numbers are only trustworthy if they equal what a
Stopwatch measures around the same activity; these tests pin that
equality at the primitive level and then check the machine-wide report.
"""

import pytest

from repro.hardware import CacheMode, Machine
from repro.hardware.nic import OPTEntry
from repro.sim import BandwidthChannel, Resource, Simulator, Stopwatch, spawn

PAGE = 4096


def test_channel_busy_time_matches_stopwatch():
    sim = Simulator()
    channel = BandwidthChannel(sim, bandwidth=33.0, overhead=0.1, name="eisa")
    measured = []

    def worker():
        sw = Stopwatch(sim)
        for nbytes in (4, 64, 4096):
            sw.start()
            yield channel.transfer(nbytes)
            measured.append(sw.stop())

    spawn(sim, worker())
    sim.run()
    # Sequential transfers start the moment the channel is free, so each
    # stopwatch span is pure occupancy and the sums must agree exactly.
    assert channel.busy_time == pytest.approx(sum(measured))
    assert channel.transfers == 3 and channel.bytes_carried == 4 + 64 + 4096
    assert channel.metrics_snapshot()["busy_time"] == pytest.approx(sum(measured))


def test_contended_channel_splits_busy_from_wait():
    sim = Simulator()
    channel = BandwidthChannel(sim, bandwidth=10.0, name="bus")
    sw = Stopwatch(sim)

    def worker():
        sw.start()
        done_a = channel.transfer(100)  # 10 us
        done_b = channel.transfer(100)  # queued behind it: 10 us more
        yield done_a
        yield done_b
        sw.stop()

    spawn(sim, worker())
    sim.run()
    # Back-to-back from t=0: the makespan IS the busy time; the second
    # transfer's head-of-line delay lands in wait_time, not busy_time.
    assert channel.busy_time == pytest.approx(sw.elapsed) == pytest.approx(20.0)
    assert channel.wait_time == pytest.approx(10.0)
    assert channel.utilization() == pytest.approx(1.0)


def test_resource_busy_time_matches_stopwatch():
    sim = Simulator()
    res = Resource(sim, capacity=1, name="arbiter")
    sw = Stopwatch(sim)

    def holder():
        req = res.request()
        yield req
        sw.start()
        yield sim.timeout(5.0)
        res.release(req)
        sw.stop()

    def late_waiter():
        yield sim.timeout(1.0)
        req = res.request()
        yield req
        res.release(req)

    spawn(sim, holder())
    spawn(sim, late_waiter())
    sim.run()
    assert res.busy_time == pytest.approx(sw.elapsed) == pytest.approx(5.0)
    assert res.wait_time == pytest.approx(4.0)  # waiter queued from t=1 to t=5
    assert res.grants == 2


def test_machine_bus_metrics_match_channel_counters():
    machine = Machine()
    machine.node(0).nic.opt.bind_page(16, OPTEntry(dst_node=1, dst_page=32))
    machine.node(1).nic.ipt.enable(32)

    def sender():
        yield from machine.node(0).cpu_write(16 * PAGE, bytes(600),
                                             CacheMode.WRITE_THROUGH)
        machine.node(0).nic.packetizer.flush()

    spawn(machine.sim, sender())
    machine.run()

    # The receive side DMAs the payload over node 1's EISA bus; the
    # registry row must carry the channel's own counters verbatim.
    eisa = machine.node(1).eisa
    assert eisa.busy_time > 0.0
    snapshots = {s["name"]: s for s in machine.metrics.snapshot()}
    row = snapshots[eisa.name]
    assert row["busy_time"] == pytest.approx(eisa.busy_time)
    assert row["bytes"] == eisa.bytes_carried
    assert row["count"] == eisa.transfers

    report = machine.utilization_report(min_count=1)
    assert report.startswith("utilization @ t=")
    assert eisa.name in report
    # Mesh links saw the packets, so lazy registration must surface them.
    assert "link" in report


def test_fresh_machine_report_hides_quiet_resources():
    machine = Machine()
    report = machine.utilization_report(min_count=1)
    assert report.splitlines()[1].lstrip().startswith("resource")
    assert len(report.splitlines()) == 2  # header only: nothing moved
