"""Unit tests for the mesh backplane: routing, ordering, timing."""

import pytest

from repro.hardware import MachineConfig
from repro.hardware.router import MeshBackplane, Packet, PacketKind
from repro.hardware.router.imrc import RouterNode
from repro.sim import Simulator


def make_mesh(config=None):
    sim = Simulator()
    config = config or MachineConfig.shrimp_prototype()
    mesh = MeshBackplane(sim, config)
    return sim, config, mesh


def packet(src, dst, payload=b"\x01\x02\x03\x04", paddr=0x10000):
    return Packet(
        src_node=src, dst_node=dst, dst_paddr=paddr,
        payload=payload, kind=PacketKind.AUTOMATIC_UPDATE,
    )


def test_hop_count_on_2x2_mesh():
    _sim, _config, mesh = make_mesh()
    assert mesh.hops(0, 1) == 1   # (0,0) -> (1,0)
    assert mesh.hops(0, 3) == 2   # (0,0) -> (1,1)
    assert mesh.hops(2, 1) == 2
    assert mesh.hops(1, 1) == 0


def test_inject_requires_attached_receiver():
    _sim, _config, mesh = make_mesh()
    with pytest.raises(ValueError):
        mesh.inject(packet(0, 1))


def test_packet_delivered_to_destination_only():
    sim, _config, mesh = make_mesh()
    received = {n: [] for n in range(4)}
    for n in range(4):
        mesh.attach(n, lambda p, n=n: received[n].append(p))
    mesh.inject(packet(0, 3))
    sim.run()
    assert len(received[3]) == 1
    assert not received[0] and not received[1] and not received[2]


def test_double_attach_rejected():
    _sim, _config, mesh = make_mesh()
    mesh.attach(0, lambda p: None)
    with pytest.raises(ValueError):
        mesh.attach(0, lambda p: None)


def test_more_hops_means_more_latency():
    times = {}
    for dst in (1, 3):
        sim, _config, mesh = make_mesh()
        for n in range(4):
            mesh.attach(n, lambda p, n=n: times.__setitem__((dst, n), sim.now))
        mesh.inject(packet(0, dst))
        sim.run()
    assert times[(3, 3)] > times[(1, 1)]


def test_larger_packets_take_longer():
    arrivals = {}
    for size in (4, 4096):
        sim, config, mesh = make_mesh(MachineConfig(max_packet_payload=8192))
        mesh.attach(1, lambda p: arrivals.__setitem__(p.size, sim.now))
        for n in (0, 2, 3):
            mesh.attach(n, lambda p: None)
        mesh.inject(packet(0, 1, payload=bytes(size)))
        sim.run()
    assert arrivals[4096] > arrivals[4]


def test_per_pair_ordering_preserved():
    """Packets from one source to one destination arrive in injection
    order — the property VMMC's in-order guarantee is built on."""
    sim, _config, mesh = make_mesh()
    got = []
    for n in range(4):
        mesh.attach(n, lambda p, n=n: got.append(p.seq) if n == 3 else None)
    packets = [packet(0, 3, payload=bytes([i + 1] * (4 + 100 * i))) for i in range(5)]
    for p in packets:
        mesh.inject(p)
    sim.run()
    assert got == [p.seq for p in packets]


def test_link_serialization_delays_second_packet():
    """Two same-path packets injected back-to-back: the second's arrival
    is pushed out by link occupancy (wormhole blocking)."""
    config = MachineConfig(max_packet_payload=8192)
    sim, _config, mesh = make_mesh(config)
    arrivals = []
    mesh.attach(1, lambda p: arrivals.append((p.seq, sim.now)))
    for n in (0, 2, 3):
        mesh.attach(n, lambda p: None)
    big = packet(0, 1, payload=bytes(8000))
    small = packet(0, 1, payload=b"\xff" * 4)
    mesh.inject(big)
    mesh.inject(small)
    sim.run()
    assert arrivals[0][0] == big.seq
    gap = arrivals[1][1] - arrivals[0][1]
    # The small packet had to wait for the big one to drain the link;
    # its arrival is at least close behind, never before.
    assert gap >= 0


def test_loopback_delivery_without_links():
    sim, _config, mesh = make_mesh()
    got = []
    mesh.attach(0, lambda p: got.append(sim.now))
    for n in (1, 2, 3):
        mesh.attach(n, lambda p: None)
    mesh.inject(packet(0, 0))
    sim.run()
    assert len(got) == 1
    assert got[0] > 0.0  # still pays NIC handoff + wire time


def test_byte_and_packet_counters():
    sim, _config, mesh = make_mesh()
    for n in range(4):
        mesh.attach(n, lambda p: None)
    mesh.inject(packet(0, 1, payload=bytes(100)))
    mesh.inject(packet(1, 2, payload=bytes(50)))
    sim.run()
    assert mesh.packets_routed == 2
    assert mesh.bytes_routed == 150
    assert sum(mesh.link_utilization().values()) > 0


class TestRouterNode:
    def test_dimension_order_x_first(self):
        sim = Simulator()
        config = MachineConfig.sixteen_node()
        router = RouterNode(sim, config, 0, 0)
        assert router.route_step(3, 2) == (1, 0)
        router_mid = RouterNode(sim, config, 3, 0)
        assert router_mid.route_step(3, 2) == (3, 1)

    def test_route_step_at_destination_raises(self):
        sim = Simulator()
        router = RouterNode(sim, MachineConfig.shrimp_prototype(), 1, 1)
        with pytest.raises(ValueError):
            router.route_step(1, 1)

    def test_link_to_non_neighbour_raises(self):
        sim = Simulator()
        config = MachineConfig.sixteen_node()
        a = RouterNode(sim, config, 0, 0)
        b = RouterNode(sim, config, 2, 0)
        with pytest.raises(ValueError):
            a.link_to(b)

    def test_link_reuse(self):
        sim = Simulator()
        config = MachineConfig.shrimp_prototype()
        a = RouterNode(sim, config, 0, 0)
        b = RouterNode(sim, config, 1, 0)
        assert a.link_to(b) is a.link_to(b)


def test_packet_requires_payload():
    with pytest.raises(ValueError):
        Packet(src_node=0, dst_node=1, dst_paddr=0, payload=b"",
               kind=PacketKind.AUTOMATIC_UPDATE)


def test_packet_payload_becomes_immutable_bytes():
    p = Packet(src_node=0, dst_node=1, dst_paddr=0,
               payload=bytearray(b"abc"), kind=PacketKind.DELIBERATE_UPDATE)
    assert isinstance(p.payload, bytes)
    assert p.wire_size(16) == 19
    assert p.end_paddr == 3
