"""Unit tests for MachineConfig validation and cost helpers."""

import pytest

from repro.hardware import CacheMode, MachineConfig


def test_prototype_defaults():
    config = MachineConfig.shrimp_prototype()
    assert config.n_nodes == 4
    assert config.mesh_width * config.mesh_height >= 4
    assert config.page_size == 4096
    assert config.memory_bytes == 40 * 1024 * 1024


def test_sixteen_node_variant():
    config = MachineConfig.sixteen_node()
    assert config.n_nodes == 16
    assert config.mesh_width == 4


def test_mesh_too_small_rejected():
    with pytest.raises(ValueError):
        MachineConfig(n_nodes=8, mesh_width=2, mesh_height=2)


def test_node_position_row_major():
    config = MachineConfig.shrimp_prototype()
    assert config.node_position(0) == (0, 0)
    assert config.node_position(1) == (1, 0)
    assert config.node_position(2) == (0, 1)
    assert config.node_position(3) == (1, 1)
    with pytest.raises(ValueError):
        config.node_position(4)


def test_write_cost_scales_linearly():
    config = MachineConfig.shrimp_prototype()
    one = config.write_cost(CacheMode.WRITE_THROUGH, 4)
    big = config.write_cost(CacheMode.WRITE_THROUGH, 4096)
    assert big > one
    # per-byte rate should dominate for big transfers:
    assert big == pytest.approx(
        config.wt_write_base + 4096 * config.wt_write_per_byte
    )


def test_uncached_single_word_write_cheaper_than_write_through():
    """The paper measured one-word AU latency 3.7 us uncached vs 4.75 us
    write-through; the per-op costs must preserve that direction."""
    config = MachineConfig.shrimp_prototype()
    assert config.write_cost(CacheMode.UNCACHED, 4) < config.write_cost(
        CacheMode.WRITE_THROUGH, 4
    )
    assert config.read_cost(CacheMode.UNCACHED, 4) < config.read_cost(
        CacheMode.WRITE_THROUGH, 4
    )


def test_uncached_streaming_slower_than_cached():
    """Bulk copies are worse uncached (word-at-a-time bus transactions)."""
    config = MachineConfig.shrimp_prototype()
    assert config.read_cost(CacheMode.UNCACHED, 8192) > config.read_cost(
        CacheMode.WRITE_BACK, 8192
    )


def test_copy_cost_is_read_plus_write():
    config = MachineConfig.shrimp_prototype()
    n = 1024
    assert config.copy_cost(CacheMode.WRITE_BACK, CacheMode.WRITE_THROUGH, n) == (
        config.read_cost(CacheMode.WRITE_BACK, n)
        + config.write_cost(CacheMode.WRITE_THROUGH, n)
    )


def test_au_copy_rate_caps_near_twenty_mb_per_sec():
    """AU bandwidth is limited by the sender's copy; Figure 3 puts the
    asymptote near 20 MB/s."""
    config = MachineConfig.shrimp_prototype()
    n = 1 << 20
    rate = n / config.copy_cost(CacheMode.WRITE_BACK, CacheMode.WRITE_THROUGH, n)
    assert 17.0 < rate < 23.0


def test_eisa_slower_than_xpress():
    config = MachineConfig.shrimp_prototype()
    assert config.eisa_dma_bandwidth < config.xpress_bandwidth


def test_invalid_page_size_rejected():
    with pytest.raises(ValueError):
        MachineConfig(page_size=4095)


def test_invalid_packet_payload_rejected():
    with pytest.raises(ValueError):
        MachineConfig(max_packet_payload=0)
