"""Tests for machine-wide statistics and reporting."""

from repro.hardware import CacheMode, Machine
from repro.hardware.nic import OPTEntry
from repro.sim import spawn

PAGE = 4096


def exercised_machine():
    machine = Machine()
    machine.node(0).nic.opt.bind_page(16, OPTEntry(dst_node=1, dst_page=32))
    machine.node(1).nic.ipt.enable(32)

    def sender():
        yield from machine.node(0).cpu_write(16 * PAGE, bytes(600),
                                             CacheMode.WRITE_THROUGH)
        machine.node(0).nic.packetizer.flush()

    spawn(machine.sim, sender())
    machine.run()
    return machine


def test_stats_counters_consistent():
    machine = exercised_machine()
    stats = machine.stats()
    assert stats["packets_routed"] >= 1
    assert stats["bytes_routed"] == 600
    node0 = stats["nodes"][0]
    node1 = stats["nodes"][1]
    assert node0["au_writes_matched"] >= 1
    assert node0["packets_formed"] == stats["packets_routed"]
    assert node1["bytes_received"] == 600
    assert node1["receive_faults"] == 0


def test_stats_report_renders_every_node():
    machine = exercised_machine()
    report = machine.stats_report()
    for node_id in range(4):
        assert "\n  %-5d" % node_id in "\n" + report or (" %d " % node_id) in report
    assert "600 bytes" in report


def test_fresh_machine_reports_zeros():
    machine = Machine()
    stats = machine.stats()
    assert stats["packets_routed"] == 0
    assert all(n["packets_formed"] == 0 for n in stats["nodes"].values())
