"""Backpressure and arbitration behaviour of the NIC datapath."""

import pytest

from repro.hardware import CacheMode, Machine, MachineConfig
from repro.hardware.nic import OPTEntry
from repro.sim import spawn

PAGE = 4096


def test_tiny_outgoing_fifo_still_delivers_everything():
    """A 2-packet outgoing FIFO forces the packetizer to stall; all data
    still arrives, in order."""
    machine = Machine(MachineConfig(outgoing_fifo_packets=2))
    for i in range(4):
        machine.node(0).nic.opt.bind_page(
            16 + i, OPTEntry(dst_node=1, dst_page=32 + i)
        )
        machine.node(1).nic.ipt.enable(32 + i)
    payload = bytes((i * 3) % 256 for i in range(4 * PAGE))

    def sender():
        yield from machine.node(0).cpu_write(16 * PAGE, payload,
                                             CacheMode.WRITE_THROUGH)
        machine.node(0).nic.packetizer.flush()

    spawn(machine.sim, sender())
    machine.run()
    assert machine.node(1).peek(32 * PAGE, 4 * PAGE) == payload
    assert machine.node(0).nic.fifo.high_water <= 2


def test_tiny_incoming_queue_still_delivers_everything():
    machine = Machine(MachineConfig(incoming_queue_packets=1))
    for i in range(2):
        machine.node(0).nic.opt.bind_page(16 + i, OPTEntry(dst_node=1, dst_page=32 + i))
        machine.node(1).nic.ipt.enable(32 + i)
    payload = bytes(range(256)) * 32  # 8 KB

    def sender():
        yield from machine.node(0).cpu_write(16 * PAGE, payload,
                                             CacheMode.WRITE_THROUGH)
        machine.node(0).nic.packetizer.flush()

    spawn(machine.sim, sender())
    machine.run()
    assert machine.node(1).peek(32 * PAGE, len(payload)) == payload


def test_incoming_traffic_has_arbiter_priority():
    """'The Arbiter is needed to share the NIC's processor port...
    with incoming given absolute priority.'  While a node is flooded
    with incoming packets, its own outgoing injection makes progress
    only between them — outgoing completion is later than in the quiet
    case."""
    def run(flood: bool) -> float:
        machine = Machine()
        # Node 1 will send one packet to node 2 while (optionally)
        # receiving a flood from node 0.
        machine.node(1).nic.opt.bind_page(16, OPTEntry(dst_node=2, dst_page=40))
        machine.node(2).nic.ipt.enable(40)
        machine.node(0).nic.opt.bind_page(16, OPTEntry(dst_node=1, dst_page=48))
        machine.node(1).nic.ipt.enable(48)
        arrival = {}
        machine.node(2).memory.add_watch(
            40 * PAGE, 4, lambda p, n: arrival.setdefault("t", machine.sim.now)
        )

        def flooder():
            for _ in range(40):
                yield from machine.node(0).cpu_write(
                    16 * PAGE, bytes(1024), CacheMode.WRITE_THROUGH
                )
            machine.node(0).nic.packetizer.flush()

        def victim_sender():
            yield machine.sim.timeout(400.0)  # mid-flood
            yield from machine.node(1).cpu_write(
                16 * PAGE, b"\x01\x02\x03\x04", CacheMode.WRITE_THROUGH
            )
            machine.node(1).nic.packetizer.flush()

        if flood:
            spawn(machine.sim, flooder())
        spawn(machine.sim, victim_sender())
        machine.run()
        return arrival["t"]

    quiet = run(flood=False)
    contended = run(flood=True)
    assert contended > quiet


def test_fifo_statistics_track_traffic():
    machine = Machine()
    machine.node(0).nic.opt.bind_page(16, OPTEntry(dst_node=1, dst_page=32))
    machine.node(1).nic.ipt.enable(32)

    def sender():
        yield from machine.node(0).cpu_write(16 * PAGE, bytes(2048),
                                             CacheMode.WRITE_THROUGH)
        machine.node(0).nic.packetizer.flush()

    spawn(machine.sim, sender())
    machine.run()
    fifo = machine.node(0).nic.fifo
    assert fifo.packets_enqueued >= 2
    assert fifo.bytes_enqueued == 2048
    assert len(fifo) == 0  # drained
