"""Unit tests for physical memory, watches, and frame allocation."""

import pytest

from repro.hardware import MachineConfig, MemoryError_, PhysicalMemory
from repro.hardware.memory import FrameAllocator


@pytest.fixture
def memory():
    return PhysicalMemory(MachineConfig.shrimp_prototype(), node_id=0)


def test_read_of_untouched_memory_is_zeros(memory):
    assert memory.read(0x1000, 8) == b"\x00" * 8


def test_write_then_read_roundtrip(memory):
    memory.write(0x2000, b"hello world")
    assert memory.read(0x2000, 11) == b"hello world"


def test_write_spanning_page_boundary(memory):
    page = memory.page_size
    data = bytes(range(100))
    memory.write(page - 50, data)
    assert memory.read(page - 50, 100) == data
    assert memory.resident_pages == 2


def test_out_of_range_access_raises(memory):
    with pytest.raises(MemoryError_):
        memory.read(memory.size - 2, 4)
    with pytest.raises(MemoryError_):
        memory.write(-1, b"x")
    with pytest.raises(MemoryError_):
        memory.read(0, -1)


def test_lazy_pages_only_materialize_on_write(memory):
    memory.read(0x100000, 64)
    assert memory.resident_pages == 0
    memory.write(0x100000, b"a")
    assert memory.resident_pages == 1


def test_byte_counters(memory):
    memory.write(0, b"abcd")
    memory.read(0, 2)
    assert memory.bytes_written == 4
    assert memory.bytes_read == 2


def test_watch_fires_on_overlapping_write(memory):
    hits = []
    memory.add_watch(100, 4, lambda paddr, n: hits.append((paddr, n)))
    memory.write(100, b"\x01")          # inside
    memory.write(96, b"\x00" * 8)        # straddles the start
    memory.write(104, b"\x00" * 4)       # adjacent, no overlap
    memory.write(0, b"\x00")             # far away
    assert hits == [(100, 1), (96, 8)]


def test_watch_removal_stops_callbacks(memory):
    hits = []
    watch = memory.add_watch(0, 16, lambda p, n: hits.append(p))
    memory.write(0, b"x")
    memory.remove_watch(watch)
    memory.write(0, b"y")
    assert hits == [0]
    assert memory.watch_count == 0


def test_watch_callback_may_remove_itself(memory):
    hits = []
    def callback(paddr, nbytes):
        hits.append(paddr)
        memory.remove_watch(watch)

    watch = memory.add_watch(0, 4, callback)
    memory.write(0, b"ab")
    memory.write(0, b"cd")
    assert hits == [0]


def test_double_remove_watch_is_harmless(memory):
    watch = memory.add_watch(0, 4, lambda p, n: None)
    memory.remove_watch(watch)
    memory.remove_watch(watch)
    assert memory.watch_count == 0


class TestFrameAllocator:
    def test_allocates_distinct_frames(self):
        alloc = FrameAllocator(MachineConfig.shrimp_prototype())
        frames = alloc.allocate(5)
        assert len(set(frames)) == 5
        assert 0 not in frames  # frame 0 reserved

    def test_contiguous_allocation(self):
        alloc = FrameAllocator(MachineConfig.shrimp_prototype())
        first = alloc.allocate_contiguous(4)
        assert first >= 1
        second = alloc.allocate_contiguous(2)
        assert second == first + 4

    def test_free_recycles_frames(self):
        alloc = FrameAllocator(MachineConfig.shrimp_prototype())
        frames = alloc.allocate(3)
        used = alloc.frames_in_use
        alloc.free(frames)
        assert alloc.frames_in_use == used - 3
        again = alloc.allocate(3)
        assert set(again) == set(frames)

    def test_exhaustion_raises(self):
        config = MachineConfig(memory_pages=4)
        alloc = FrameAllocator(config)
        with pytest.raises(MemoryError_):
            alloc.allocate(10)

    def test_invalid_count_raises(self):
        alloc = FrameAllocator(MachineConfig.shrimp_prototype())
        with pytest.raises(ValueError):
            alloc.allocate(0)
        with pytest.raises(ValueError):
            alloc.allocate_contiguous(-1)
