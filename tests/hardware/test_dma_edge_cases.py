"""Edge cases of the DMA engines and packet plumbing."""

import pytest

from repro.hardware import Machine, MachineConfig, PhysicalMemory
from repro.hardware.nic import DUCommand
from repro.hardware.nic.dma import _SegmentReader
from repro.sim import Simulator, spawn


def test_du_command_validates_segment_total():
    sim = Simulator()
    with pytest.raises(ValueError):
        DUCommand(
            src_segments=[(0x1000, 8)],
            opt_base=0,
            offset=0,
            size=16,  # does not match the 8 bytes of segments
            interrupt=False,
            done=sim.event(),
        )


def test_segment_reader_walks_pieces_in_order():
    memory = PhysicalMemory(MachineConfig.shrimp_prototype())
    memory.write(0x1000, b"AAAA")
    memory.write(0x9000, b"BBBBBB")
    reader = _SegmentReader(memory, [(0x1000, 4), (0x9000, 6)])
    assert reader.read(2) == b"AA"
    assert reader.read(4) == b"AABB"  # crosses the segment boundary
    assert reader.read(4) == b"BBBB"
    with pytest.raises(ValueError):
        reader.read(1)  # exhausted


def test_receive_fault_without_handler_is_loud():
    """A fault with no kernel handler installed must crash the run, not
    hang it (errors never pass silently)."""
    machine = Machine()
    nic1 = machine.node(1).nic
    nic1.fault_handler = None  # strip the kernel default
    from repro.hardware.nic import OPTEntry

    machine.node(0).nic.opt.bind_page(16, OPTEntry(dst_node=1, dst_page=32))
    # Page 32 deliberately NOT enabled.

    def sender():
        from repro.hardware.config import CacheMode

        yield from machine.node(0).cpu_write(16 * 4096, b"\x01\x02\x03\x04",
                                             CacheMode.WRITE_THROUGH)
        machine.node(0).nic.packetizer.flush()

    spawn(machine.sim, sender())
    with pytest.raises(RuntimeError, match="no kernel handler"):
        machine.run()


def test_unfreeze_when_not_frozen_rejected():
    machine = Machine()
    with pytest.raises(RuntimeError):
        machine.node(0).nic.unfreeze()


def test_du_engine_counters():
    machine = Machine()
    from repro.hardware.nic import OPTEntry

    machine.node(1).nic.ipt.enable(40)
    proxy = machine.node(0).nic.opt.allocate_proxy([OPTEntry(dst_node=1, dst_page=40)])
    machine.node(0).poke(8 * 4096, bytes(256))

    def sender():
        done = machine.node(0).nic.initiate_deliberate_update(
            [(8 * 4096, 256)], proxy, 0, 256
        )
        yield done

    spawn(machine.sim, sender())
    machine.run()
    assert machine.node(0).nic.du_engine.transfers_done == 1
    assert machine.node(0).nic.du_engine.bytes_sent == 256
