"""Hardware-level end-to-end tests: CPU write -> NIC -> mesh -> remote memory.

These exercise the full Figure 2 datapath below the VMMC layer, wiring
the page tables by hand (the role the kernel/daemon layer automates).
"""

import pytest

from repro.hardware import CacheMode, Machine, MachineConfig
from repro.hardware.nic import OPTEntry
from repro.sim import spawn


PAGE = 4096


def make_machine(**kwargs):
    return Machine(MachineConfig(**kwargs) if kwargs else None)


def bind_au(machine, src_node, src_page, dst_node, dst_page, npages=1, **flags):
    """Hand-wire an AU binding plus the receiving IPT enables."""
    for i in range(npages):
        machine.node(src_node).nic.opt.bind_page(
            src_page + i, OPTEntry(dst_node=dst_node, dst_page=dst_page + i, **flags)
        )
        machine.node(dst_node).nic.ipt.enable(dst_page + i)


def test_automatic_update_moves_bytes_to_remote_node():
    machine = make_machine()
    bind_au(machine, 0, 16, 1, 32)
    payload = b"automatic update!"

    def sender():
        yield from machine.node(0).cpu_write(16 * PAGE, payload, CacheMode.WRITE_THROUGH)

    spawn(machine.sim, sender())
    machine.run()
    assert machine.node(1).peek(32 * PAGE, len(payload)) == payload
    # Local memory also updated (it is a normal store):
    assert machine.node(0).peek(16 * PAGE, len(payload)) == payload


def test_au_word_latency_in_paper_range():
    """One-word AU, write-through: the paper measured 4.75 us user-to-user.
    At the hardware level (no library polling), it must be below that."""
    machine = make_machine()
    bind_au(machine, 0, 16, 1, 32, use_timer=False)
    arrival = {}
    machine.node(1).memory.add_watch(
        32 * PAGE, 4, lambda p, n: arrival.setdefault("t", machine.sim.now)
    )

    def sender():
        yield from machine.node(0).cpu_write(16 * PAGE, b"\x01\x02\x03\x04",
                                             CacheMode.WRITE_THROUGH)
        machine.node(0).nic.packetizer.flush()

    spawn(machine.sim, sender())
    machine.run()
    assert 2.0 < arrival["t"] < 4.75


def test_deliberate_update_moves_bytes():
    machine = make_machine()
    dst = machine.node(2)
    dst.nic.ipt.enable(40)
    proxy = machine.node(0).nic.opt.allocate_proxy([OPTEntry(dst_node=2, dst_page=40)])
    src_paddr = 8 * PAGE
    payload = bytes(range(64))
    machine.node(0).poke(src_paddr, payload)

    def sender():
        done = machine.node(0).nic.initiate_deliberate_update(
            src_segments=[(src_paddr, 64)], opt_base=proxy, offset=0, size=64
        )
        yield done

    proc = spawn(machine.sim, sender())
    machine.run()
    assert proc.ok
    assert dst.peek(40 * PAGE, 64) == payload


def test_deliberate_update_chunks_large_transfer():
    machine = make_machine()
    npages = 3
    first_dst_page = 50
    for i in range(npages):
        machine.node(1).nic.ipt.enable(first_dst_page + i)
    proxy = machine.node(0).nic.opt.allocate_proxy(
        [OPTEntry(dst_node=1, dst_page=first_dst_page + i) for i in range(npages)]
    )
    size = 3 * PAGE
    payload = bytes((i * 7) % 256 for i in range(size))
    machine.node(0).poke(4 * PAGE, payload)

    def sender():
        done = machine.node(0).nic.initiate_deliberate_update(
            src_segments=[(4 * PAGE, size)], opt_base=proxy, offset=0, size=size
        )
        yield done

    spawn(machine.sim, sender())
    machine.run()
    assert machine.node(1).peek(first_dst_page * PAGE, size) == payload
    stats = machine.node(0).nic.stats()
    assert stats["packets_formed"] >= size // machine.config.max_packet_payload


def test_du_from_scattered_physical_segments():
    """User pages need not be physically contiguous; the DU command's
    segment list stitches them."""
    machine = make_machine()
    machine.node(1).nic.ipt.enable(60)
    proxy = machine.node(0).nic.opt.allocate_proxy([OPTEntry(dst_node=1, dst_page=60)])
    machine.node(0).poke(10 * PAGE, b"AAAA")
    machine.node(0).poke(99 * PAGE, b"BBBB")

    def sender():
        done = machine.node(0).nic.initiate_deliberate_update(
            src_segments=[(10 * PAGE, 4), (99 * PAGE, 4)],
            opt_base=proxy, offset=0, size=8,
        )
        yield done

    spawn(machine.sim, sender())
    machine.run()
    assert machine.node(1).peek(60 * PAGE, 8) == b"AAAABBBB"


def test_receive_fault_freezes_until_kernel_unfreezes():
    """A packet for a non-enabled page freezes the receive path and
    interrupts the CPU; after the 'kernel' enables the page and
    unfreezes, the transfer completes."""
    machine = make_machine()
    nic1 = machine.node(1).nic
    faults = []

    def fault_handler(fault):
        faults.append(fault)
        nic1.ipt.enable(fault.paddr // PAGE)
        nic1.unfreeze()

    nic1.fault_handler = fault_handler
    # Bind AU without enabling the receive page:
    machine.node(0).nic.opt.bind_page(16, OPTEntry(dst_node=1, dst_page=32))

    def sender():
        yield from machine.node(0).cpu_write(16 * PAGE, b"\xde\xad\xbe\xef",
                                             CacheMode.WRITE_THROUGH)
        machine.node(0).nic.packetizer.flush()

    spawn(machine.sim, sender())
    machine.run()
    assert len(faults) == 1
    assert faults[0].src_node == 0
    assert machine.node(1).peek(32 * PAGE, 4) == b"\xde\xad\xbe\xef"
    assert nic1.stats()["receive_faults"] == 1


def test_notification_interrupt_requires_both_flags():
    """Interrupt fires only when sender AND receiver flags are set."""
    results = {}
    for receiver_flag in (False, True):
        machine = make_machine()
        notifications = []
        machine.node(1).nic.notify_handler = (
            lambda page, size: notifications.append(page)
        )
        machine.node(0).nic.opt.bind_page(
            16, OPTEntry(dst_node=1, dst_page=32, dest_interrupt=True, use_timer=False)
        )
        machine.node(1).nic.ipt.enable(32, interrupt=receiver_flag)

        def sender(machine=machine):
            yield from machine.node(0).cpu_write(
                16 * PAGE, b"\x01\x02\x03\x04", CacheMode.WRITE_THROUGH
            )
            machine.node(0).nic.packetizer.flush()

        spawn(machine.sim, sender())
        machine.run()
        results[receiver_flag] = list(notifications)
    assert results[False] == []
    assert results[True] == [32]


def test_eisa_bus_is_shared_between_du_and_incoming():
    """DU source reads and incoming DMA writes on the same node contend
    for one EISA bus: concurrent activity stretches completion time."""
    # Node 1 simultaneously sends a big DU to node 0 and receives a big
    # DU from node 0; compare with node 1 only receiving.
    def run(send_back: bool) -> float:
        machine = make_machine()
        size = 8 * PAGE
        for node, first_page in ((1, 100), (0, 100)):
            for i in range(8):
                machine.node(node).nic.ipt.enable(first_page + i)
        proxy01 = machine.node(0).nic.opt.allocate_proxy(
            [OPTEntry(dst_node=1, dst_page=100 + i) for i in range(8)]
        )
        proxy10 = machine.node(1).nic.opt.allocate_proxy(
            [OPTEntry(dst_node=0, dst_page=100 + i) for i in range(8)]
        )
        machine.node(0).poke(4 * PAGE, bytes(size))
        machine.node(1).poke(4 * PAGE, bytes(size))
        finish = {}

        def watch_arrival():
            machine.node(1).memory.add_watch(
                (100 + 7) * PAGE + PAGE - 4, 4,
                lambda p, n: finish.setdefault("t", machine.sim.now),
            )

        watch_arrival()

        def sender0():
            done = machine.node(0).nic.initiate_deliberate_update(
                [(4 * PAGE, size)], proxy01, 0, size
            )
            yield done

        def sender1():
            done = machine.node(1).nic.initiate_deliberate_update(
                [(4 * PAGE, size)], proxy10, 0, size
            )
            yield done

        spawn(machine.sim, sender0())
        if send_back:
            spawn(machine.sim, sender1())
        machine.run()
        return finish["t"]

    assert run(send_back=True) > run(send_back=False)
