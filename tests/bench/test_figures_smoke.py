"""Smoke tests for the figure harnesses (tiny sweeps, fast).

The full sweeps and shape assertions live in benchmarks/; these keep
the harness *interfaces* honest inside the regular test suite.
"""

import pytest

from repro.bench import (
    figure3_raw_vmmc,
    figure4_nx,
    figure5_vrpc,
    figure7_sockets,
    figure8_rpc_comparison,
)


def test_figure3_smoke():
    result = figure3_raw_vmmc(sizes=(8, 64), iterations=3)
    assert {s.name for s in result.series} == {
        "AU-1copy", "AU-2copy", "DU-0copy", "DU-1copy",
    }
    for series in result.series:
        assert series.latency_at(8) < series.latency_at(64)
    assert "4.7" in result.notes[0] or "paper" in result.notes[0]
    assert "Figure 3" in result.report()


def test_figure4_smoke():
    result = figure4_nx(sizes=(8,), iterations=3)
    assert len(result.series) == 5
    assert all(len(s.points) == 1 for s in result.series)


def test_figure5_smoke():
    result = figure5_vrpc(sizes=(4,), iterations=3)
    assert {s.name for s in result.series} == {"AU-1copy", "DU-1copy"}
    assert result.series_named("AU-1copy").latency_at(4) > 20.0  # RTTs


def test_figure7_smoke():
    result = figure7_sockets(sizes=(8,), iterations=3)
    assert {s.name for s in result.series} == {"AU-2copy", "DU-1copy", "DU-2copy"}


def test_figure8_smoke():
    result = figure8_rpc_comparison(sizes=(0, 100), iterations=3)
    compatible = result.series_named("compatible")
    non_compatible = result.series_named("non-compatible")
    for size in (1, 100):  # size 0 recorded as 1
        assert non_compatible.latency_at(size) < compatible.latency_at(size)
