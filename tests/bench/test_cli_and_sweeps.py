"""Tests for the CLI entry point and the config-sweep utility."""

import pytest

from repro.__main__ import main
from repro.bench.sweeps import au_word_latency, du_0copy_bandwidth, sweep_config
from repro.hardware.config import MachineConfig


class TestCli:
    def test_budget_command(self, capsys):
        assert main(["budget"]) == 0
        out = capsys.readouterr().out
        assert "AU one-word transfer" in out
        assert "DU one-word transfer" in out
        assert "TOTAL" in out

    def test_scalars_command(self, capsys):
        assert main(["scalars"]) == 0
        out = capsys.readouterr().out
        assert "4.75" in out            # the paper column
        assert "VRPC null round trip" in out

    def test_ttcp_command(self, capsys):
        assert main(["ttcp"]) == 0
        out = capsys.readouterr().out
        assert "ttcp_7k_mb_s" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure-nine"])


class TestSweeps:
    def test_sweep_varies_only_the_named_field(self):
        results = sweep_config("incoming_dma_setup", [0.6, 1.2], au_word_latency)
        (v0, lat0), (v1, lat1) = results
        assert (v0, v1) == (0.6, 1.2)
        # The latency difference equals the setup difference exactly
        # (one packet on the path).
        assert lat1 - lat0 == pytest.approx(0.6, abs=0.01)

    def test_sweep_rejects_unknown_field(self):
        with pytest.raises(AttributeError):
            sweep_config("warp_drive", [1], au_word_latency)

    def test_sweep_custom_base(self):
        base = MachineConfig(router_hop_latency=1.5)
        results = sweep_config("incoming_dma_setup", [1.2], au_word_latency, base=base)
        default = sweep_config("incoming_dma_setup", [1.2], au_word_latency)
        # The custom base's slower routers show up in the measurement.
        assert results[0][1] > default[0][1]

    def test_bandwidth_metric_is_sane(self):
        bandwidth = du_0copy_bandwidth(MachineConfig.shrimp_prototype())
        assert 20.0 < bandwidth < 24.0
