"""Perf smoke guard: the engine must not quietly lose its speed.

The committed ``BENCH_sim.json`` records the dispatch-microbench
events/sec the current engine achieved on the reference machine.  This
guard re-measures a small dispatch pass and fails when throughput has
regressed more than 30% below the committed number — the canary for an
accidentally quadratic hot path or a fast path silently disabled.

Wall-clock guards are machine-sensitive by nature: the committed
number came from one machine, CI runs on another.  The 30% margin on
a best-of-3 measurement absorbs normal scheduling noise; a genuinely
slower host can opt out with ``REPRO_SKIP_PERF_SMOKE=1`` (see
docs/SIMULATOR.md, "How to profile").
"""

import json
import os
import pathlib

import pytest

from repro.bench.simspeed import dispatch_rate

BENCH = pathlib.Path(__file__).resolve().parents[2] / "BENCH_sim.json"


@pytest.mark.skipif(os.environ.get("REPRO_SKIP_PERF_SMOKE") == "1",
                    reason="perf smoke disabled for this host")
def test_dispatch_rate_within_30pct_of_committed():
    """events/sec >= 70% of the committed BENCH_sim.json dispatch rate."""
    committed = json.loads(BENCH.read_text())
    target = committed["dispatch"]["events_per_s"]
    measured = dispatch_rate(events=50000, repeats=3)["events_per_s"]
    assert measured >= 0.7 * target, (
        "dispatch throughput %.0f events/s is more than 30%% below the "
        "committed %.0f events/s — engine regression, or a slow host "
        "(set REPRO_SKIP_PERF_SMOKE=1 if it's the host)"
        % (measured, target))


def test_bench_artifact_schema_and_claims():
    """The committed artifact is well-formed and self-consistent."""
    committed = json.loads(BENCH.read_text())
    assert committed["schema"] == "repro.bench.simspeed/v1"
    assert not committed["quick"], "commit full measurements, not --quick"
    base = committed["baseline_seed_engine"]
    dispatch = committed["dispatch"]
    speed = committed["speedup_vs_seed"]
    assert dispatch["events"] >= 200000
    ratio = dispatch["events_per_s"] / base["dispatch_events_per_s"]
    assert abs(ratio - speed["dispatch_events_per_s"]) < 1e-9
    # The PR 9 tentpole claim, pinned: >= 2x dispatch events/sec.
    assert speed["dispatch_events_per_s"] >= 2.0
    assert 0.0 < speed["capacity_events_eliminated"] < 1.0
