"""The shared bench-artifact writer: one schema'd path for every
BENCH_*.json this repo emits.

Satellite of docs/OBSERVABILITY.md "Profiles & diffs": the committed
artifacts must validate against their registered schemas, the writer
must refuse invalid payloads before touching the filesystem, and
`load_bench_json` must round-trip what `write_bench_json` wrote — the
contract `python -m repro diff --bench` relies on.
"""

import json
import pathlib

import pytest

from repro.bench.report import (
    BENCH_SCHEMAS,
    load_bench_json,
    validate_bench_payload,
    write_bench_json,
)

REPO = pathlib.Path(__file__).resolve().parent.parent.parent


def _sample(schema):
    """A minimal valid payload per registered schema."""
    if schema == "repro.bench.capacity/v1":
        return {
            "schema": schema, "seed": 11, "loads": [10000.0],
            "config": {}, "mode": "sweep", "knee_load": None,
            "points": [{"offered_load": 10000.0, "throughput": 9000.0,
                        "p50_us": 40.0, "p99_us": 90.0}],
        }
    if schema == "repro.bench.simspeed/v1":
        return {
            "schema": schema, "quick": True,
            "baseline_seed_engine": {"events_per_s": 388437.0},
            "dispatch": {"events_per_s": 800000.0},
            "capacity": {"best_wall_s": 1.0},
            "speedup_vs_seed": {"dispatch": 2.1},
        }
    return {
        "schema": schema, "seed": 3, "interval_us": 1000.0,
        "staleness": {"stale": 0, "reads": 100},
        "convergence": {"rounds": 2, "repaired": 5,
                        "divergent_last": 0, "converged_at_us": 5000.0},
        "spec_line": "workload seed=3 ...",
    }


def test_every_registered_schema_has_a_valid_sample():
    for schema in BENCH_SCHEMAS:
        assert validate_bench_payload(_sample(schema)) == [], schema


def test_committed_artifacts_validate():
    # The repo's own committed artifacts must load through the shared
    # reader without special cases — that is what diff --bench ingests.
    for name in ("BENCH_capacity.json", "BENCH_sim.json"):
        payload = load_bench_json(str(REPO / name))
        assert payload["schema"] in BENCH_SCHEMAS


def test_unknown_schema_is_rejected():
    problems = validate_bench_payload({"schema": "nope/v9"})
    assert len(problems) == 1
    assert "unknown bench schema" in problems[0]
    assert "repro.bench.capacity/v1" in problems[0]  # lists known ones


def test_missing_top_level_keys_are_each_reported():
    payload = _sample("repro.bench.simspeed/v1")
    del payload["quick"]
    del payload["capacity"]
    problems = validate_bench_payload(payload)
    assert any("'quick'" in p for p in problems)
    assert any("'capacity'" in p for p in problems)


def test_capacity_ab_requires_both_sweeps():
    payload = _sample("repro.bench.capacity/v1")
    payload["mode"] = "ab"
    problems = validate_bench_payload(payload)
    assert any("missing 'baseline'" in p for p in problems)
    assert any("missing 'mitigated'" in p for p in problems)


def test_capacity_points_are_checked_per_key():
    payload = _sample("repro.bench.capacity/v1")
    del payload["points"][0]["p99_us"]
    problems = validate_bench_payload(payload)
    assert any("point 0 missing 'p99_us'" in p for p in problems)


def test_non_serializable_payload_is_rejected():
    payload = _sample("repro.bench.capacity/v1")
    payload["config"] = {"bad": object()}
    problems = validate_bench_payload(payload)
    assert any("not JSON-serializable" in p for p in problems)


def test_writer_refuses_invalid_payloads_before_writing(tmp_path):
    target = tmp_path / "bad.json"
    with pytest.raises(ValueError) as err:
        write_bench_json(str(target), {"schema": "nope/v9"})
    assert "refusing to write" in str(err.value)
    assert not target.exists()


def test_write_load_round_trip(tmp_path):
    target = tmp_path / "ok.json"
    payload = _sample("repro.antientropy.convergence/v1")
    write_bench_json(str(target), payload)
    assert load_bench_json(str(target)) == payload
    # Deterministic formatting: sorted keys, indented, trailing newline.
    text = target.read_text()
    assert text.endswith("\n")
    assert text == json.dumps(payload, indent=2, sort_keys=True) + "\n"


def test_loader_rejects_a_tampered_artifact(tmp_path):
    target = tmp_path / "tampered.json"
    payload = _sample("repro.bench.capacity/v1")
    write_bench_json(str(target), payload)
    doc = json.loads(target.read_text())
    del doc["mode"]
    target.write_text(json.dumps(doc))
    with pytest.raises(ValueError) as err:
        load_bench_json(str(target))
    assert "not a valid bench artifact" in str(err.value)
