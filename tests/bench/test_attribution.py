"""Acceptance: differential attribution on a paired one-sided replay.

ISSUE 10's headline criterion — `repro diff` on a paired one-sided
`--ab` replay attributes the latency delta to stages and closes
against the measured end-to-end delta within 5% — plus the CLI
surfaces (`profile`, `diff --stream`, `diff --bench`) that expose it.
"""

import functools

from repro.__main__ import main
from repro.bench.attribution import attribute_pair
from repro.obs import PROFILE_STAGES
from repro.workload import WorkloadSpec, record_stream


@functools.lru_cache(maxsize=None)
def onesided_attribution():
    """The acceptance pair: one recorded stream, replayed with the
    one-sided bypass as the only B-side change."""
    spec = WorkloadSpec(seed=11, transport="srpc", arrival="open",
                        load=60000.0, concurrency=8, requests=120,
                        keys=200, read_fraction=0.9)
    stream = record_stream(spec)
    from dataclasses import replace
    return attribute_pair(spec, replace(spec, onesided_reads=True),
                          stream=stream, label="onesided_reads=true")


class TestAcceptance:
    def test_closure_within_five_percent(self):
        result = onesided_attribution()
        assert result.diff.closure_error <= 0.05, result.diff.report()
        assert result.ok

    def test_stage_deltas_sum_to_the_end_to_end_delta(self):
        diff = onesided_attribution().diff
        attributed = sum(s.delta_us for s in diff.stages)
        assert abs(attributed - diff.attributed_delta_us) < 1e-9
        # Conservation against the measured delta, the 5% gate's
        # underlying property.
        tolerance = 0.05 * max(abs(diff.measured_delta_us), 1.0)
        assert abs(attributed - diff.measured_delta_us) <= tolerance

    def test_paired_replay_sees_identical_offered_traffic(self):
        result = onesided_attribution()
        assert result.diff.a_requests == result.diff.b_requests == 120

    def test_bypass_moves_nic_and_cpu_down(self):
        # The bypass removes the server handler from the GET path:
        # NIC + CPU time per request must fall on the B side.
        diff = onesided_attribution().diff
        by_stage = {s.stage: s for s in diff.stages}
        assert by_stage["nic"].delta_us < 0.0
        assert by_stage["cpu"].delta_us < 0.0

    def test_profiles_audit_clean_on_both_sides(self):
        result = onesided_attribution()
        assert result.profile_a.problems == []
        assert result.profile_b.problems == []
        assert result.profile_a.conservation_error == 0.0
        assert result.profile_b.conservation_error == 0.0

    def test_report_names_both_spec_lines(self):
        result = onesided_attribution()
        text = result.report()
        assert "onesided=1" in text
        assert "closure:" in text
        for stage in PROFILE_STAGES:
            assert stage in text


class TestCli:
    def test_profile_command(self, capsys):
        assert main(["profile", "--seed", "7", "--requests", "40",
                     "--load", "20000"]) == 0
        out = capsys.readouterr().out
        assert "conservation error 0.0000%" in out
        assert "flame (folded causal stacks" in out

    def test_profile_writes_folded_stacks(self, capsys, tmp_path):
        folded = tmp_path / "out.folded"
        assert main(["profile", "--seed", "7", "--requests", "40",
                     "--load", "20000", "--folded", str(folded)]) == 0
        lines = folded.read_text().strip().splitlines()
        assert lines
        for line in lines:
            stack, value = line.rsplit(" ", 1)
            assert int(value) > 0

    def test_profile_tenant_flag(self, capsys):
        assert main(["profile", "--seed", "7", "--requests", "40",
                     "--load", "20000", "--tenant", "gold"]) == 0
        out = capsys.readouterr().out
        assert "tenant:gold" in out

    def test_diff_stream_command(self, capsys, tmp_path):
        stream = tmp_path / "stream.json"
        assert main(["record", "--out", str(stream), "--seed", "11",
                     "--requests", "60", "--load", "40000"]) == 0
        capsys.readouterr()
        assert main(["diff", "--stream", str(stream), "--ab",
                     "onesided_reads=true"]) == 0
        out = capsys.readouterr().out
        assert "stage attribution" in out
        assert "closure:" in out
        assert "[OK]" in out

    def test_diff_needs_a_mode(self, capsys):
        assert main(["diff"]) == 2
        assert "--bench" in capsys.readouterr().out

    def test_diff_grouped_b_side_is_gated(self, capsys, tmp_path):
        # A pipelined B side folds several requests into one root
        # span; the CLI must say why attribution is skipped rather
        # than emit a table that cannot close.
        stream = tmp_path / "stream.json"
        assert main(["record", "--out", str(stream), "--seed", "5",
                     "--requests", "40", "--load", "40000"]) == 0
        capsys.readouterr()
        assert main(["replay", "--stream", str(stream), "--ab",
                     "pipeline_window=4"]) == 0
        out = capsys.readouterr().out
        assert "stage attribution skipped: grouped dispatch" in out

    def test_diff_bench_command(self, capsys):
        assert main(["diff", "--bench", "BENCH_capacity.json",
                     "BENCH_capacity.json"]) == 0
        out = capsys.readouterr().out
        assert "bench diff: repro.bench.capacity/v1" in out
        assert "+0.0%" in out

    def test_diff_bench_rejects_invalid_files(self, capsys, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{\"schema\": \"nope/v9\"}\n")
        assert main(["diff", "--bench", str(bad), str(bad)]) == 1
        assert "cannot load bench artifact" in capsys.readouterr().out
