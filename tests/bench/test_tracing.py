"""Traced-journey cross-check: spans must reproduce the analytic budget.

This is the acceptance bar of the observability layer: `python -m repro
trace` replays a Figure 3 one-word transfer with tracing on, and the
summed per-stage span durations must agree with `repro.analysis`'s
analytic decomposition to within 1% (in the uncontended case they agree
exactly).
"""

import json

import pytest

from repro.__main__ import main
from repro.bench.tracing import JOURNEY_CATEGORIES, trace_one_word
from repro.hardware.config import CacheMode
from repro.sim import validate_chrome_trace


@pytest.mark.parametrize("mode", ["au", "du"])
@pytest.mark.parametrize(
    "cache_mode", [CacheMode.WRITE_THROUGH, CacheMode.UNCACHED],
    ids=lambda cm: cm.value)
def test_measured_budget_agrees_with_analytic(mode, cache_mode):
    result = trace_one_word(mode=mode, cache_mode=cache_mode)
    assert result.agreement_error <= 0.01
    assert result.measured.total == pytest.approx(result.analytic.total,
                                                  rel=0.01)


def test_au_journey_spans_are_contiguous():
    result = trace_one_word(mode="au")
    journey = result.journey
    assert [s.category for s in journey] == JOURNEY_CATEGORIES["au"]
    for prev, nxt in zip(journey, journey[1:]):
        # Uncontended: every stage starts the instant the previous ends.
        assert nxt.start == pytest.approx(prev.end)
    assert journey[-1].end - journey[0].start == pytest.approx(
        result.measured.total)


def test_au_write_through_hits_the_paper_headline():
    result = trace_one_word(mode="au", cache_mode=CacheMode.WRITE_THROUGH)
    assert result.measured.total == pytest.approx(4.75, abs=0.05)


def test_trace_exports_valid_chrome_json():
    result = trace_one_word(mode="du")
    text = result.chrome_json()
    assert validate_chrome_trace(text) == []
    events = json.loads(text)["traceEvents"]
    span_events = [e for e in events if e["ph"] == "X"]
    cats = {e["cat"] for e in span_events}
    for category in JOURNEY_CATEGORIES["du"]:
        assert category in cats
    # Setup traffic was cleared: one journey only, so one mesh transit.
    assert sum(1 for e in span_events if e["cat"] == "mesh.transit") == 1


def test_report_and_utilization_render():
    result = trace_one_word(mode="au")
    report = result.report()
    assert "traced" in report and "agreement:" in report
    util = result.utilization_report()
    assert util.startswith("utilization @ t=")
    assert "eisa" in util


def test_rejects_unknown_mode():
    with pytest.raises(ValueError):
        trace_one_word(mode="multicast")


class TestTraceCli:
    def test_trace_command_writes_and_agrees(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        assert main(["trace", "--out", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "agreement:" in printed
        assert "utilization @" in printed
        assert validate_chrome_trace(out.read_text()) == []

    def test_trace_command_can_skip_writing(self, capsys):
        assert main(["trace", "--mode", "du", "--uncached", "--out", ""]) == 0
        assert "agreement:" in capsys.readouterr().out

    def test_trace_check_validates_files(self, tmp_path, capsys):
        good = tmp_path / "good.json"
        good.write_text('{"traceEvents": []}')
        assert main(["trace", "--check", str(good)]) == 0
        bad = tmp_path / "bad.json"
        bad.write_text('{"traceEvents": [{"ph": "Q"}]}')
        assert main(["trace", "--check", str(bad)]) == 1
        assert "INVALID" in capsys.readouterr().out
