"""Unit tests for the benchmark result structures and text reports."""

import pytest

from repro.bench.report import FigureResult, FigureSeries, SeriesPoint, format_table


def make_figure():
    result = FigureResult("Figure X", "test figure")
    series = FigureSeries("fast")
    series.add(4, 2.0)
    series.add(1024, 64.0)
    result.series.append(series)
    slow = FigureSeries("slow")
    slow.add(4, 4.0)
    result.series.append(slow)
    return result


def test_series_point_bandwidth():
    assert SeriesPoint(1024, 64.0).bandwidth_mb_s == 16.0
    assert SeriesPoint(0, 0.0).bandwidth_mb_s == 0.0


def test_series_lookup():
    figure = make_figure()
    fast = figure.series_named("fast")
    assert fast.latency_at(4) == 2.0
    assert fast.bandwidth_at(1024) == 16.0
    assert fast.peak_bandwidth == 16.0
    with pytest.raises(KeyError):
        fast.latency_at(999)
    with pytest.raises(KeyError):
        figure.series_named("missing")


def test_report_renders_all_series_and_gaps():
    figure = make_figure()
    figure.notes.append("a note")
    text = figure.report()
    assert "Figure X" in text
    assert "fast" in text and "slow" in text
    # The slow series has no 1024-point: rendered as '-'.
    assert "-" in text
    assert "note: a note" in text


def test_format_table_alignment():
    rows = [["a", "bbbb"], ["cccc", "d"]]
    lines = format_table(rows)
    assert len(lines) == 2
    assert len(lines[0]) == len(lines[1])
    assert format_table([]) == []


class TestStrategyValidation:
    def test_au_without_sender_copy_rejected(self):
        from repro.bench.pingpong import Strategy

        with pytest.raises(ValueError):
            Strategy("bogus", automatic=True, sender_copy=False, receiver_copy=False)

    def test_pingpong_rejects_bad_sizes(self):
        from repro.bench.pingpong import STRATEGIES, vmmc_pingpong

        with pytest.raises(ValueError):
            vmmc_pingpong(STRATEGIES["DU-0copy"], 0)
        with pytest.raises(ValueError):
            vmmc_pingpong(STRATEGIES["DU-0copy"], 3)  # not a word multiple

    def test_srpc_fig8_bound(self):
        from repro.bench.libraries import srpc_inout_rtt

        with pytest.raises(ValueError):
            srpc_inout_rtt(2000)


def test_pingpong_result_fields():
    from repro.bench.pingpong import STRATEGIES, vmmc_pingpong

    result = vmmc_pingpong(STRATEGIES["AU-1copy"], 64, iterations=3)
    assert result.strategy == "AU-1copy"
    assert result.size == 64
    assert result.iterations == 3
    assert result.bandwidth_mb_s == pytest.approx(64 / result.one_way_latency_us)
