"""Tests for the packet-journey timeline utilities."""

from repro.bench.timeline import journey_of, render, trace_off, trace_on
from repro.hardware import CacheMode, Machine
from repro.hardware.nic import OPTEntry
from repro.sim import spawn

PAGE = 4096


def traced_machine():
    machine = Machine()
    trace_on(machine)
    machine.node(0).nic.opt.bind_page(16, OPTEntry(dst_node=1, dst_page=32))
    machine.node(1).nic.ipt.enable(32)

    def sender():
        yield from machine.node(0).cpu_write(16 * PAGE, b"traced!!",
                                             CacheMode.WRITE_THROUGH)
        machine.node(0).nic.packetizer.flush()

    spawn(machine.sim, sender())
    machine.run()
    return machine


def test_timeline_shows_full_journey_in_order():
    machine = traced_machine()
    text = render(machine)
    positions = {
        stage: text.find(stage) for stage in ("packetize", "inject", "mesh", "dma-in")
    }
    assert all(p >= 0 for p in positions.values()), text
    assert positions["packetize"] < positions["inject"] < positions["mesh"] < positions["dma-in"]


def test_journey_of_single_packet():
    machine = traced_machine()
    seq = next(
        int(word[1:].rstrip(":,"))
        for record in machine.tracer.records
        for word in record.message.split()
        if word.startswith("#")
    )
    journey = journey_of(machine, seq)
    assert "packetize" in journey and "dma-in" in journey


def test_render_category_filter_and_window():
    machine = traced_machine()
    only_dma = render(machine, categories=["dma-in"])
    assert "dma-in" in only_dma and "packetize" not in only_dma
    nothing = render(machine, start=1e9)
    assert nothing == ""


def test_trace_off_stops_recording():
    machine = traced_machine()
    count = len(machine.tracer.records)
    trace_off(machine)

    def more():
        yield from machine.node(0).cpu_write(16 * PAGE, b"silent!!",
                                             CacheMode.WRITE_THROUGH)
        machine.node(0).nic.packetizer.flush()

    spawn(machine.sim, more())
    machine.run()
    assert len(machine.tracer.records) == count


def test_trace_on_clears_previous_records():
    machine = traced_machine()
    trace_on(machine)
    assert machine.tracer.records == []
