"""Unit tests for the wire trace-context encoding and span tags."""

from repro.obs import (TRACE_EXT_BYTES, pack_ctx, span_tags, unpack_ctx)


def test_pack_unpack_roundtrip():
    ctx = (0xDEADBEEF & 0x7FFFFFFF, 42)
    blob = pack_ctx(ctx)
    assert len(blob) == TRACE_EXT_BYTES
    assert unpack_ctx(blob) == ctx


def test_none_packs_as_zeros_and_unpacks_as_none():
    blob = pack_ctx(None)
    assert blob == b"\x00" * TRACE_EXT_BYTES
    assert unpack_ctx(blob) is None


def test_zero_trace_id_means_no_context():
    # trace ids are allocated from 1, so the all-zero word is reserved
    # as the "no context" encoding on every transport.
    assert unpack_ctx(pack_ctx((0, 7))) is None


def test_unpack_ignores_trailing_bytes():
    blob = pack_ctx((9, 4)) + b"payload follows"
    assert unpack_ctx(blob) == (9, 4)


def test_span_tags_same_process_vs_cross_wire():
    assert span_tags(None) is None
    assert span_tags((5, 11)) == {"tid": 5, "cparent": 11}
    assert span_tags((5, 11), cross=True) == {"tid": 5, "xparent": 11}
