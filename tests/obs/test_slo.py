"""Unit tests for SLO burn-rate alerting and the flight recorder."""

import pytest

from repro.obs import FlightRecorder, SloMonitor, SloObjective, WindowSample


def _window(t, count, errors=0, slow=0):
    return WindowSample(time_us=t, count=count, errors=errors, slow=slow,
                        p50_us=10.0, p99_us=20.0)


def test_objective_validates_budget_and_kind():
    with pytest.raises(ValueError):
        SloObjective("latency", "slow", 0.0)
    with pytest.raises(ValueError):
        SloObjective("latency", "banana", 0.1)


def test_healthy_stream_raises_no_alerts():
    mon = SloMonitor.from_thresholds(latency_budget=0.1, error_budget=0.05)
    for tick in range(30):
        assert mon.observe(tick * 100.0, _window(tick * 100.0, 10)) is None
    assert not mon.breached
    assert "0 alerts" in mon.report()
    assert "OK" in mon.report()


def test_sustained_burn_fires_after_both_windows():
    mon = SloMonitor.from_thresholds(error_budget=0.01,
                                     short_windows=2, long_windows=4,
                                     burn_factor=4.0)
    # 50% of requests erroring burns a 1% budget at 50x; the alert must
    # wait until the long window has seen enough bad samples too.
    breached = [mon.observe(t * 100.0, _window(t * 100.0, 10, errors=5))
                for t in range(4)]
    assert any(b == "errors" for b in breached)
    assert mon.breached
    assert "ALERT" in mon.report()


def test_single_bad_sample_does_not_page():
    mon = SloMonitor.from_thresholds(error_budget=0.05,
                                     short_windows=2, long_windows=12)
    for t in range(11):
        mon.observe(t * 100.0, _window(t * 100.0, 20))
    # One terrible window against eleven clean ones: the long window
    # dilutes the burn below the factor, so nothing fires.
    assert mon.observe(1100.0, _window(1100.0, 2, errors=2)) is None
    assert not mon.breached


def test_report_flags_violated_budget():
    mon = SloMonitor([SloObjective("errors", "error", 0.01)],
                     short_windows=1, long_windows=1)
    mon.observe(0.0, _window(0.0, 10, errors=10))
    assert "VIOLATED" in mon.report()


class _FakeTracer:
    def __init__(self, n):
        self.spans = list(range(n))


def test_flight_recorder_keeps_bounded_dumps():
    recorder = FlightRecorder(_FakeTracer(0), span_limit=10, max_dumps=2)
    assert recorder.capture("first", 1.0) is not None
    assert recorder.capture("second", 2.0) is not None
    assert recorder.capture("third", 3.0) is None
    assert recorder.suppressed == 1
    text = recorder.report()
    assert "2 dump(s)" in text and "1 suppressed" in text


def test_flight_recorder_snapshots_last_spans():
    class _Span:
        def __init__(self, sid):
            self.sid = sid
            self.category = "kv.client"
            self.name = "put"
            self.track = "n0.cpu.p0"
            self.start = float(sid)
            self.end = float(sid) + 1.0
            self.data = {"tid": 1}

    tracer = _FakeTracer(0)
    tracer.spans = [_Span(i) for i in range(20)]
    recorder = FlightRecorder(tracer, span_limit=5)
    dump = recorder.capture("slo:errors", 99.0)
    assert dump["reason"] == "slo:errors"
    assert [s["sid"] for s in dump["spans"]] == [15, 16, 17, 18, 19]


def test_quiet_recorder_reports_no_incidents():
    recorder = FlightRecorder(_FakeTracer(0))
    assert recorder.report() == "flight recorder: no incidents"
