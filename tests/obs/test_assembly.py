"""Cross-node trace assembly and stage-budget acceptance tests.

The headline acceptance criterion of the observability layer: a single
KV request from the paired-capacity workload (mitigations on, same as
the ``--ab`` B side) reconstructs as exactly one causal tree spanning
at least three mesh nodes, with a per-stage latency budget that sums
to the measured request latency within 1%.
"""

import functools

from repro.obs import assemble_traces, audit, explain_trace, format_tree
from repro.workload import WorkloadSpec, run_workload


@functools.lru_cache(maxsize=None)
def traced_run(transport="srpc", mitigated=False, seed=5):
    """One cached traced workload run per configuration."""
    spec = WorkloadSpec(
        seed=seed, transport=transport, load=20000.0, concurrency=4,
        requests=60, keys=48, read_fraction=0.6, trace=True)
    if mitigated:
        # The paired-capacity B side: pipelining, batching, caching,
        # read spread — the configuration the acceptance criterion names.
        spec = WorkloadSpec(
            seed=seed, transport=transport, load=20000.0, concurrency=4,
            requests=60, keys=48, read_fraction=0.6, trace=True,
            pipeline_window=4, batch_keys=4, cache_keys=64,
            cache_ttl_us=2000.0, read_spread=True)
    return run_workload(spec)


def test_traced_run_records_spans():
    report = traced_run()
    assert report.spans, "trace=True must capture spans on the report"
    assert report.completed == 60


def test_every_tree_has_a_client_root():
    report = traced_run()
    trees = assemble_traces(report.spans)
    assert trees
    for tree in trees.values():
        assert tree.root is not None
        assert tree.root.category in ("kv.client", "kv.call")
        assert not tree.problems, tree.problems


def test_audit_is_clean_on_a_healthy_run():
    report = traced_run()
    assert audit(report.spans) == []


def test_replicated_put_spans_three_nodes():
    report = traced_run()
    trees = assemble_traces(report.spans)
    widest = max(trees.values(), key=lambda t: (len(t.nodes()), len(t.spans)))
    # client node -> primary shard -> replica: three distinct mesh nodes.
    assert len(widest.nodes()) >= 3, widest.nodes()


def test_stage_budget_sums_to_measured_latency_within_one_percent():
    report = traced_run()
    trees = assemble_traces(report.spans)
    widest = max(trees.values(), key=lambda t: (len(t.nodes()), len(t.spans)))
    result = explain_trace(widest, report.spans)
    assert result.measured_us > 0.0
    assert result.budget.total > 0.0
    assert result.budget_error <= 0.01, (
        "stage sum %.3f vs measured %.3f"
        % (result.budget.total, result.measured_us))


def test_paired_capacity_workload_acceptance():
    """The ISSUE acceptance check, against the mitigated (B-side) spec."""
    report = traced_run(mitigated=True)
    trees = assemble_traces(report.spans)
    assert audit(report.spans) == []
    widest = max(trees.values(), key=lambda t: (len(t.nodes()), len(t.spans)))
    assert len(widest.nodes()) >= 3, widest.nodes()
    result = explain_trace(widest, report.spans)
    assert result.budget_error <= 0.01


def test_all_trees_budget_close_everywhere():
    """Not just the widest: every assembled tree explains to <= 1%."""
    report = traced_run()
    spans = report.spans
    for tree in assemble_traces(spans).values():
        result = explain_trace(tree, spans)
        assert result.budget_error <= 0.01, (
            "trace %d: sum %.3f vs measured %.3f"
            % (tree.tid, result.budget.total, result.measured_us))


def test_sockets_transport_assembles_too():
    report = traced_run(transport="sockets")
    trees = assemble_traces(report.spans)
    assert trees
    assert audit(report.spans) == []
    widest = max(trees.values(), key=lambda t: (len(t.nodes()), len(t.spans)))
    assert len(widest.nodes()) >= 2


def test_format_tree_is_renderable_and_mentions_wire_hops():
    report = traced_run()
    trees = assemble_traces(report.spans)
    widest = max(trees.values(), key=lambda t: (len(t.nodes()), len(t.spans)))
    text = format_tree(widest)
    assert "us" in text
    assert "<-wire-" in text  # at least one cross-node causal edge


def test_assembly_is_deterministic():
    a = traced_run()
    spec = WorkloadSpec(
        seed=5, transport="srpc", load=20000.0, concurrency=4,
        requests=60, keys=48, read_fraction=0.6, trace=True)
    b = run_workload(spec)
    ta, tb = assemble_traces(a.spans), assemble_traces(b.spans)
    assert sorted(ta) == sorted(tb)
    for tid in ta:
        assert len(ta[tid].spans) == len(tb[tid].spans)
        assert ta[tid].nodes() == tb[tid].nodes()
