"""Unit and integration tests for the time-series telemetry layer."""

from repro.obs import RingBuffer, TelemetrySampler, WindowedLatency
from repro.workload import WorkloadSpec, run_workload


def test_ring_buffer_overwrites_oldest():
    ring = RingBuffer(3)
    for i in range(5):
        ring.append(i)
    assert ring.items() == [2, 3, 4]
    assert ring.dropped == 2
    assert len(ring) == 3


def test_ring_buffer_last_n():
    ring = RingBuffer(4)
    for i in range(6):
        ring.append(i)
    assert ring.last(2) == [4, 5]
    assert ring.last(10) == [2, 3, 4, 5]


def test_windowed_latency_rolls_and_resets():
    window = WindowedLatency(slow_threshold_us=100.0)
    for lat in (10.0, 50.0, 150.0, 250.0):
        window.record(lat, error=lat > 200.0)
    sample = window.roll(1000.0)
    assert sample.count == 4
    assert sample.slow == 2
    assert sample.errors == 1
    assert sample.p50_us <= sample.p99_us
    # The roll started a fresh window.
    empty = window.roll(2000.0)
    assert empty.count == 0 and empty.p99_us == 0.0


def test_sampler_runs_inside_a_telemetry_workload():
    spec = WorkloadSpec(seed=3, requests=50, concurrency=4, keys=32,
                        telemetry=True, telemetry_interval_us=400.0)
    report = run_workload(spec)
    assert report.telemetry_lines
    head = report.telemetry_lines[0]
    assert head.startswith("telemetry:")
    assert "samples at 400 us interval" in head
    assert spec.telemetry_label() in report.spec_line


def test_telemetry_off_means_no_telemetry_lines():
    report = run_workload(WorkloadSpec(seed=3, requests=50, concurrency=4,
                                       keys=32))
    assert report.telemetry_lines == []
    assert "telemetry" not in report.spec_line


def test_sampler_tracks_utilization_and_queue_depths():
    from repro.testbed import make_system

    system = make_system()
    sampler = TelemetrySampler(system, interval_us=100.0)
    sampler.install()
    system.sim.run(until=1000.0)
    assert sampler.ticks >= 9
    assert len(sampler.samples)
    latest = sampler.samples.items()[-1]
    assert set(latest) == {"time_us", "util", "depths", "window"}
    # An idle machine is 0% utilized everywhere; fractions are bounded.
    for frac in latest["util"].values():
        assert 0.0 <= frac <= 1.0


def test_sampler_report_is_deterministic_text():
    spec = WorkloadSpec(seed=9, requests=40, concurrency=4, keys=32,
                        telemetry=True)
    a = run_workload(spec).telemetry_lines
    b = run_workload(spec).telemetry_lines
    assert a == b
