"""Fleet-wide profile folding: conservation, tenants, rendering.

The profiler's core contract (docs/OBSERVABILITY.md, "Profiles &
diffs"): per-request stage decompositions are an *exact* partition of
the recorded latency — the per-stage totals sum to the measured span
time with zero drift — and the folded stacks carry exactly the same
microseconds, so every rendering (table, flame, collapsed text) tells
one consistent story.
"""

import functools

from repro.obs import (
    PROFILE_STAGES,
    build_profile,
    render_flame,
    render_folded,
    tag_root,
)
from repro.sim.trace import Span
from repro.workload import WorkloadSpec, run_workload


@functools.lru_cache(maxsize=None)
def traced_run(tenant="", onesided=False, seed=7, load=20000.0):
    """One cached traced workload run per configuration."""
    spec = WorkloadSpec(
        seed=seed, transport="srpc", load=load, concurrency=4,
        requests=60, keys=48, read_fraction=0.7, trace=True,
        tenant=tenant, onesided_reads=onesided)
    return run_workload(spec)


@functools.lru_cache(maxsize=None)
def traced_profile(tenant="", onesided=False, seed=7):
    report = traced_run(tenant=tenant, onesided=onesided, seed=seed)
    return build_profile(report.spans, metrics=report.metrics)


# ------------------------------------------------------------ real runs


def test_profile_covers_every_completed_request():
    report = traced_run()
    profile = traced_profile()
    assert len(profile.requests) == report.completed == 60
    assert profile.skipped_trees == 0
    assert profile.problems == []


def test_stage_totals_conserve_request_time_exactly():
    profile = traced_profile()
    # Exact, not approximate: explain slices partition each root
    # interval and dispatch wait is charged to queueing.
    assert profile.conservation_error == 0.0
    for req in profile.requests:
        attributed = sum(req.stages.values())
        assert abs(attributed - req.total_us) < 1e-6, req


def test_folded_stacks_carry_the_same_microseconds():
    profile = traced_profile()
    folded_total = sum(profile.folded.values())
    assert abs(folded_total - profile.total_us) < 1e-6


def test_profile_matches_the_reported_latency_histogram():
    """Profile means equal the engine's measured means on the plain
    path — the property the diff closure gate rests on."""
    report = traced_run()
    profile = traced_profile()
    assert abs(profile.mean_us() - report.overall.mean) < 1e-6
    total = sum(r.total_us for r in profile.requests)
    assert abs(total - report.overall.total) < 1e-3


def test_dispatch_wait_is_charged_to_queueing():
    # Past the knee (concurrency 4 at 120k ops/s) dispatch queues.
    report = traced_run(load=120000.0)
    profile = build_profile(report.spans, metrics=report.metrics)
    assert profile.conservation_error == 0.0
    waited = [r for r in profile.requests if r.dispatch_us > 0.0]
    assert waited, "open-loop bursts should queue at least one dispatch"
    for req in waited:
        assert req.stages["queueing"] >= req.dispatch_us
    assert abs(profile.mean_us() - report.overall.mean) < 1e-6


def test_profile_is_deterministic():
    report = traced_run()
    a = build_profile(report.spans, metrics=report.metrics)
    b = build_profile(report.spans, metrics=report.metrics)
    assert a.report() == b.report()
    assert render_folded(a) == render_folded(b)


def test_report_renders_all_sections():
    profile = traced_profile()
    text = profile.report()
    assert "per-stage totals" in text
    assert "flame (folded causal stacks" in text
    assert "contention (service vs queueing" in text
    assert "hot spans" in text
    for stage in PROFILE_STAGES:
        assert stage in text


def test_contention_table_sources_the_metrics_registry():
    profile = traced_profile()
    assert profile.contention, "traced reports must attach metrics"
    names = {row["name"] for row in profile.contention}
    # The DU engines and arbiters are always exercised by SRPC traffic.
    assert any("arbiter" in n or "du" in n for n in names)
    for row in profile.contention:
        assert row["count"] > 0
        assert row["service_us"] >= 0.0
        assert 0.0 <= row["utilization"] <= 1.0


def test_hot_spans_are_sorted_and_bounded():
    report = traced_run()
    profile = build_profile(report.spans, metrics=report.metrics,
                            top_k=2)
    assert profile.hot
    for stage, entries in profile.hot.items():
        assert stage in PROFILE_STAGES
        assert len(entries) <= 2
        durations = [e[0] for e in entries]
        assert durations == sorted(durations, reverse=True)


def test_cpu_share_is_split_out_of_vmmc():
    profile = traced_profile()
    # SRPC handlers burn cpu.store/cpu.poll time; the profiler must
    # report it under "cpu", not fold it into "vmmc".
    assert profile.stage_totals.get("cpu", 0.0) > 0.0


def test_render_folded_is_flamegraph_compatible():
    profile = traced_profile()
    for line in render_folded(profile).splitlines():
        stack, value = line.rsplit(" ", 1)
        assert int(value) > 0          # integer nanoseconds
        frames = stack.split(";")
        assert frames[-1].startswith("[") and frames[-1].endswith("]")
        assert not any(" " in f for f in frames)


def test_render_flame_respects_max_lines():
    profile = traced_profile()
    text = render_flame(profile, max_lines=5)
    lines = text.splitlines()
    assert len(lines) <= 6             # 5 + the "... folded" marker
    assert "stacks folded" in lines[-1]


# -------------------------------------------------------------- tenants


def test_tenant_tag_groups_requests_and_prefixes_stacks():
    profile = traced_profile(tenant="gold")
    assert set(profile.tenants()) == {"gold"}
    assert all(r.tenant == "gold" for r in profile.requests)
    assert all(stack.startswith("tenant:gold;")
               for stack in profile.folded)
    assert "per-tenant stage means" in profile.report()


def test_tenant_tag_appears_in_the_spec_line_only_when_set():
    assert "tenant=gold" in traced_run(tenant="gold").spec_line
    assert "tenant" not in traced_run().spec_line


def test_untagged_profile_has_no_tenant_section():
    profile = traced_profile()
    assert set(profile.tenants()) == {""}
    assert "per-tenant stage means" not in profile.report()


# ------------------------------------------------------------- tag_root


class _FakeClient:
    def __init__(self, span):
        self.last_span = span


def test_tag_root_stamps_arrival_and_tenant():
    span = Span(1, None, "kv.client", "get", "n0.cpu.p1", 10.0, 50.0,
                data={"tid": 1})
    client = _FakeClient(span)
    tag_root(client, arrival=4.0, tenant="t0")
    assert span.data["arrival"] == 4.0
    assert span.data["tenant"] == "t0"
    assert client.last_span is None    # cleared: no stale reuse


def test_tag_root_rejects_an_arrival_after_span_start():
    # A grouped/batched root can start before this request's arrival;
    # a negative dispatch wait must never be recorded.
    span = Span(1, None, "kv.client", "get", "n0.cpu.p1", 10.0, 50.0,
                data={"tid": 1})
    tag_root(_FakeClient(span), arrival=12.0)
    assert "arrival" not in span.data


def test_tag_root_tolerates_a_missing_root():
    client = _FakeClient(None)
    tag_root(client, arrival=1.0, tenant="t")   # must not raise
    assert client.last_span is None


# ------------------------------------------------------------ synthetic


def _synthetic_spans():
    """Two hand-built trees: root + nested child each."""
    return [
        Span(1, None, "kv.client", "get", "n0.cpu.p1", 0.0, 100.0,
             data={"tid": 1, "arrival": 0.0}),
        Span(2, 1, "srpc.call", "kv.get", "n0.cpu.p1", 10.0, 90.0),
        Span(3, None, "kv.client", "put", "n0.cpu.p2", 50.0, 130.0,
             data={"tid": 2, "arrival": 30.0, "tenant": "bulk"}),
    ]


def test_synthetic_trees_fold_with_exact_conservation():
    profile = build_profile(_synthetic_spans())
    assert len(profile.requests) == 2
    assert profile.conservation_error == 0.0
    by_tid = {r.tid: r for r in profile.requests}
    assert by_tid[1].total_us == 100.0           # no dispatch wait
    assert by_tid[2].total_us == 100.0           # 20 us wait + 80 us span
    assert by_tid[2].dispatch_us == 20.0
    assert by_tid[2].tenant == "bulk"


def test_open_root_trees_are_skipped_not_crashed():
    spans = _synthetic_spans()
    spans[2].end = None
    profile = build_profile(spans)
    assert len(profile.requests) == 1
    assert profile.skipped_trees == 1
