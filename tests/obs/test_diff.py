"""Differential attribution: stage deltas, closure, bench diffs.

`diff_profiles` must satisfy the conservation property the acceptance
criterion names: the per-stage deltas sum to the end-to-end delta
(within the 5% closure gate when scored against measured histogram
means).  `diff_bench_payloads` must compare every schema the shared
writer knows and refuse mismatched ones.
"""

from repro.obs import PROFILE_STAGES, diff_bench_payloads, diff_profiles
from repro.obs.profile import Profile, RequestProfile


def _profile(per_request_stages):
    """Build a synthetic Profile from per-request stage dicts."""
    profile = Profile()
    for i, stages in enumerate(per_request_stages):
        full = {s: stages.get(s, 0.0) for s in PROFILE_STAGES}
        total = sum(full.values())
        profile.requests.append(RequestProfile(
            tid=i + 1, op="get", tenant="", total_us=total,
            dispatch_us=full["queueing"], stages=full))
        profile.total_us += total
        for stage, us in full.items():
            profile.stage_totals[stage] = (
                profile.stage_totals.get(stage, 0.0) + us)
    return profile


def test_stage_deltas_sum_to_the_profile_mean_delta():
    a = _profile([{"nic": 20.0, "cpu": 10.0},
                  {"nic": 30.0, "cpu": 10.0}])
    b = _profile([{"nic": 12.0, "cpu": 14.0},
                  {"nic": 18.0, "cpu": 14.0}])
    diff = diff_profiles(a, b)
    assert diff.a_requests == diff.b_requests == 2
    # A mean 35, B mean 29: nic -10, cpu +4.
    assert abs(diff.measured_delta_us - (-6.0)) < 1e-9
    assert abs(diff.attributed_delta_us - (-6.0)) < 1e-9
    assert diff.closure_error < 1e-9
    by_stage = {s.stage: s.delta_us for s in diff.stages}
    assert abs(by_stage["nic"] - (-10.0)) < 1e-9
    assert abs(by_stage["cpu"] - 4.0) < 1e-9


def test_closure_scored_against_measured_means():
    a = _profile([{"nic": 50.0}])
    b = _profile([{"nic": 40.0}])
    # Histogram means drift from profile means by quantization; the
    # closure must be computed against what the caller measured.
    diff = diff_profiles(a, b, measured_a=50.0, measured_b=41.0)
    assert abs(diff.measured_delta_us - (-9.0)) < 1e-9
    assert abs(diff.attributed_delta_us - (-10.0)) < 1e-9
    assert abs(diff.closure_error - (1.0 / 9.0)) < 1e-9
    assert "VIOLATED" in diff.report()


def test_closure_denominator_floors_at_one_microsecond():
    a = _profile([{"nic": 10.0}])
    b = _profile([{"nic": 10.0}])
    diff = diff_profiles(a, b, measured_a=10.0, measured_b=10.03)
    # Near-zero measured delta must not blow the ratio up: the error
    # is 0.03/1.0 (floored denominator), not 0.03/0.03 = 100%.
    assert abs(diff.closure_error - 0.03) < 1e-9
    assert "OK" in diff.report()


def test_report_lists_every_stage_and_the_sum_row():
    a = _profile([{"nic": 20.0}])
    b = _profile([{"nic": 25.0, "queueing": 5.0}])
    text = diff_profiles(a, b, label="test pair").report()
    for stage in PROFILE_STAGES:
        assert stage in text
    assert "SUM" in text
    assert "test pair" in text
    assert "closure:" in text


def test_tail_attribution_uses_p99_requests():
    a = _profile([{"nic": 10.0}] * 9 + [{"nic": 100.0}])
    b = _profile([{"nic": 10.0}] * 9 + [{"nic": 150.0, "mesh": 20.0}])
    diff = diff_profiles(a, b)
    assert diff.p99_b_us > diff.p99_a_us
    tail = {s.stage: s.delta_us for s in diff.tail_stages}
    assert tail["nic"] > 0.0
    assert "p99 tail attribution" in diff.report()


# ---------------------------------------------------------------- bench


def _capacity_payload(knee, p99):
    return {
        "schema": "repro.bench.capacity/v1",
        "seed": 11, "loads": [10000.0], "config": {}, "mode": "sweep",
        "knee_load": knee,
        "points": [{"offered_load": 10000.0, "throughput": 9900.0,
                    "p50_us": 40.0, "p99_us": p99}],
    }


def test_bench_diff_capacity_sweeps():
    text = diff_bench_payloads(_capacity_payload(150000.0, 90.0),
                               _capacity_payload(250000.0, 70.0))
    assert "repro.bench.capacity/v1" in text
    assert "knee" in text
    assert "+66.7%" in text            # knee 150k -> 250k
    assert "-22.2%" in text            # p99 90 -> 70


def test_bench_diff_reports_missing_knees():
    text = diff_bench_payloads(_capacity_payload(None, 90.0),
                               _capacity_payload(200000.0, 90.0))
    assert "no knee in range" in text


def test_bench_diff_simspeed():
    def payload(rate):
        return {"schema": "repro.bench.simspeed/v1", "quick": True,
                "baseline_seed_engine": {},
                "dispatch": {"events_per_s": rate},
                "capacity": {"best_wall_s": 1.0,
                             "seed_equivalent_events_per_s": rate * 2},
                "speedup_vs_seed": {}}
    text = diff_bench_payloads(payload(400000.0), payload(800000.0))
    assert "dispatch events/s" in text
    assert "+100.0%" in text


def test_bench_diff_antientropy():
    def payload(rounds, stale):
        return {"schema": "repro.antientropy.convergence/v1",
                "seed": 3, "interval_us": 1000.0,
                "staleness": {"stale": stale, "reads": 100},
                "convergence": {"rounds": rounds, "repaired": 5,
                                "divergent_last": 0,
                                "divergent_high": 9,
                                "converged_at_us": 5000.0},
                "spec_line": "workload ..."}
    text = diff_bench_payloads(payload(4, 12), payload(2, 0))
    assert "rounds: A 4 -> B 2" in text
    assert "stale reads: A 12/100 -> B 0/100" in text


def test_bench_diff_refuses_mismatched_schemas():
    text = diff_bench_payloads(
        _capacity_payload(1.0, 1.0),
        {"schema": "repro.bench.simspeed/v1"})
    assert "schemas differ" in text
    assert "nothing comparable" in text
