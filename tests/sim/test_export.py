"""Tests for the Chrome trace_event exporter and its validator."""

import json

from repro.sim import (
    Simulator,
    Tracer,
    chrome_trace_dict,
    chrome_trace_events,
    chrome_trace_json,
    validate_chrome_trace,
    write_chrome_trace,
)


def traced_sim():
    sim = Simulator()
    tracer = Tracer(sim, enabled=True)
    tracer.complete("cpu.store", "store 4B", 0.0, 0.87, track="n0.cpu.p1",
                    data={"bytes": 4})
    tracer.complete("mesh.transit", "pkt #0", 2.02, 2.48, track="mesh.backplane")
    tracer.log("net", "packet sent", data={"size": 20})
    return sim, tracer


def events_of(events, phase):
    return [e for e in events if e["ph"] == phase]


def test_spans_export_as_complete_events_with_metadata():
    _, tracer = traced_sim()
    events = chrome_trace_events(tracer)
    complete = events_of(events, "X")
    assert len(complete) == 2
    store = complete[0]
    assert store["name"] == "store 4B"
    assert store["cat"] == "cpu.store"
    assert store["ts"] == 0.0 and store["dur"] == 0.87
    assert store["args"]["bytes"] == 4 and "sid" in store["args"]
    # Track "n0.cpu.p1" splits at the FIRST dot: process n0, thread cpu.p1.
    meta = events_of(events, "M")
    names = {(e["name"], e["args"]["name"]) for e in meta}
    assert ("process_name", "n0") in names
    assert ("thread_name", "cpu.p1") in names
    assert ("process_name", "mesh") in names


def test_pid_tid_are_stable_small_integers():
    _, tracer = traced_sim()
    events = chrome_trace_events(tracer)
    complete = events_of(events, "X")
    assert all(isinstance(e["pid"], int) and isinstance(e["tid"], int)
               for e in complete)
    again = events_of(chrome_trace_events(tracer), "X")
    assert [(e["pid"], e["tid"]) for e in complete] == [
        (e["pid"], e["tid"]) for e in again]


def test_logs_export_as_instant_events_on_log_tracks():
    _, tracer = traced_sim()
    events = chrome_trace_events(tracer)
    (instant,) = events_of(events, "i")
    assert instant["name"] == "packet sent"
    assert instant["s"] == "g"
    meta_names = {e["args"]["name"] for e in events_of(events, "M")}
    assert "log" in meta_names and "net" in meta_names
    assert events_of(chrome_trace_events(tracer, include_logs=False), "i") == []


def test_open_spans_are_closed_at_now_and_flagged():
    sim = Simulator()
    tracer = Tracer(sim, enabled=True)
    tracer.begin("vmmc.send", "never ended", track="n0.cpu.p1")
    sim.schedule_call(3.0, lambda: None)
    sim.run()
    (event,) = events_of(chrome_trace_events(tracer), "X")
    assert event["dur"] == 3.0
    assert event["args"]["open"] is True


def test_parent_links_survive_export():
    sim = Simulator()
    tracer = Tracer(sim, enabled=True)
    outer = tracer.begin("nx.csend", "csend", track="n0.cpu.p1")
    inner = tracer.begin("vmmc.send", "send", track="n0.cpu.p1")
    tracer.end(inner)
    tracer.end(outer)
    by_name = {e["name"]: e for e in events_of(chrome_trace_events(tracer), "X")}
    assert "parent_sid" not in by_name["csend"]["args"]
    assert by_name["send"]["args"]["parent_sid"] == by_name["csend"]["args"]["sid"]


def test_json_round_trip_validates_clean(tmp_path):
    _, tracer = traced_sim()
    text = chrome_trace_json(tracer, indent=1)
    assert validate_chrome_trace(text) == []
    parsed = json.loads(text)
    assert parsed["traceEvents"] == chrome_trace_dict(tracer)["traceEvents"]
    path = write_chrome_trace(tracer, tmp_path / "t.json")
    assert validate_chrome_trace((tmp_path / "t.json").read_text()) == []
    assert path == str(tmp_path / "t.json")


def test_validator_accepts_bare_event_arrays():
    _, tracer = traced_sim()
    assert validate_chrome_trace(chrome_trace_events(tracer)) == []


def test_validator_flags_structural_problems():
    assert validate_chrome_trace("not json")[0].startswith("not valid JSON")
    assert validate_chrome_trace(42) == [
        "top level must be an object or an event array"]
    assert validate_chrome_trace({"no": "events"}) == [
        "JSON-object form must carry a 'traceEvents' array"]
    problems = validate_chrome_trace([
        {"ph": "Q", "name": "bad phase"},
        {"ph": "X", "name": "n", "ts": 0, "pid": 1, "tid": 1, "dur": -1},
        {"ph": "X", "ts": 0, "pid": 1, "tid": 1, "dur": 1},
        {"ph": "i", "name": "n", "ts": 0, "pid": 1, "tid": 1, "s": "z"},
        {"ph": "B", "name": "n", "ts": 0, "pid": 1, "tid": 1, "args": "nope"},
        "not an object",
    ])
    assert len(problems) == 6
    assert any("bad phase" in p for p in problems)
    assert any("dur >= 0" in p for p in problems)
    assert any("missing required key 'name'" in p for p in problems)
    assert any("scope must be g/p/t" in p for p in problems)
    assert any("args must be an object" in p for p in problems)
    assert any("not an object" in p for p in problems)


def test_empty_tracer_exports_valid_empty_trace():
    sim = Simulator()
    tracer = Tracer(sim, enabled=True)
    assert validate_chrome_trace(chrome_trace_json(tracer)) == []
    assert chrome_trace_events(tracer) == []
