"""Unit tests for Resource, Store, and BandwidthChannel."""

import pytest

from repro.sim import BandwidthChannel, Resource, Simulator, Store, spawn


# ---------------------------------------------------------------------------
# Resource
# ---------------------------------------------------------------------------

def test_resource_grants_immediately_when_free():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    log = []

    def worker():
        req = res.request()
        yield req
        log.append(sim.now)
        res.release(req)

    spawn(sim, worker())
    sim.run()
    assert log == [0.0]


def test_resource_serializes_holders():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    log = []

    def worker(ident, hold):
        req = res.request()
        yield req
        log.append(("start", ident, sim.now))
        yield sim.timeout(hold)
        res.release(req)
        log.append(("end", ident, sim.now))

    spawn(sim, worker("a", 5.0))
    spawn(sim, worker("b", 3.0))
    sim.run()
    assert log == [
        ("start", "a", 0.0),
        ("end", "a", 5.0),
        ("start", "b", 5.0),
        ("end", "b", 8.0),
    ]


def test_resource_capacity_two_allows_parallel_holders():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    starts = []

    def worker(ident):
        req = res.request()
        yield req
        starts.append((ident, sim.now))
        yield sim.timeout(10.0)
        res.release(req)

    for ident in ("a", "b", "c"):
        spawn(sim, worker(ident))
    sim.run()
    assert starts == [("a", 0.0), ("b", 0.0), ("c", 10.0)]


def test_resource_priority_order():
    """Lower priority value is served first when a slot frees up."""
    sim = Simulator()
    res = Resource(sim, capacity=1)
    order = []

    def holder():
        req = res.request()
        yield req
        yield sim.timeout(5.0)
        res.release(req)

    def claimant(ident, priority):
        yield sim.timeout(1.0)  # queue up behind the holder
        req = res.request(priority=priority)
        yield req
        order.append(ident)
        res.release(req)

    spawn(sim, holder())
    spawn(sim, claimant("low-pri", 10))
    spawn(sim, claimant("high-pri", 0))
    sim.run()
    assert order == ["high-pri", "low-pri"]


def test_resource_release_of_queued_request_cancels_it():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    first = res.request()
    second = res.request()
    res.release(second)  # cancel while still queued
    res.release(first)
    assert res.count == 0
    assert res.queue_length == 0


def test_resource_release_unknown_request_raises():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    other = Resource(sim, capacity=1)
    req = other.request()
    with pytest.raises(ValueError):
        res.release(req)


def test_resource_invalid_capacity():
    sim = Simulator()
    with pytest.raises(ValueError):
        Resource(sim, capacity=0)


def test_resource_context_manager_releases():
    sim = Simulator()
    res = Resource(sim, capacity=1)

    def worker():
        with res.request() as req:
            yield req
            assert res.count == 1
        return res.count

    proc = spawn(sim, worker())
    sim.run()
    assert proc.value == 0


# ---------------------------------------------------------------------------
# Store
# ---------------------------------------------------------------------------

def test_store_fifo_order():
    sim = Simulator()
    store = Store(sim)
    got = []

    def producer():
        for i in range(3):
            yield store.put(i)

    def consumer():
        for _ in range(3):
            item = yield store.get()
            got.append(item)

    spawn(sim, producer())
    spawn(sim, consumer())
    sim.run()
    assert got == [0, 1, 2]


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer():
        item = yield store.get()
        got.append((item, sim.now))

    def producer():
        yield sim.timeout(4.0)
        yield store.put("late")

    spawn(sim, consumer())
    spawn(sim, producer())
    sim.run()
    assert got == [("late", 4.0)]


def test_store_put_blocks_when_full():
    sim = Simulator()
    store = Store(sim, capacity=1)
    log = []

    def producer():
        yield store.put("a")
        log.append(("put-a", sim.now))
        yield store.put("b")
        log.append(("put-b", sim.now))

    def consumer():
        yield sim.timeout(6.0)
        item = yield store.get()
        log.append(("got", item, sim.now))

    spawn(sim, producer())
    spawn(sim, consumer())
    sim.run()
    # At t=6.0 the get unblocks the waiting producer before the consumer's
    # own resumption is scheduled, so "put-b" logs first.
    assert log == [("put-a", 0.0), ("put-b", 6.0), ("got", "a", 6.0)]


def test_store_try_put_respects_capacity():
    sim = Simulator()
    store = Store(sim, capacity=2)
    assert store.try_put(1)
    assert store.try_put(2)
    assert not store.try_put(3)
    assert store.items == (1, 2)


def test_store_len_and_items_snapshot():
    sim = Simulator()
    store = Store(sim)
    store.try_put("x")
    assert len(store) == 1
    snapshot = store.items
    store.try_put("y")
    assert snapshot == ("x",)


# ---------------------------------------------------------------------------
# BandwidthChannel
# ---------------------------------------------------------------------------

def test_channel_transfer_time_is_size_over_bandwidth():
    sim = Simulator()
    chan = BandwidthChannel(sim, bandwidth=10.0)  # 10 bytes/us
    done = []

    def worker():
        yield chan.transfer(100)
        done.append(sim.now)

    spawn(sim, worker())
    sim.run()
    assert done == [10.0]


def test_channel_overhead_added_per_transfer():
    sim = Simulator()
    chan = BandwidthChannel(sim, bandwidth=10.0, overhead=2.0)
    done = []

    def worker():
        yield chan.transfer(100)
        done.append(sim.now)
        yield chan.transfer(100)
        done.append(sim.now)

    spawn(sim, worker())
    sim.run()
    assert done == [12.0, 24.0]


def test_channel_serializes_concurrent_transfers():
    sim = Simulator()
    chan = BandwidthChannel(sim, bandwidth=1.0)  # 1 byte/us
    done = []

    def worker(ident, size):
        yield chan.transfer(size)
        done.append((ident, sim.now))

    spawn(sim, worker("a", 10))
    spawn(sim, worker("b", 5))
    sim.run()
    # b queued behind a: finishes at 10 + 5.
    assert done == [("a", 10.0), ("b", 15.0)]


def test_channel_idle_gap_not_charged():
    sim = Simulator()
    chan = BandwidthChannel(sim, bandwidth=1.0)
    done = []

    def worker():
        yield chan.transfer(10)
        yield sim.timeout(100.0)  # channel goes idle
        yield chan.transfer(10)
        done.append(sim.now)

    spawn(sim, worker())
    sim.run()
    assert done == [120.0]


def test_channel_counts_bytes_and_transfers():
    sim = Simulator()
    chan = BandwidthChannel(sim, bandwidth=10.0)
    chan.transfer(30)
    chan.transfer(70)
    sim.run()
    assert chan.bytes_carried == 100
    assert chan.transfers == 2


def test_channel_rejects_bad_args():
    sim = Simulator()
    with pytest.raises(ValueError):
        BandwidthChannel(sim, bandwidth=0.0)
    chan = BandwidthChannel(sim, bandwidth=1.0)
    with pytest.raises(ValueError):
        chan.occupancy(-1)
