"""Unit tests for the simulation event loop and event primitives."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Event,
    SimulationError,
    Simulator,
    Timeout,
)


def test_time_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_schedule_and_run_advances_time():
    sim = Simulator()
    seen = []
    sim.schedule_call(5.0, lambda: seen.append(sim.now))
    sim.schedule_call(2.0, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [2.0, 5.0]
    assert sim.now == 5.0


def test_same_time_callbacks_run_in_scheduling_order():
    sim = Simulator()
    seen = []
    for i in range(10):
        sim.schedule_call(1.0, seen.append, i)
    sim.run()
    assert seen == list(range(10))


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.schedule_call(-1.0, lambda: None)


def test_run_until_stops_before_later_events():
    sim = Simulator()
    seen = []
    sim.schedule_call(1.0, seen.append, "a")
    sim.schedule_call(10.0, seen.append, "b")
    sim.run(until=5.0)
    assert seen == ["a"]
    assert sim.now == 5.0
    sim.run()
    assert seen == ["a", "b"]


def test_step_on_empty_heap_raises():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.step()


def test_peek_returns_next_event_time():
    sim = Simulator()
    assert sim.peek() is None
    sim.schedule_call(3.0, lambda: None)
    assert sim.peek() == 3.0


def test_event_succeed_delivers_value_to_callback():
    sim = Simulator()
    ev = sim.event()
    got = []
    ev.add_callback(lambda e: got.append(e.value))
    ev.succeed(42)
    sim.run()
    assert got == [42]


def test_event_value_before_trigger_raises():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(SimulationError):
        _ = ev.value


def test_event_double_trigger_raises():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_event_fail_requires_exception():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(TypeError):
        ev.fail("not an exception")


def test_callback_added_after_trigger_still_runs():
    sim = Simulator()
    ev = sim.event()
    ev.succeed("late")
    got = []
    ev.add_callback(lambda e: got.append(e.value))
    sim.run()
    assert got == ["late"]


def test_timeout_fires_at_correct_time():
    sim = Simulator()
    times = []
    t = Timeout(sim, 7.5, value="x")
    t.add_callback(lambda e: times.append((sim.now, e.value)))
    sim.run()
    assert times == [(7.5, "x")]


def test_timeout_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        Timeout(sim, -0.1)


def test_any_of_fires_on_first_child():
    sim = Simulator()
    fast = sim.timeout(1.0, "fast")
    slow = sim.timeout(5.0, "slow")
    composite = AnyOf(sim, [slow, fast])
    got = []
    composite.add_callback(lambda e: got.append((sim.now, e.value[1])))
    sim.run()
    assert got == [(1.0, "fast")]


def test_all_of_waits_for_every_child():
    sim = Simulator()
    events = [sim.timeout(t, t) for t in (3.0, 1.0, 2.0)]
    composite = AllOf(sim, events)
    got = []
    composite.add_callback(lambda e: got.append((sim.now, e.value)))
    sim.run()
    assert got == [(3.0, [3.0, 1.0, 2.0])]


def test_composite_requires_children():
    sim = Simulator()
    with pytest.raises(ValueError):
        AnyOf(sim, [])
    with pytest.raises(ValueError):
        AllOf(sim, [])


def test_all_of_fails_if_child_fails():
    sim = Simulator()
    good = sim.timeout(1.0)
    bad = sim.event()
    composite = AllOf(sim, [good, bad])
    got = []
    composite.add_callback(lambda e: got.append(e.ok))
    bad.fail(RuntimeError("boom"))
    sim.run()
    assert got == [False]


def test_stop_simulation_returns_value():
    sim = Simulator()
    sim.schedule_call(2.0, lambda: sim.stop("answer"))
    sim.schedule_call(9.0, lambda: pytest.fail("should not run"))
    assert sim.run() == "answer"
    assert sim.now == 2.0
