"""Unit tests for generator-based processes."""

import pytest

from repro.sim import Interrupt, Process, SimulationError, Simulator, spawn


def test_process_runs_and_returns_value():
    sim = Simulator()

    def worker():
        yield sim.timeout(3.0)
        return "done"

    proc = spawn(sim, worker())
    sim.run()
    assert proc.triggered
    assert proc.ok
    assert proc.value == "done"
    assert sim.now == 3.0


def test_yield_from_subroutine_composes_time():
    sim = Simulator()

    def step(duration):
        yield sim.timeout(duration)
        return duration * 2

    def worker():
        a = yield from step(1.0)
        b = yield from step(2.0)
        return a + b

    proc = spawn(sim, worker())
    sim.run()
    assert proc.value == 6.0
    assert sim.now == 3.0


def test_process_waits_on_another_process():
    sim = Simulator()

    def child():
        yield sim.timeout(4.0)
        return "child-result"

    def parent():
        result = yield spawn(sim, child())
        return result

    proc = spawn(sim, parent())
    sim.run()
    assert proc.value == "child-result"


def test_spawning_plain_function_raises():
    sim = Simulator()
    with pytest.raises(TypeError):
        Process(sim, lambda: None)  # type: ignore[arg-type]


def test_yielding_non_event_crashes_process():
    sim = Simulator()

    def worker():
        yield 42  # not an Event

    spawn(sim, worker())
    with pytest.raises(TypeError):
        sim.run()


def test_failed_event_raises_inside_process():
    sim = Simulator()
    ev = sim.event()

    def worker():
        try:
            yield ev
        except RuntimeError as exc:
            return "caught:%s" % exc
        return "not raised"

    proc = spawn(sim, worker())
    sim.schedule_call(1.0, lambda: ev.fail(RuntimeError("boom")))
    sim.run()
    assert proc.value == "caught:boom"


def test_uncaught_exception_with_no_waiter_surfaces():
    sim = Simulator()

    def worker():
        yield sim.timeout(1.0)
        raise ValueError("bug in process")

    spawn(sim, worker())
    with pytest.raises(ValueError, match="bug in process"):
        sim.run()


def test_uncaught_exception_propagates_to_waiter():
    sim = Simulator()

    def child():
        yield sim.timeout(1.0)
        raise ValueError("child bug")

    def parent():
        try:
            yield spawn(sim, child())
        except ValueError:
            return "parent saw it"

    proc = spawn(sim, parent())
    sim.run()
    assert proc.value == "parent saw it"


def test_interrupt_wakes_blocked_process():
    sim = Simulator()

    def sleeper():
        try:
            yield sim.timeout(100.0)
            return "slept"
        except Interrupt as intr:
            return ("interrupted", intr.cause, sim.now)

    proc = spawn(sim, sleeper())
    sim.schedule_call(5.0, proc.interrupt, "wake up")
    sim.run()
    assert proc.value == ("interrupted", "wake up", 5.0)


def test_interrupt_finished_process_raises():
    sim = Simulator()

    def quick():
        return "fast"
        yield  # pragma: no cover

    proc = spawn(sim, quick())
    sim.run()
    with pytest.raises(SimulationError):
        proc.interrupt()


def test_interrupted_event_does_not_resume_twice():
    sim = Simulator()
    resumed = []

    def sleeper():
        try:
            yield sim.timeout(10.0)
            resumed.append("timeout")
        except Interrupt:
            resumed.append("interrupt")
            yield sim.timeout(50.0)  # outlive the original timeout
            resumed.append("after")

    proc = spawn(sim, sleeper())
    sim.schedule_call(1.0, proc.interrupt)
    sim.run()
    assert resumed == ["interrupt", "after"]


def test_process_is_alive_until_done():
    sim = Simulator()

    def worker():
        yield sim.timeout(2.0)

    proc = spawn(sim, worker())
    assert proc.is_alive
    sim.run()
    assert not proc.is_alive


def test_many_processes_interleave_deterministically():
    sim = Simulator()
    order = []

    def worker(ident, period):
        for _ in range(3):
            yield sim.timeout(period)
            order.append((sim.now, ident))

    spawn(sim, worker("a", 1.0))
    spawn(sim, worker("b", 1.5))
    sim.run()
    # At t=3.0 both fire; "b" resumed first because its timeout was
    # scheduled earlier (at t=1.5 vs t=2.0) — ties break by scheduling order.
    assert order == [
        (1.0, "a"),
        (1.5, "b"),
        (2.0, "a"),
        (3.0, "b"),
        (3.0, "a"),
        (4.5, "b"),
    ]
