"""Additional simulation-kernel edge cases."""

import pytest

from repro.sim import (
    AnyOf,
    BandwidthChannel,
    Event,
    Interrupt,
    Resource,
    Simulator,
    Store,
    spawn,
)


def test_store_multiple_getters_fifo():
    """Waiting getters are served in arrival order."""
    sim = Simulator()
    store = Store(sim)
    got = []

    def getter(ident, delay):
        yield sim.timeout(delay)
        item = yield store.get()
        got.append((ident, item))

    spawn(sim, getter("first", 1.0))
    spawn(sim, getter("second", 2.0))

    def producer():
        yield sim.timeout(10.0)
        yield store.put("a")
        yield store.put("b")

    spawn(sim, producer())
    sim.run()
    assert got == [("first", "a"), ("second", "b")]


def test_any_of_with_already_triggered_child():
    sim = Simulator()
    done = Event(sim)
    done.succeed("early")
    pending = sim.timeout(100.0)
    got = []

    def waiter():
        event, value = yield AnyOf(sim, [done, pending])
        got.append((value, sim.now))

    spawn(sim, waiter())
    sim.run()
    assert got == [("early", 0.0)]


def test_any_of_failure_propagates():
    sim = Simulator()
    bad = Event(sim)

    def waiter():
        try:
            yield AnyOf(sim, [bad, sim.timeout(100.0)])
        except RuntimeError as exc:
            return str(exc)

    proc = spawn(sim, waiter())
    sim.schedule_call(1.0, lambda: bad.fail(RuntimeError("child failed")))
    sim.run()
    assert proc.value == "child failed"


def test_multiple_interrupts_queue():
    sim = Simulator()
    causes = []

    def victim():
        for _ in range(2):
            try:
                yield sim.timeout(100.0)
            except Interrupt as intr:
                causes.append(intr.cause)
        return causes

    proc = spawn(sim, victim())
    sim.schedule_call(1.0, proc.interrupt, "first")
    sim.schedule_call(1.0, proc.interrupt, "second")
    sim.run()
    assert proc.value == ["first", "second"]


def test_resource_with_statement_releases_on_exception():
    sim = Simulator()
    res = Resource(sim, capacity=1)

    def worker():
        try:
            with res.request() as req:
                yield req
                raise ValueError("inner")
        except ValueError:
            pass
        return res.count

    proc = spawn(sim, worker())
    sim.run()
    assert proc.value == 0


def test_channel_zero_byte_transfer_costs_overhead_only():
    sim = Simulator()
    chan = BandwidthChannel(sim, bandwidth=10.0, overhead=3.0)
    done = []

    def worker():
        yield chan.transfer(0)
        done.append(sim.now)

    spawn(sim, worker())
    sim.run()
    assert done == [3.0]


def test_nested_yield_from_exception_unwinds():
    sim = Simulator()

    def level2():
        yield sim.timeout(1.0)
        raise KeyError("deep")

    def level1():
        yield from level2()

    def top():
        try:
            yield from level1()
        except KeyError:
            return "caught at top"

    proc = spawn(sim, top())
    sim.run()
    assert proc.value == "caught at top"


def test_event_names_in_repr():
    sim = Simulator()
    ev = sim.event("my-event")
    assert "my-event" in repr(ev)


def test_timeout_value_passthrough():
    sim = Simulator()

    def worker():
        value = yield sim.timeout(1.0, value={"payload": 1})
        return value

    proc = spawn(sim, worker())
    sim.run()
    assert proc.value == {"payload": 1}
