"""Cross-node flow events in the Chrome exporter and its validator.

Spans carrying an ``xparent`` causal edge (written by the trace-context
propagation layer when a request hops a wire) must export as ``s``/``f``
flow-event pairs so Perfetto renders the causal tree as arrows, and
``validate_chrome_trace`` must accept those events while still flagging
malformed ones.
"""

import json

from repro.sim import (
    Simulator,
    Tracer,
    chrome_trace_events,
    chrome_trace_json,
    validate_chrome_trace,
)


def cross_node_tracer():
    """A two-node trace: a client call whose server span points back."""
    sim = Simulator()
    tracer = Tracer(sim, enabled=True)
    call_sid = tracer.reserve_sid()
    tracer.complete("srpc.call", "call proc 3", 0.0, 40.0,
                    track="n0.cpu.p1", data={"tid": call_sid}, sid=call_sid)
    tracer.complete("srpc.serve", "serve proc 3", 12.0, 30.0,
                    track="n1.cpu.p2",
                    data={"tid": call_sid, "xparent": call_sid})
    return tracer, call_sid


def phase_events(events, phase):
    return [e for e in events if e["ph"] == phase]


def test_xparent_span_emits_flow_pair_with_shared_id():
    tracer, call_sid = cross_node_tracer()
    events = chrome_trace_events(tracer)
    starts = phase_events(events, "s")
    finishes = phase_events(events, "f")
    assert len(starts) == 1 and len(finishes) == 1
    start, finish = starts[0], finishes[0]
    # One arrow: same id on both halves, binding-point "e" on the finish.
    assert start["id"] == finish["id"]
    assert finish["bp"] == "e"
    # The s event anchors in the parent slice on the parent's track; the
    # f event lands at the child span's start on the child's track.
    complete = {e["args"]["sid"]: e for e in phase_events(events, "X")}
    parent = complete[call_sid]
    child = next(e for e in phase_events(events, "X")
                 if e["args"].get("xparent") == call_sid)
    assert (start["pid"], start["tid"]) == (parent["pid"], parent["tid"])
    assert (finish["pid"], finish["tid"]) == (child["pid"], child["tid"])
    assert start["ts"] == parent["ts"]
    assert finish["ts"] == child["ts"]


def test_xparent_to_unknown_sid_emits_no_dangling_flow():
    sim = Simulator()
    tracer = Tracer(sim, enabled=True)
    tracer.complete("srpc.serve", "serve proc 3", 12.0, 30.0,
                    track="n1.cpu.p2", data={"xparent": 9999})
    events = chrome_trace_events(tracer)
    assert not phase_events(events, "s")
    assert not phase_events(events, "f")
    assert validate_chrome_trace(events) == []


def test_distinct_edges_get_distinct_flow_ids():
    sim = Simulator()
    tracer = Tracer(sim, enabled=True)
    for hop in range(3):
        parent_sid = tracer.reserve_sid()
        tracer.complete("kv.call", "call #%d" % hop, 10.0 * hop,
                        10.0 * hop + 8.0, track="n0.cpu.p1", sid=parent_sid)
        tracer.complete("kv.serve", "serve #%d" % hop, 10.0 * hop + 2.0,
                        10.0 * hop + 6.0, track="n%d.cpu.p2" % (hop + 1),
                        data={"xparent": parent_sid})
    events = chrome_trace_events(tracer)
    ids = [e["id"] for e in phase_events(events, "s")]
    assert len(ids) == 3 and len(set(ids)) == 3


def test_validator_accepts_cross_node_flow_trace():
    tracer, _ = cross_node_tracer()
    text = chrome_trace_json(tracer)
    assert validate_chrome_trace(text) == []
    # The JSON-object form and the bare array both validate.
    payload = json.loads(text)
    assert validate_chrome_trace(payload) == []
    assert validate_chrome_trace(payload["traceEvents"]) == []


def test_validator_flags_flow_event_without_id():
    tracer, _ = cross_node_tracer()
    events = chrome_trace_events(tracer)
    for event in events:
        if event["ph"] in ("s", "f"):
            event.pop("id", None)
    problems = validate_chrome_trace(events)
    assert len(problems) == 2
    assert all("flow event needs an id" in p for p in problems)
