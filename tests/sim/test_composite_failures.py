"""Regression tests: AnyOf/AllOf child-failure semantics.

A child that fails *before* a composite triggers fails the composite
(and the exception is owned by whoever waits on the composite).  A child
that fails *after* the composite already triggered used to be silently
swallowed; it must now be re-raised out of the event loop unless some
other consumer defuses it — the same "bugs never pass silently"
discipline Process._crash applies.
"""

import pytest

from repro.sim import AllOf, AnyOf, Simulator, spawn


class Boom(RuntimeError):
    pass


def test_any_of_late_child_failure_surfaces():
    sim = Simulator()
    fast = sim.timeout(1.0, "fast")
    bad = sim.event()
    composite = AnyOf(sim, [fast, bad])
    won = []
    composite.add_callback(lambda e: won.append(e.value[1]))
    sim.schedule_call(5.0, lambda: bad.fail(Boom("late")))
    with pytest.raises(Boom):
        sim.run()
    assert won == ["fast"]  # the composite itself completed normally


def test_all_of_second_failure_surfaces():
    sim = Simulator()
    first = sim.event()
    second = sim.event()
    composite = AllOf(sim, [first, second])
    seen = []
    composite.add_callback(lambda e: seen.append(e.ok))
    sim.schedule_call(1.0, lambda: first.fail(Boom("first")))
    sim.schedule_call(2.0, lambda: second.fail(Boom("second")))
    with pytest.raises(Boom, match="second"):
        sim.run()
    assert seen == [False]


def test_late_failure_consumed_by_waiting_process_does_not_surface():
    sim = Simulator()
    fast = sim.timeout(1.0)
    bad = sim.event()
    AnyOf(sim, [fast, bad])
    caught = []

    def watcher():
        try:
            yield bad
        except Boom as exc:
            caught.append(str(exc))

    spawn(sim, watcher())
    sim.schedule_call(5.0, lambda: bad.fail(Boom("handled elsewhere")))
    sim.run()  # must not raise: the watcher consumed the failure
    assert caught == ["handled elsewhere"]


def test_manual_defuse_suppresses_late_failure():
    sim = Simulator()
    fast = sim.timeout(1.0)
    bad = sim.event()
    AnyOf(sim, [fast, bad])

    def fail_defused():
        bad.fail(Boom("deliberate"))
        bad.defuse()

    sim.schedule_call(5.0, fail_defused)
    sim.run()  # must not raise


def test_early_child_failure_still_fails_composite_and_is_defused():
    sim = Simulator()
    bad = sim.event()
    slow = sim.timeout(10.0)
    composite = AnyOf(sim, [bad, slow])
    caught = []

    def waiter():
        try:
            yield composite
        except Boom as exc:
            caught.append(str(exc))

    spawn(sim, waiter())
    sim.schedule_call(1.0, lambda: bad.fail(Boom("early")))
    sim.run()
    assert caught == ["early"]
    assert bad.defused  # the composite took ownership of the failure


def test_process_wait_defuses_failed_event():
    sim = Simulator()
    bad = sim.event()
    caught = []

    def waiter():
        try:
            yield bad
        except Boom:
            caught.append(True)

    spawn(sim, waiter())
    sim.schedule_call(1.0, lambda: bad.fail(Boom()))
    sim.run()
    assert caught == [True]
    assert bad.defused
