"""Unit tests for the slotted/coalesced timers (repro.sim.timers)."""

from repro.sim import Simulator
from repro.sim.timers import IdleTimer, TimerWheel

import pytest


def test_wheel_fires_at_deadline_in_registration_order():
    """One slot, several timers: all fire at the instant, in order."""
    sim = Simulator()
    wheel = TimerWheel(sim)
    fired = []
    wheel.at(10.0, fired.append, "a")
    wheel.at(10.0, fired.append, "b")
    wheel.at(5.0, fired.append, "early")
    sim.run()
    assert fired == ["early", "a", "b"]
    assert sim.now == 10.0


def test_wheel_coalesces_same_deadline_into_one_entry():
    """N registrations at one float cost one scheduler dispatch."""
    sim = Simulator()
    wheel = TimerWheel(sim)
    hits = []
    for i in range(50):
        wheel.at(7.0, hits.append, i)
    assert wheel.pending(7.0) == 50
    sim.run()
    # 50 callbacks, one entry: the wheel's own dispatch plus nothing.
    assert sim.events_executed == 1
    assert hits == list(range(50))


def test_wheel_cancel_is_idempotent_and_skips_the_callback():
    """Cancelled cells never run; cancelling twice (or late) is safe."""
    sim = Simulator()
    wheel = TimerWheel(sim)
    fired = []
    keep = wheel.at(3.0, fired.append, "keep")
    drop = wheel.at(3.0, fired.append, "drop")
    wheel.cancel(drop)
    wheel.cancel(drop)
    assert wheel.pending(3.0) == 1
    sim.run()
    assert fired == ["keep"]
    wheel.cancel(keep)  # after firing: harmless
    assert wheel.pending(3.0) == 0


def test_wheel_refire_after_slot_drains():
    """Re-registering a drained deadline starts a fresh slot."""
    sim = Simulator()
    wheel = TimerWheel(sim)
    fired = []

    def chain(label):
        fired.append(label)
        if label == "first":
            # Same-float re-registration from inside the dispatch: a
            # new slot, dispatched immediately after (same instant).
            wheel.at(2.0, chain, "second")

    wheel.at(2.0, chain, "first")
    sim.run()
    assert fired == ["first", "second"]
    assert sim.now == 2.0


def test_idle_timer_expires_after_quiet_window():
    """No activity: the expiry action runs one window after arming."""
    sim = Simulator()
    state = {"last": 0.0, "expired": []}
    timer = IdleTimer(sim, lambda: (4.0, state["last"]),
                      lambda: state["expired"].append(sim.now))
    timer.arm(4.0)
    assert timer.armed
    sim.run()
    assert state["expired"] == [4.0]
    assert not timer.armed


def test_idle_timer_slides_with_activity_without_rearming():
    """Activity mid-window defers expiry by re-checking, not re-arming.

    Three writes land inside the window; the timer fires only once
    activity has been quiet for a full window, and the entry count
    scales with re-checks (2), not with writes (3).
    """
    sim = Simulator()
    state = {"last": 0.0, "expired": []}
    timer = IdleTimer(sim, lambda: (10.0, state["last"]),
                      lambda: state["expired"].append(sim.now))

    def writer():
        for at in (3.0, 6.0, 9.0):
            yield sim.timeout(at - sim.now)
            state["last"] = sim.now
            timer.arm(10.0)  # no-op while armed

    from repro.sim.process import Process
    Process(sim, writer(), name="writer")
    timer.arm(10.0)
    sim.run()
    assert state["expired"] == [19.0]


def test_idle_timer_probe_none_disarms():
    """A vanished guarded object (probe -> None) ends the timer quietly."""
    sim = Simulator()
    expired = []
    timer = IdleTimer(sim, lambda: None, lambda: expired.append(1))
    timer.arm(5.0)
    sim.run()
    assert expired == []
    assert not timer.armed


def test_wheel_rejects_past_deadline():
    """Scheduling in the past fails like any negative-delay schedule."""
    sim = Simulator()
    wheel = TimerWheel(sim)
    wheel.at(1.0, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        wheel.at(0.5, lambda: None)
