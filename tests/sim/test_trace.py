"""Unit tests for tracing and measurement helpers."""

import pytest

from repro.sim import Series, Simulator, Stopwatch, Tracer


def test_tracer_disabled_keeps_counts_only():
    sim = Simulator()
    tracer = Tracer(sim, enabled=False)
    tracer.log("net", "packet sent")
    assert tracer.counts["net"] == 1
    assert tracer.records == []


def test_tracer_enabled_records_time_and_category():
    sim = Simulator()
    tracer = Tracer(sim, enabled=True)
    sim.schedule_call(3.5, tracer.log, "net", "hello", {"size": 4})
    sim.run()
    assert len(tracer.records) == 1
    record = tracer.records[0]
    assert record.time == 3.5
    assert record.category == "net"
    assert record.data == {"size": 4}


def test_tracer_select_filters_by_category():
    sim = Simulator()
    tracer = Tracer(sim, enabled=True)
    tracer.log("a", "one")
    tracer.log("b", "two")
    tracer.log("a", "three")
    assert [r.message for r in tracer.select("a")] == ["one", "three"]


def test_tracer_limit_caps_records():
    sim = Simulator()
    tracer = Tracer(sim, enabled=True, limit=2)
    for i in range(5):
        tracer.log("x", str(i))
    assert len(tracer.records) == 2
    assert tracer.counts["x"] == 5


def test_tracer_format_output():
    sim = Simulator()
    tracer = Tracer(sim, enabled=True)
    tracer.log("net", "msg")
    text = tracer.format()
    assert "net" in text and "msg" in text
    assert tracer.format(categories=["other"]) == ""


def test_series_statistics():
    series = Series("lat")
    for v in (1.0, 2.0, 3.0):
        series.add(v)
    assert len(series) == 3
    assert series.mean == 2.0
    assert series.minimum == 1.0
    assert series.maximum == 3.0
    assert series.stddev == pytest.approx(1.0)


def test_series_empty_mean_raises():
    with pytest.raises(ValueError):
        _ = Series().mean


def test_series_single_sample_stddev_is_zero():
    series = Series()
    series.add(5.0)
    assert series.stddev == 0.0


def test_stopwatch_measures_span():
    sim = Simulator()
    sw = Stopwatch(sim)
    sw.start()
    sim.schedule_call(4.0, lambda: None)
    sim.run()
    assert sw.stop() == 4.0
    assert sw.elapsed == 4.0


def test_stopwatch_stop_without_start_raises():
    sim = Simulator()
    with pytest.raises(ValueError):
        Stopwatch(sim).stop()
