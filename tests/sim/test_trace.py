"""Unit tests for tracing and measurement helpers."""

import pytest

from repro.sim import Series, Simulator, Stopwatch, Tracer, spawn


def test_tracer_disabled_keeps_counts_only():
    sim = Simulator()
    tracer = Tracer(sim, enabled=False)
    tracer.log("net", "packet sent")
    assert tracer.counts["net"] == 1
    assert tracer.records == []


def test_tracer_enabled_records_time_and_category():
    sim = Simulator()
    tracer = Tracer(sim, enabled=True)
    sim.schedule_call(
        3.5, lambda: tracer.log("net", "hello", data={"size": 4}))
    sim.run()
    assert len(tracer.records) == 1
    record = tracer.records[0]
    assert record.time == 3.5
    assert record.category == "net"
    assert record.data == {"size": 4}


def test_tracer_select_filters_by_category():
    sim = Simulator()
    tracer = Tracer(sim, enabled=True)
    tracer.log("a", "one")
    tracer.log("b", "two")
    tracer.log("a", "three")
    assert [r.message for r in tracer.select("a")] == ["one", "three"]


def test_tracer_limit_caps_records():
    sim = Simulator()
    tracer = Tracer(sim, enabled=True, limit=2)
    for i in range(5):
        tracer.log("x", str(i))
    assert len(tracer.records) == 2
    assert tracer.counts["x"] == 5


def test_tracer_format_output():
    sim = Simulator()
    tracer = Tracer(sim, enabled=True)
    tracer.log("net", "msg")
    text = tracer.format()
    assert "net" in text and "msg" in text
    assert tracer.format(categories=["other"]) == ""


def test_span_begin_end_records_interval():
    sim = Simulator()
    tracer = Tracer(sim, enabled=True)

    def worker():
        span = tracer.begin("cpu.store", "store 4B", track="n0.cpu.p1")
        yield sim.timeout(0.87)
        tracer.end(span, data={"bytes": 4})

    spawn(sim, worker())
    sim.run()
    (span,) = tracer.spans
    assert span.category == "cpu.store"
    assert span.track == "n0.cpu.p1"
    assert span.closed
    assert span.start == 0.0 and span.end == 0.87
    assert span.duration() == pytest.approx(0.87)
    assert span.data == {"bytes": 4}


def test_span_nesting_links_parents_per_track():
    sim = Simulator()
    tracer = Tracer(sim, enabled=True)
    outer = tracer.begin("nx.csend", "csend", track="n0.cpu.p1")
    inner = tracer.begin("vmmc.send", "send", track="n0.cpu.p1")
    other = tracer.begin("nic.dma_in", "dma", track="n1.nic.in")
    assert outer.parent is None
    assert inner.parent == outer.sid
    assert other.parent is None  # different track: no cross-track nesting
    tracer.end(inner)
    tracer.end(outer)
    sibling = tracer.begin("vmmc.send", "again", track="n0.cpu.p1")
    assert sibling.parent is None  # stack drained; not a child of closed spans


def test_span_end_pops_dangling_children():
    sim = Simulator()
    tracer = Tracer(sim, enabled=True)
    outer = tracer.begin("a", "outer", track="t")
    tracer.begin("b", "left-open", track="t")
    tracer.end(outer)  # closing outer drops the dangling child from the stack
    fresh = tracer.begin("c", "fresh", track="t")
    assert fresh.parent is None


def test_span_disabled_is_noop_and_end_accepts_none():
    sim = Simulator()
    tracer = Tracer(sim, enabled=False)
    span = tracer.begin("cpu.store", "store", track="n0.cpu.p1")
    assert span is None
    tracer.end(span)  # must not raise: the guarded call-site pattern
    assert tracer.spans == []


def test_span_limit_caps_spans():
    sim = Simulator()
    tracer = Tracer(sim, enabled=True, limit=2)
    for i in range(5):
        tracer.end(tracer.begin("x", str(i)))
    assert len(tracer.spans) == 2


def test_complete_and_instant_adopt_open_parent():
    sim = Simulator()
    tracer = Tracer(sim, enabled=True)
    outer = tracer.begin("vmmc.send", "send", track="n0.cpu.p1")
    done = tracer.complete("bus", "xfer", 1.0, 2.5, track="n0.cpu.p1")
    mark = tracer.instant("note", "flag", track="n0.cpu.p1")
    assert done.parent == outer.sid and done.duration() == pytest.approx(1.5)
    assert mark.parent == outer.sid and mark.duration() == 0.0
    # complete() must not touch the open-span stack.
    child = tracer.begin("cpu.store", "store", track="n0.cpu.p1")
    assert child.parent == outer.sid


def test_span_totals_sums_closed_spans_per_category():
    sim = Simulator()
    tracer = Tracer(sim, enabled=True)
    tracer.complete("bus", "a", 0.0, 1.0)
    tracer.complete("bus", "b", 2.0, 2.5)
    tracer.complete("mesh.transit", "c", 0.0, 0.25)
    tracer.begin("bus", "open")  # open spans are excluded
    totals = tracer.span_totals()
    assert totals["bus"] == pytest.approx(1.5)
    assert totals["mesh.transit"] == pytest.approx(0.25)


def test_spans_of_filters_category_and_track_prefix():
    sim = Simulator()
    tracer = Tracer(sim, enabled=True)
    tracer.complete("cpu.poll", "n0", 0.0, 1.0, track="n0.cpu.p1")
    tracer.complete("cpu.poll", "n1", 0.0, 1.0, track="n1.cpu.p1")
    tracer.complete("cpu.store", "s", 0.0, 1.0, track="n1.cpu.p1")
    assert [s.name for s in tracer.spans_of("cpu.poll")] == ["n0", "n1"]
    assert [s.name for s in tracer.spans_of("cpu.poll", "n1.")] == ["n1"]


def test_clear_drops_spans_and_records_keeps_counts():
    sim = Simulator()
    tracer = Tracer(sim, enabled=True)
    tracer.log("net", "pkt")
    tracer.begin("a", "open")
    tracer.clear()
    assert tracer.spans == [] and tracer.records == []
    assert tracer.counts["net"] == 1
    # Clearing with an open span must not corrupt later nesting.
    fresh = tracer.begin("b", "fresh")
    assert fresh.parent is None


def test_series_statistics():
    series = Series("lat")
    for v in (1.0, 2.0, 3.0):
        series.add(v)
    assert len(series) == 3
    assert series.mean == 2.0
    assert series.minimum == 1.0
    assert series.maximum == 3.0
    assert series.stddev == pytest.approx(1.0)


def test_series_empty_mean_raises():
    with pytest.raises(ValueError):
        _ = Series().mean


def test_series_single_sample_stddev_is_zero():
    series = Series()
    series.add(5.0)
    assert series.stddev == 0.0


def test_stopwatch_measures_span():
    sim = Simulator()
    sw = Stopwatch(sim)
    sw.start()
    sim.schedule_call(4.0, lambda: None)
    sim.run()
    assert sw.stop() == 4.0
    assert sw.elapsed == 4.0


def test_stopwatch_stop_without_start_raises():
    sim = Simulator()
    with pytest.raises(ValueError):
        Stopwatch(sim).stop()
