"""Causal-tree integrity under seeded fault schedules.

Drop, corrupt, and delay faults force the hardened transports to
retransmit frames and replay logged replies.  The trace-context layer
must keep the story straight through all of that: every request still
assembles into exactly one causal tree, a retransmitted frame's serve
span attaches to the *original* tree (no duplicated delivery spans),
and no span is orphaned from a tree it claims membership of.  The
``audit`` pass checks precisely those invariants, so a clean audit
across a seed sweep is the whole assertion.
"""

import pytest

from repro.obs import assemble_traces, audit
from repro.sim.faults import FaultPlan
from repro.workload import WorkloadSpec, run_workload


def _traced_faulty_run(seed, transport="srpc", count=8, horizon_us=4000.0):
    spec = WorkloadSpec(
        seed=seed, transport=transport, load=20000.0, concurrency=4,
        requests=50, keys=32, read_fraction=0.6, trace=True)
    plan = FaultPlan.from_seed(seed, horizon_us=horizon_us, count=count)
    return run_workload(spec, fault_plan=plan)


def _check_trees(report):
    spans = report.spans
    problems = audit(spans)
    assert problems == [], "\n".join(problems)
    trees = assemble_traces(spans)
    assert trees, "faulty run recorded no request trees"
    for tree in trees.values():
        assert tree.root is not None, "tree %d lost its root" % tree.tid
        assert not tree.problems, tree.problems
    return trees


@pytest.mark.parametrize("seed", [11, 12])
def test_srpc_trees_survive_faults(seed):
    _check_trees(_traced_faulty_run(seed))


def test_sockets_trees_survive_faults():
    _check_trees(_traced_faulty_run(13, transport="sockets"))


def test_same_seed_same_trees():
    first = _check_trees(_traced_faulty_run(14))
    second = _check_trees(_traced_faulty_run(14))
    assert sorted(first) == sorted(second)
    for tid in first:
        assert len(first[tid].spans) == len(second[tid].spans)


@pytest.mark.slow
@pytest.mark.parametrize("seed", range(60, 72))
def test_trace_integrity_seed_sweep(seed):
    """A wider sweep over mixed drop/corrupt/delay schedules."""
    transport = "sockets" if seed % 3 == 0 else "srpc"
    _check_trees(_traced_faulty_run(seed, transport=transport))


@pytest.mark.slow
@pytest.mark.parametrize("seed", range(80, 86))
def test_trace_integrity_dense_schedule(seed):
    """Denser schedules lean on retransmission and replay paths."""
    _check_trees(_traced_faulty_run(seed, count=16, horizon_us=2000.0))
