"""Shared builders for the seeded fault sweeps.

Each ``run_*`` helper builds a system armed with ``FaultPlan.from_seed``,
drives one transfer pattern through a hardened library, and returns
``(outcome, system)``.  Outcomes are ``"ok"`` (payload verified intact)
or ``"timeout"`` (a typed :class:`~repro.vmmc.errors.VmmcTimeoutError`
subclass surfaced).  Anything else — an untyped exception, a corrupt
payload reaching the application, or a hang past ``WATCHDOG_US`` of
simulated time — propagates and fails the calling test.
"""

from repro.libs.nx import VARIANTS, nx_world
from repro.libs.rpc import VrpcServer, clnt_create
from repro.libs.rpc.vrpc import RpcTimeout
from repro.libs.shrimp_rpc import SrpcTimeoutError, compile_stubs
from repro.libs.sockets import SOCKET_VARIANTS, SocketLib
from repro.sim.faults import FaultPlan
from repro.testbed import make_system
from repro.vmmc import VmmcTimeoutError

PAGE = 4096

# Simulated-time bound: a protocol that stops making progress trips
# run_processes' watchdog (RuntimeError naming the stuck processes)
# long before any wall-clock timeout would.
WATCHDOG_US = 20_000_000.0

VRPC_PROG, VRPC_VERS = 0x20000A11, 1

CALC_IDL = """
program Calc version 1 {
    int add(in int a, in int b);
    void touch(inout opaque<200> buf);
    string<64> greet(in string<32> name);
    void fill(out opaque[8] pattern, in int seed);
}
"""


def payload_for(seed, nbytes):
    """A deterministic, seed-distinct test payload."""
    return bytes((seed * 37 + i * 17 + 5) % 256 for i in range(nbytes))


def run_nx_exchange(seed, variant="AU-1copy", nbytes=512, count=6,
                    horizon_us=3000.0):
    """One NX ping-pong (csend/crecv both directions) under faults."""
    plan = FaultPlan.from_seed(seed, horizon_us=horizon_us, count=count)
    system = make_system(fault_plan=plan)
    ping = payload_for(seed, nbytes)
    pong = payload_for(seed + 1, nbytes)
    outcome = {}
    room = max(nbytes, PAGE)

    def rank0(nx):
        src = nx.proc.space.mmap(room)
        dst = nx.proc.space.mmap(room)
        nx.proc.poke(src, ping)
        try:
            yield from nx.csend(7, src, nbytes, to=1)
            size = yield from nx.crecv(8, dst, room)
            assert nx.proc.peek(dst, size) == pong, "corrupt payload at rank 0"
            outcome["rank0"] = "ok"
        except VmmcTimeoutError:
            outcome["rank0"] = "timeout"

    def rank1(nx):
        src = nx.proc.space.mmap(room)
        dst = nx.proc.space.mmap(room)
        nx.proc.poke(src, pong)
        try:
            size = yield from nx.crecv(7, dst, room)
            assert nx.proc.peek(dst, size) == ping, "corrupt payload at rank 1"
            yield from nx.csend(8, src, nbytes, to=0)
            outcome["rank1"] = "ok"
        except VmmcTimeoutError:
            outcome["rank1"] = "timeout"

    handles = nx_world(system, [rank0, rank1], variant=VARIANTS[variant])
    system.run_processes(handles, timeout=WATCHDOG_US)
    return outcome, system


def run_socket_exchange(seed, variant="AU-1copy", nbytes=1024, count=6,
                        horizon_us=3000.0):
    """One socket echo (client sends, server echoes back) under faults."""
    plan = FaultPlan.from_seed(seed, horizon_us=horizon_us, count=count)
    system = make_system(fault_plan=plan)
    data = payload_for(seed, nbytes)
    outcome = {}
    room = max(nbytes, PAGE)

    def server(proc):
        lib = SocketLib(system, proc, variant=SOCKET_VARIANTS[variant])
        sock = yield from lib.listen(7).accept()
        buf = proc.space.mmap(room)
        try:
            got = yield from sock.recv_exactly(buf, nbytes)
            yield from sock.send(buf, got)
            outcome["server"] = "ok"
        except VmmcTimeoutError:
            outcome["server"] = "timeout"

    def client(proc):
        lib = SocketLib(system, proc, variant=SOCKET_VARIANTS[variant])
        sock = yield from lib.connect(1, 7)
        buf = proc.space.mmap(room)
        proc.poke(buf, data)
        try:
            yield from sock.send(buf, nbytes)
            echo = proc.space.mmap(room)
            got = yield from sock.recv_exactly(echo, nbytes)
            assert proc.peek(echo, got) == data, "corrupt payload at client"
            outcome["client"] = "ok"
        except VmmcTimeoutError:
            outcome["client"] = "timeout"

    s = system.spawn(1, server)
    c = system.spawn(0, client)
    system.run_processes([s, c], timeout=WATCHDOG_US)
    return outcome, system


def run_vrpc_exchange(seed, automatic=True, calls=3, count=6,
                      horizon_us=4000.0):
    """A few VRPC string-reversal calls under faults."""
    plan = FaultPlan.from_seed(seed, horizon_us=horizon_us, count=count)
    system = make_system(fault_plan=plan)
    outcome = {}

    def server(proc):
        srv = VrpcServer(system, proc, VRPC_PROG, VRPC_VERS,
                         automatic=automatic)
        srv.register(
            1,
            lambda s: s[::-1],
            decode_args=lambda dec: dec.unpack_string(),
            encode_result=lambda enc, v: enc.pack_string(v),
        )
        ok = yield from srv.accept_binding()
        assert ok
        try:
            yield from srv.svc_run(max_calls=calls)
            outcome["server"] = "ok"
        except RpcTimeout:
            outcome["server"] = "timeout"

    def client(proc):
        handle = yield from clnt_create(system, proc, 1, VRPC_PROG, VRPC_VERS,
                                        automatic=automatic)
        try:
            for i in range(calls):
                msg = "call-%d-%s" % (i, payload_for(seed, 12).hex())
                result = yield from handle.call(
                    1, msg,
                    encode_args=lambda enc, v: enc.pack_string(v),
                    decode_result=lambda dec: dec.unpack_string(),
                )
                assert result == msg[::-1], "corrupt reply at client"
            outcome["client"] = "ok"
        except RpcTimeout:
            outcome["client"] = "timeout"

    s = system.spawn(1, server)
    c = system.spawn(0, client)
    system.run_processes([s, c], timeout=WATCHDOG_US)
    return outcome, system


def run_srpc_pipelined_exchange(seed, window=4, count=6, horizon_us=3000.0):
    """Eight pipelined SHRIMP RPC calls finished out of order, under
    faults.

    The client keeps ``window`` sequence-numbered calls in flight and
    finishes each batch newest-first, so reply matching (and, in
    hardened mode, per-frame retransmission and reply replay) is
    exercised against the fault schedule.  Every finished call's value
    is checked against the expected function of its arguments — a
    reply matched to the wrong ticket shows up as corruption, not luck.
    """
    plan = FaultPlan.from_seed(seed, horizon_us=horizon_us, count=count)
    system = make_system(fault_plan=plan)
    client_cls, server_cls, _idl = compile_stubs(CALC_IDL)
    outcome = {}

    def server(proc):
        srv = server_cls(system, proc, _CalcImpl(), window=window)
        yield from srv.serve_binding(port=5)
        try:
            yield from srv.run(max_calls=8)
            outcome["server"] = "ok"
        except SrpcTimeoutError:
            outcome["server"] = "timeout"

    def client(proc):
        cl = client_cls(system, proc, window=window)
        yield from cl.bind(1, port=5)
        try:
            for base in (0, 4):
                tickets = []
                for i in range(base, base + 4):
                    t = yield from cl.add_begin(i, seed)
                    tickets.append((i, t))
                for i, t in reversed(tickets):
                    r = yield from cl.finish(t)
                    assert r == i + seed, \
                        "reply matched to wrong ticket (%d != %d)" \
                        % (r, i + seed)
            outcome["client"] = "ok"
        except SrpcTimeoutError:
            outcome["client"] = "timeout"

    s = system.spawn(1, server)
    c = system.spawn(0, client)
    system.run_processes([s, c], timeout=WATCHDOG_US)
    return outcome, system


class _CalcImpl:
    """Server-side implementation exercising IN, INOUT, and OUT slots."""

    def add(self, a, b):
        return a + b
        yield  # pragma: no cover

    def touch(self, buf):
        data = yield from buf.get()
        if data.startswith(b"flip"):
            yield from buf.set(data[::-1])

    def greet(self, name):
        return "hello, %s!" % name
        yield  # pragma: no cover

    def fill(self, pattern, seed):
        yield from pattern.set(bytes((seed + i) % 256 for i in range(8)))


def run_srpc_exchange(seed, count=6, horizon_us=3000.0):
    """Four SHRIMP RPC calls (IN/INOUT/string/OUT) under faults."""
    plan = FaultPlan.from_seed(seed, horizon_us=horizon_us, count=count)
    system = make_system(fault_plan=plan)
    client_cls, server_cls, _idl = compile_stubs(CALC_IDL)
    outcome = {}

    def server(proc):
        srv = server_cls(system, proc, _CalcImpl())
        yield from srv.serve_binding(port=5)
        try:
            yield from srv.run(max_calls=4)
            outcome["server"] = "ok"
        except SrpcTimeoutError:
            outcome["server"] = "timeout"

    def client(proc):
        cl = client_cls(system, proc)
        yield from cl.bind(1, port=5)
        try:
            r = yield from cl.add(20, 22)
            assert r == 42, "corrupt int result"
            blob = b"flip" + payload_for(seed, 96)
            r = yield from cl.touch(blob)
            assert r == blob[::-1], "corrupt INOUT result"
            r = yield from cl.greet("shrimp-%d" % seed)
            assert r == "hello, shrimp-%d!" % seed, "corrupt string result"
            r = yield from cl.fill(seed)
            assert r == bytes((seed + i) % 256 for i in range(8)), \
                "corrupt OUT result"
            outcome["client"] = "ok"
        except SrpcTimeoutError:
            outcome["client"] = "timeout"

    s = system.spawn(1, server)
    c = system.spawn(0, client)
    system.run_processes([s, c], timeout=WATCHDOG_US)
    return outcome, system
