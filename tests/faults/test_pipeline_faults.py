"""Pipelined SHRIMP RPC under seeded fault schedules.

Out-of-order reply matching is the property faults stress hardest:
with ``window`` sequence-numbered calls in flight, a dropped call or
reply triggers per-frame retransmission, and a retransmitted call whose
reply was already produced must be answered by *replaying* the logged
reply image — never by re-executing the procedure or by handing one
ticket another ticket's reply.  The harness checks every finished value
against the expected function of its own arguments, so cross-matched
replies fail as corruption rather than passing by luck.
"""

import pytest

from tests.faults import harness

pytestmark = pytest.mark.slow


def _check(outcome, sides):
    assert sorted(outcome) == sorted(sides), "a side exited without outcome"
    assert set(outcome.values()) <= {"ok", "timeout"}


@pytest.mark.parametrize("seed", range(400, 420))
def test_pipelined_calls_complete_or_raise(seed):
    outcome, _system = harness.run_srpc_pipelined_exchange(seed)
    _check(outcome, ["client", "server"])


@pytest.mark.parametrize("seed,window", [(430, 2), (431, 2), (432, 8),
                                         (433, 8), (434, 3), (435, 5)])
def test_pipelined_window_shapes(seed, window):
    outcome, _system = harness.run_srpc_pipelined_exchange(seed,
                                                           window=window)
    _check(outcome, ["client", "server"])


@pytest.mark.parametrize("seed", range(440, 446))
def test_pipelined_dense_fault_schedule(seed):
    """A denser schedule (12 faults over a short horizon) leans on the
    replay path: most calls see at least one retransmission."""
    outcome, _system = harness.run_srpc_pipelined_exchange(
        seed, count=12, horizon_us=1500.0)
    _check(outcome, ["client", "server"])


@pytest.mark.parametrize("seed", [450, 451, 452])
def test_pipelined_same_seed_is_deterministic(seed):
    first, _ = harness.run_srpc_pipelined_exchange(seed)
    second, _ = harness.run_srpc_pipelined_exchange(seed)
    assert first == second
