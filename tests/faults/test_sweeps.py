"""Seeded FaultPlan sweeps across every hardened library.

70 distinct seeds (>= the 50 the acceptance bar asks for), each driving
a full transfer pattern under a different randomized fault schedule.
The harness asserts the recovery contract: intact payload or a typed
timeout, never a hang (run_processes' bounded-sim-time watchdog raises
RuntimeError if a protocol stops making progress) and never silent
corruption (payload equality is checked on every success path).
"""

import pytest

from tests.faults import harness

pytestmark = pytest.mark.slow


def _check(outcome, sides):
    assert sorted(outcome) == sorted(sides), "a side exited without outcome"
    assert set(outcome.values()) <= {"ok", "timeout"}


@pytest.mark.parametrize("variant,seed",
                         [("AU-1copy", s) for s in range(0, 10)]
                         + [("DU-2copy", s) for s in range(10, 20)])
def test_nx_transfer_completes_or_raises(variant, seed):
    outcome, _system = harness.run_nx_exchange(seed, variant=variant)
    _check(outcome, ["rank0", "rank1"])


@pytest.mark.parametrize("variant,seed",
                         [("AU-2copy", s) for s in range(100, 110)]
                         + [("DU-1copy", s) for s in range(110, 120)])
def test_socket_transfer_completes_or_raises(variant, seed):
    outcome, _system = harness.run_socket_exchange(seed, variant=variant)
    _check(outcome, ["client", "server"])


@pytest.mark.parametrize("automatic,seed",
                         [(True, s) for s in range(200, 209)]
                         + [(False, s) for s in range(210, 219)])
def test_vrpc_calls_complete_or_raise(automatic, seed):
    outcome, _system = harness.run_vrpc_exchange(seed, automatic=automatic)
    _check(outcome, ["client", "server"])


@pytest.mark.parametrize("seed", range(300, 312))
def test_srpc_calls_complete_or_raise(seed):
    outcome, _system = harness.run_srpc_exchange(seed)
    _check(outcome, ["client", "server"])
