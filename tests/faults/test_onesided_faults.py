"""Seeded fault sweeps over the one-sided bypass read path.

The bypass's safety argument (docs/ONESIDED.md) is that every hazard a
fault can produce — a corrupted or delayed reply, a dropped request, a
landing-engine stall that leaves a writer mid-seqlock while a read is
in flight — is detected locally by the reader (CRC, version stamps,
bounded completion poll) and resolved by retry or by falling back to
the SRPC path.  No corrupt value may ever reach the application, and
no GET may hang or error: the fallback makes faults a latency event,
not a correctness one.

Every run is audited by the session fixture in tests/conftest.py
(mesh packet/byte conservation, queue drain, arbiter release), so a
leaked grant or stuck packet on the serve path fails here too.
"""

import pytest

from repro.sim.faults import FaultPlan, FaultSite
from repro.workload import WorkloadSpec, run_workload

pytestmark = pytest.mark.slow

SPEC = WorkloadSpec(arrival="open", load=40000.0, concurrency=4,
                    requests=120, keys=64, read_fraction=0.9,
                    onesided_reads=True)


def _run(seed, sites=None, count=10, horizon_us=4000.0):
    from dataclasses import replace
    plan = FaultPlan.from_seed(seed, horizon_us=horizon_us, count=count,
                               sites=sites)
    return run_workload(replace(SPEC, seed=seed), fault_plan=plan)


def _check(report):
    # Faults may slow requests down; they may not lose, error, or
    # corrupt any.  A value that failed its slot CRC (or arrived torn)
    # must have been retried or re-fetched over RPC, invisibly.
    assert report.completed == 120
    assert report.errors == 0
    assert report.corruptions == 0


@pytest.mark.parametrize("seed", range(500, 520))
def test_bypass_reads_survive_mixed_faults(seed):
    """All sites armed: mesh drops/corruption/delay, DMA stalls, DU
    aborts, EISA degradation — the full docs/FAULTS.md menu."""
    _check(_run(seed))


@pytest.mark.parametrize("seed", range(520, 532))
def test_bypass_reads_survive_mesh_corruption_and_delay(seed):
    """Mesh-only faults target the read replies themselves: a flipped
    payload byte must be caught by the slot CRC, a delayed completion
    header by the bounded poll — both land on the retry/fallback path."""
    report = _run(seed, sites=[FaultSite.MESH_LINK], count=12)
    _check(report)


@pytest.mark.parametrize("seed", range(532, 538))
def test_bypass_reads_survive_landing_engine_stalls(seed):
    """NIC landing-engine stalls delay serves and replies both — the
    window where a reader polls against a writer mid-seqlock."""
    report = _run(seed, sites=[FaultSite.NIC_DMA_IN], count=8)
    _check(report)


@pytest.mark.parametrize("seed", [540, 541])
def test_faulted_onesided_run_is_deterministic(seed):
    first = _run(seed).report()
    second = _run(seed).report()
    assert first == second


def test_every_get_is_hit_or_fallback_under_faults():
    """Conservation: each GET either bypass-hits or rides SRPC — under
    faults too, with both counters visible in the report."""
    report = _run(507)
    line = next(l for l in report.report().splitlines()
                if "onesided_hits" in l)
    hits = int(line.split("onesided_hits=")[1].split()[0])
    fallbacks = int(line.split("onesided_fallbacks=")[1].split()[0])
    gets = report.per_op["get"].count
    assert hits + fallbacks == gets
    assert hits > 0  # the bypass actually engaged under faults
