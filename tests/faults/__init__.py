"""Deterministic stress-test harness for the fault-injection subsystem.

Seeded :class:`repro.sim.FaultPlan` sweeps drive every communication
library (NX, sockets, VRPC, SHRIMP RPC) under mesh drops/corruption/
delays, DU aborts, DMA stalls, EISA degradation, and OPT timer
misfires, asserting the recovery contract of docs/FAULTS.md: every
transfer either completes with an intact payload or raises a typed
error — never hangs (bounded-sim-time watchdog) and never delivers
silently corrupted data.
"""
