"""Fault machinery is free when disabled — byte-identical latencies.

Every hardware fault site and every library hardening path is guarded
by a single attribute check (``faults.enabled`` at the sites,
``hardened`` in the protocols).  With no armed plan, a run must
schedule exactly the same events as before the fault subsystem existed,
so the figure benchmarks reproduce the pre-fault goldens *exactly* —
``==`` on floats, not ``approx``.  Any drift here means the fault code
leaked simulated time or reordered events into fault-free runs.
"""

from repro.bench.libraries import (
    nx_pingpong,
    socket_pingpong,
    srpc_inout_rtt,
    vrpc_pingpong,
)
from repro.bench.pingpong import one_word_latency
from repro.sim.faults import FaultPlan
from repro.testbed import make_system


def test_faults_disarmed_by_default():
    system = make_system()
    assert system.faults.enabled is False
    assert system.faults.firing_log() == []


def test_armed_plan_enables_the_sites():
    plan = FaultPlan.from_seed(0, count=2)
    system = make_system(fault_plan=plan)
    assert system.faults.enabled is True


def test_one_word_latency_goldens():
    assert one_word_latency(automatic=True) == 4.745229110512355
    assert one_word_latency(automatic=False) == 7.574172506738478


def test_nx_pingpong_golden():
    assert nx_pingpong("AU-1copy", 64) == 21.25241078167128


def test_socket_pingpong_golden():
    assert socket_pingpong("DU-1copy", 256) == 50.688927223720064


def test_vrpc_pingpong_golden():
    assert vrpc_pingpong(64) == 46.108657681937984


def test_srpc_inout_rtt_golden():
    assert srpc_inout_rtt(16) == 14.444603773583367
