"""Seeded fault sweeps over the overload-control path (docs/OVERLOAD.md).

Overload control adds a second answer a request can get — a typed
rejection — and a second client loop — backoff and retry.  Faults must
not be able to turn either into a silent failure mode: under any
drop/corrupt/delay/stall schedule, every offered request still resolves
as exactly one of completed, errored, or rejected (``KvRejectedError``
surfaces past the retry budget; the engine counts nothing else), no
worker hangs (the run's simulated-time watchdog would raise), the
causal trace still audits clean (span balance, no orphans, no
duplicate deliveries), and no request ever records more ``kv.retry``
spans than its retry budget allows.

Every run is also audited by the session fixture in tests/conftest.py
(mesh packet/byte conservation, queue drain, arbiter release).
"""

from collections import Counter
from dataclasses import replace

import pytest

from repro.obs import assemble_traces, audit
from repro.sim.faults import FaultPlan, FaultSite
from repro.workload import WorkloadSpec, run_workload

REQUESTS = 60
RETRY_BUDGET = 1

SPEC = WorkloadSpec(arrival="open", load=100_000.0, concurrency=4,
                    requests=REQUESTS, keys=64, read_fraction=0.8,
                    cpu_slots=1, cpu_op_us=50.0, slo_latency_us=1000.0,
                    admission=True, admit_queue=4, admit_deadline_us=200.0,
                    retry_budget=RETRY_BUDGET, retry_base_us=50.0,
                    backpressure=True, trace=True)


def _run(seed, sites=None, count=8, horizon_us=3000.0, **over):
    plan = FaultPlan.from_seed(seed, horizon_us=horizon_us, count=count,
                               sites=sites)
    return run_workload(replace(SPEC, seed=seed, **over), fault_plan=plan)


def _retries_per_request(spans):
    """kv.retry spans grouped by trace id — one tree per request."""
    counts = Counter()
    for span in spans:
        if span.category != "kv.retry":
            continue
        assert span.data and "tid" in span.data, \
            "kv.retry span lost its trace id"
        counts[span.data["tid"]] += 1
    return counts


def _check(report, retry_budget=RETRY_BUDGET):
    # Conservation: a faulted, shedding run may slow requests down or
    # reject them, but every offered request resolves exactly once.
    # (A hang would have tripped the run's simulated-time watchdog
    # before we got here.)
    assert report.completed + report.errors + report.rejected == REQUESTS
    assert "rejected: %d of %d offered" % (report.rejected, REQUESTS) \
        in "\n".join(report.overload_lines)
    assert report.corruptions == 0
    # Causal story stays straight: balanced spans, no orphans, no
    # duplicated deliveries, every tree rooted.
    spans = report.spans
    problems = audit(spans)
    assert problems == [], "\n".join(problems)
    trees = assemble_traces(spans)
    for tree in trees.values():
        assert tree.root is not None and not tree.problems
    # Retry budgets are hard ceilings: no request's tree ever records
    # more backoffs than the budget, faults or not.
    for tid, retries in _retries_per_request(spans).items():
        assert retries <= retry_budget, \
            "request %d took %d retries (budget %d)" \
            % (tid, retries, retry_budget)
    return report


@pytest.mark.parametrize("seed", range(700, 706))
def test_overload_survives_mixed_faults(seed):
    """All fault sites armed against a shedding, retrying workload."""
    _check(_run(seed))


@pytest.mark.slow
@pytest.mark.parametrize("seed", range(706, 724))
def test_overload_fault_sweep(seed):
    """The wide sweep: mixed schedules, denser every third seed."""
    count = 16 if seed % 3 == 0 else 8
    _check(_run(seed, count=count))


@pytest.mark.slow
@pytest.mark.parametrize("seed", range(724, 730))
def test_overload_survives_mesh_faults(seed):
    """Mesh-only faults target requests, replies, and replication
    traffic — the paths a shed reply shares with a served one."""
    _check(_run(seed, sites=[FaultSite.MESH_LINK], count=12))


def test_rejections_and_retries_actually_happen_under_faults():
    """The sweep is not vacuous: deep overload under faults produces
    typed rejections AND budgeted retries (some request burns its whole
    budget and still surfaces ``KvRejectedError`` into the tally)."""
    report = _check(_run(733, load=300_000.0, concurrency=12,
                         cpu_op_us=150.0, admit_queue=1,
                         admit_deadline_us=50.0, horizon_us=2000.0))
    assert report.rejected > 0
    assert sum(_retries_per_request(report.spans).values()) > 0


@pytest.mark.slow
def test_faulted_overload_run_is_deterministic():
    first = _check(_run(711)).report()
    second = _check(_run(711)).report()
    assert first == second
