"""Same seed, same machine history — bit for bit.

A fault plan built from a seed must yield the same schedule every time,
and a full faulted run must realize the same firing log, outcomes, and
final simulated time across repeated executions.  This is the property
that makes ``python -m repro faults --seed N`` a reproduction recipe.
"""

from repro.sim.faults import FaultPlan

from tests.faults import harness


def _fingerprint(run, seed, **kw):
    outcome, system = run(seed, **kw)
    return (dict(outcome), system.faults.firing_log(), system.sim.now)


def test_plan_from_seed_is_stable():
    a = FaultPlan.from_seed(11, horizon_us=4000.0, count=8)
    b = FaultPlan.from_seed(11, horizon_us=4000.0, count=8)
    assert a.describe() == b.describe()
    assert [(f.time, f.site, f.kind, f.params) for f in a] \
        == [(f.time, f.site, f.kind, f.params) for f in b]


def test_plans_from_different_seeds_differ():
    assert FaultPlan.from_seed(1).describe() != FaultPlan.from_seed(2).describe()


def test_socket_run_is_reproducible():
    first = _fingerprint(harness.run_socket_exchange, 42, variant="DU-1copy")
    second = _fingerprint(harness.run_socket_exchange, 42, variant="DU-1copy")
    assert first == second
    assert first[1], "expected at least one fault to fire at seed 42"


def test_nx_run_is_reproducible():
    first = _fingerprint(harness.run_nx_exchange, 7, variant="AU-1copy")
    second = _fingerprint(harness.run_nx_exchange, 7, variant="AU-1copy")
    assert first == second
