"""FaultPlan / FaultInjector unit semantics and the CLI entry point."""

import pytest

from repro.__main__ import main
from repro.sim import Simulator
from repro.sim.faults import (
    DEFAULT_SITE_KINDS,
    Fault,
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultSite,
)


def test_from_seed_respects_count_horizon_and_sites():
    plan = FaultPlan.from_seed(9, horizon_us=2000.0, count=12)
    assert len(plan) == 12
    for fault in plan:
        assert 0.0 <= fault.time < 2000.0
        assert fault.site in DEFAULT_SITE_KINDS
        assert fault.kind in DEFAULT_SITE_KINDS[fault.site]


def test_plan_is_sorted_by_time():
    plan = FaultPlan.from_seed(4, count=10)
    times = [f.time for f in plan]
    assert times == sorted(times)


def test_injector_fires_only_at_or_after_schedule():
    sim = Simulator()
    plan = FaultPlan([Fault(time=100.0, site=FaultSite.MESH_LINK,
                            kind=FaultKind.DROP)])
    injector = FaultInjector(sim, plan)
    assert injector.enabled
    assert injector.draw(FaultSite.MESH_LINK) is None  # t=0: not due yet
    sim.schedule_call(150.0, lambda: None)
    sim.run()
    assert injector.draw(FaultSite.NIC_DU) is None  # wrong site
    fault = injector.draw(FaultSite.MESH_LINK)
    assert fault is not None and fault.kind == FaultKind.DROP
    assert injector.draw(FaultSite.MESH_LINK) is None  # one strike only
    assert injector.firing_log() == [(150.0, "mesh.link", "drop")]


def test_node_scoped_fault_matches_only_that_node():
    sim = Simulator()
    plan = FaultPlan([Fault(time=0.0, site=FaultSite.NIC_DU,
                            kind=FaultKind.ABORT, params={"node": 1})])
    injector = FaultInjector(sim, plan)
    assert injector.draw(FaultSite.NIC_DU, node=0) is None
    assert injector.draw(FaultSite.NIC_DU, node=1) is not None


def test_empty_plan_leaves_sites_disabled():
    sim = Simulator()
    injector = FaultInjector(sim, FaultPlan([]))
    assert injector.enabled is False


def test_cli_plan_only_prints_the_schedule(capsys):
    assert main(["faults", "--seed", "3", "--plan-only"]) == 0
    out = capsys.readouterr().out
    assert "fault plan (seed 3): 8 faults" in out


@pytest.mark.slow
def test_cli_runs_workload_and_reports(capsys):
    assert main(["faults", "--seed", "3"]) == 0
    out = capsys.readouterr().out
    assert "fault injector:" in out
    assert "rank 0:" in out and "rank 1:" in out
