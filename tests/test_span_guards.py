"""Hot-path span/metric emission must be guarded — enforced by AST audit.

The disabled-tracing cost contract (docs/OBSERVABILITY.md) is one
attribute load and one branch per site: every ``tracer.begin(...)`` /
``tracer.complete(...)`` call, and every telemetry hook
(``sampler.window.record``, ``recorder.capture``), must sit behind a
cheap guard — an ``if ...enabled:`` / ``if ...traced:`` block, an
early ``if not tracer.enabled: return``, or an ``is not None`` check
on an object that only exists when telemetry is on.  ``tracer.end`` is
exempt (``end(None)`` is a no-op by design).

This test parses the source of every span-emitting module and fails on
any unguarded emission, so a refactor that drops a guard (and silently
taxes the simulation hot path) is caught in CI, not in a profile.
"""

import ast
import pathlib

SRC = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"

#: Attribute names whose calls count as span/metric emission.
EMITTING_ATTRS = {"begin", "complete"}
#: Telemetry hooks: (attribute called, object-chain substring required).
#: ``profiling.tag_root`` mutates the just-closed root span's data dict
#: (workload/engine.py), so it is a hot-path hook like the sampler.
HOOK_ATTRS = {"record": "sampler", "capture": "recorder",
              "tag_root": "profiling"}
#: The tracer module itself and pure span *consumers* are exempt: they
#: are the implementation (or run strictly after the simulation), not
#: call sites on the simulation hot path.
EXEMPT = {"sim/trace.py", "obs/assemble.py", "obs/slo.py",
          "obs/timeseries.py", "obs/profile.py", "obs/diff.py"}


def _chain(node):
    """The dotted-name chain of an expression, lowercased."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return ".".join(reversed(parts)).lower()


def _is_guard_test(test):
    """Whether an ``if`` test establishes the emission guard."""
    for node in ast.walk(test):
        if isinstance(node, ast.Attribute) and node.attr in ("enabled",
                                                            "traced"):
            return True
        if isinstance(node, ast.Name) and node.id == "traced":
            return True
        if isinstance(node, ast.Compare) and any(
                isinstance(op, (ast.Is, ast.IsNot)) for op in node.ops):
            return True
    return False


def _emitting_calls(tree):
    """(call node, enclosing guard-If lines, function) for each emission."""
    found = []

    class Visitor(ast.NodeVisitor):
        def __init__(self):
            self.stack = []

        def visit_If(self, node):
            self.stack.append(node)
            self.generic_visit(node)
            self.stack.pop()

        def visit_FunctionDef(self, node, guards=None):
            prev, self.stack = self.stack, []
            self.functions = getattr(self, "functions", [])
            self.functions.append(node)
            self.generic_visit(node)
            self.functions.pop()
            self.stack = prev

        visit_AsyncFunctionDef = visit_FunctionDef

        def visit_Call(self, node):
            func = node.func
            if isinstance(func, ast.Attribute):
                chain = _chain(func)
                emitting = (func.attr in EMITTING_ATTRS
                            and "tracer" in chain)
                hook_need = HOOK_ATTRS.get(func.attr)
                if hook_need is not None and hook_need in chain:
                    emitting = True
                if emitting:
                    enclosing = (self.functions[-1]
                                 if getattr(self, "functions", []) else None)
                    found.append((node, list(self.stack), enclosing))
            self.generic_visit(node)

    Visitor().visit(tree)
    return found


def find_unguarded(source, filename="<module>"):
    """Every unguarded emission in ``source``, as readable strings."""
    tree = ast.parse(source, filename=filename)
    problems = []
    for call, ifs, func in _emitting_calls(tree):
        if any(_is_guard_test(stmt.test) for stmt in ifs):
            continue  # lexically inside a guarded block
        if func is not None and any(
                isinstance(stmt, ast.If) and _is_guard_test(stmt.test)
                and stmt.lineno <= call.lineno
                for stmt in ast.walk(func)):
            continue  # early-return guard style earlier in the function
        problems.append("%s:%d: unguarded %s emission"
                        % (filename, call.lineno, _chain(call.func)))
    return problems


def _emitting_modules():
    for path in sorted(SRC.rglob("*.py")):
        rel = path.relative_to(SRC).as_posix()
        if rel in EXEMPT:
            continue
        text = path.read_text()
        if (".begin(" in text or ".complete(" in text
                or "sampler.window.record" in text
                or "recorder.capture" in text
                or "profiling.tag_root(" in text):
            yield rel, text


def test_every_hot_path_emission_is_guarded():
    problems = []
    audited = 0
    for rel, text in _emitting_modules():
        audited += 1
        problems.extend(find_unguarded(text, rel))
    assert audited >= 10, "audit lost track of the span-emitting modules"
    assert not problems, "\n".join(problems)


def test_auditor_flags_unguarded_emission():
    bad = (
        "def hot_path(proc):\n"
        "    span = proc.tracer.begin('cat', 'name', track='t')\n"
        "    proc.tracer.end(span)\n"
    )
    assert find_unguarded(bad) == [
        "<module>:2: unguarded proc.tracer.begin emission"]


def test_auditor_flags_unguarded_telemetry_hook():
    bad = (
        "def record(latency):\n"
        "    sampler.window.record(latency)\n"
    )
    assert len(find_unguarded(bad)) == 1


def test_auditor_flags_unguarded_root_tagging():
    bad = (
        "def worker(client, arrival):\n"
        "    profiling.tag_root(client, arrival=arrival)\n"
    )
    assert find_unguarded(bad) == [
        "<module>:2: unguarded profiling.tag_root emission"]


def test_auditor_accepts_guarded_root_tagging():
    # The exact style workload/engine.py uses around its tag_root sites.
    good = (
        "def worker(client, arrival, traced):\n"
        "    if traced:\n"
        "        profiling.tag_root(client, arrival=arrival)\n"
    )
    assert find_unguarded(good) == []


def test_auditor_accepts_the_guard_styles():
    good = (
        "def a(proc):\n"
        "    if proc.tracer.enabled:\n"
        "        proc.tracer.begin('c', 'n', track='t')\n"
        "def b(tracer):\n"
        "    if not tracer.enabled:\n"
        "        return\n"
        "    tracer.complete('c', 'n', 0.0, track='t')\n"
        "def c(sampler, latency):\n"
        "    if sampler is not None:\n"
        "        sampler.window.record(latency)\n"
        "def d(self):\n"
        "    if self.traced:\n"
        "        self.proc.tracer.complete('c', 'n', 0.0, track='t')\n"
    )
    assert find_unguarded(good) == []


# -- lazy log formatting -------------------------------------------------
#
# ``Tracer.log`` %-formats its extra positional args lazily, only when
# the record is actually kept.  A call site that pre-formats — passing
# ``message %% args``, an f-string with placeholders, ``.format(...)``,
# or string concatenation as the message — pays the formatting cost
# even with tracing disabled, exactly the tax the lazy protocol exists
# to avoid (docs/SIMULATOR.md, "Cheap spans when tracing is off").


def _is_eager_message(node):
    """Whether a ``log`` message argument is formatted at call time."""
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Mod,
                                                           ast.Add)):
        return True
    if isinstance(node, ast.JoinedStr):
        return any(isinstance(part, ast.FormattedValue)
                   for part in node.values)
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute) \
            and node.func.attr == "format":
        return True
    return False


def find_eager_log_formatting(source, filename="<module>"):
    """Every ``tracer.log`` call site that formats its message eagerly."""
    tree = ast.parse(source, filename=filename)
    problems = []
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "log"
                and "tracer" in _chain(node.func)):
            continue
        if len(node.args) >= 2 and _is_eager_message(node.args[1]):
            problems.append(
                "%s:%d: eager formatting in tracer.log message — pass "
                "the values as extra args for lazy %%-formatting"
                % (filename, node.lineno))
    return problems


def test_no_eager_formatting_at_log_call_sites():
    problems = []
    audited = 0
    for path in sorted(SRC.rglob("*.py")):
        rel = path.relative_to(SRC).as_posix()
        if rel in EXEMPT:
            continue
        text = path.read_text()
        if "tracer.log(" not in text:
            continue
        audited += 1
        problems.extend(find_eager_log_formatting(text, rel))
    assert audited >= 5, "audit lost track of the tracer.log call sites"
    assert not problems, "\n".join(problems)


def test_auditor_flags_eager_log_formatting():
    bad = (
        "def hot(self, addr):\n"
        "    self.tracer.log('fault', 'fault at %#x' % addr)\n"
        "    self.tracer.log('fault', f'fault at {addr}')\n"
        "    self.tracer.log('fault', 'fault at {}'.format(addr))\n"
        "    self.tracer.log('fault', 'fault at ' + hex(addr))\n"
    )
    assert len(find_eager_log_formatting(bad)) == 4


def test_auditor_accepts_lazy_log_formatting():
    good = (
        "def hot(self, addr):\n"
        "    self.tracer.log('fault', 'fault at %#x', addr)\n"
        "    self.tracer.log('boot', 'static message')\n"
        "    self.tracer.log('boot', f'no placeholders here')\n"
    )
    assert find_eager_log_formatting(good) == []


def test_tracer_end_of_none_stays_exempt():
    # The contract the exemption rests on: end(None) must be a no-op.
    from repro.sim import Simulator, Tracer

    tracer = Tracer(Simulator(), enabled=True)
    tracer.end(None)
    assert tracer.spans == []
