"""Documentation link and CLI-example integrity.

Two structural checks over every Markdown file in the repo root and
``docs/``:

* every intra-repo Markdown link (``[text](path)`` or ``[text](path#anchor)``)
  resolves to a file or directory that exists — external ``http(s)``
  links are out of scope;
* every ``python -m repro ...`` invocation shown in a doc parses
  against the real argument parser, so a renamed flag or subcommand
  cannot strand a stale example.

These run in the docs CI job (.github/workflows/ci.yml) as well as in
the default test suite.
"""

import contextlib
import io
import pathlib
import re
import shlex

import pytest

from repro.__main__ import _build_parser

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

# Process files (the per-PR task sheet and changelog) are not user
# documentation; their prose mentions pseudo-commands on purpose.
_NOT_DOCS = {"ISSUE.md", "CHANGES.md"}

DOC_FILES = sorted(
    path for path in
    list(REPO_ROOT.glob("*.md")) + list((REPO_ROOT / "docs").glob("*.md"))
    if path.name not in _NOT_DOCS)

# [text](target) — excluding images and inline code; reference-style
# links are not used in this repo.
_LINK = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)\)")

# A doc command example: "python -m repro <args...>" up to end of line,
# a pipe, or a redirect.
_CLI = re.compile(r"python -m repro\s+([^\n|>#`]*)")


def _md_id(path):
    return str(path.relative_to(REPO_ROOT))


def _intra_repo_links(text):
    for match in _LINK.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        yield target.split("#", 1)[0]


@pytest.mark.parametrize("doc", DOC_FILES, ids=_md_id)
def test_intra_repo_links_resolve(doc):
    text = doc.read_text()
    broken = []
    for target in _intra_repo_links(text):
        if not target:
            continue  # pure-anchor link into the same file
        resolved = (doc.parent / target).resolve()
        if not resolved.exists():
            broken.append(target)
    assert not broken, "%s has broken links: %s" % (_md_id(doc), broken)


# Bare-uppercase doc placeholders ("--seed N", "--load L") stand in
# for numbers; substitute before parsing.
_PLACEHOLDER = re.compile(r"^[A-Z]+$")


def _example_parses(parser, argv):
    argv = ["1" if _PLACEHOLDER.match(tok) else tok for tok in argv]
    while True:
        try:
            with contextlib.redirect_stderr(io.StringIO()):
                parser.parse_args(argv)
            return True
        except SystemExit:
            # Trailing prose on the same line ("python -m repro scalars
            # prints the table") trims away token by token; a genuinely
            # stale flag or subcommand never parses.
            if argv and not argv[-1].startswith("-"):
                argv = argv[:-1]
            else:
                return False


@pytest.mark.parametrize("doc", DOC_FILES, ids=_md_id)
def test_cli_examples_parse(doc):
    parser = _build_parser()
    failures = []
    for match in _CLI.finditer(doc.read_text()):
        argv = shlex.split(match.group(1).strip())
        if not _example_parses(parser, argv):
            failures.append(match.group(0).strip())
    assert not failures, "%s has stale CLI examples: %s" % (
        _md_id(doc), failures)


def test_architecture_doc_is_linked_everywhere():
    """ARCHITECTURE.md is the map: the README and every other doc in
    docs/ must point a reader at it."""
    arch = REPO_ROOT / "docs" / "ARCHITECTURE.md"
    assert arch.is_file(), "docs/ARCHITECTURE.md is missing"
    readme = (REPO_ROOT / "README.md").read_text()
    assert "docs/ARCHITECTURE.md" in readme
    for doc in sorted((REPO_ROOT / "docs").glob("*.md")):
        if doc.name == "ARCHITECTURE.md":
            continue
        assert "ARCHITECTURE.md" in doc.read_text(), (
            "%s does not link to the architecture map" % _md_id(doc))
