"""Client consistency modes end to end (docs/REPLICATION.md).

One lossy service (bounded replication queue, so a write burst leaves
some replicas stale) observed through each of the three client modes:

* ``eventual`` + read spreading *sees* the staleness — and with read
  repair armed it detects every stale answer by its version dot and
  heals the serving replica off the request path;
* ``session`` pins reads of this client's own keys to the node that
  acked the write, so read-your-writes holds even over stale replicas;
* ``quorum`` (R + W > N) never serves a stale read at all: every read
  quorum intersects the last write's ack set.
"""

import pytest

from repro.apps.kv import KVClient, KVService, ST_MISS, ST_OK
from repro.testbed import make_system

KEYS = ["c/%02d" % i for i in range(20)]


def boot_lossy(**kv_kwargs):
    """A versioned service whose replication queue drops under bursts."""
    system = make_system()
    service = KVService(system, replicas=2, versioned=True,
                        repl_queue_cap=1, **kv_kwargs)
    service.start(srpc_handlers=1)
    return system, service


def drive(system, service, programs, timeout=30_000_000.0):
    handles = [system.spawn(node, program, name="kv-mode-%d" % i)
               for i, (node, program) in enumerate(programs)]
    system.run_processes(handles, timeout=timeout)
    service.shutdown()
    system.run_processes(service.handles, timeout=timeout)
    return [h.value for h in handles]


def write_burst(client):
    """Two writes per key, so each key's final value is round two's."""
    for rnd in range(2):
        for i, key in enumerate(KEYS):
            status = yield from client.put(key, b"r%d-%02d" % (rnd, i))
            assert status == ST_OK


def final_value(key):
    return b"r1-%02d" % KEYS.index(key)


def test_eventual_spread_detects_and_repairs_stale_replicas():
    system, service = boot_lossy()
    seen = {}

    def program(proc):
        client = KVClient(service, proc, transport="srpc",
                          read_spread=True, read_repair=True)
        yield from client.connect()
        yield from write_burst(client)
        # Two spread reads per key visit both replicas; any replica
        # still holding round one's value answers with an older dot
        # than the write ack proved, and gets a repair queued.
        for key in KEYS:
            for _ in range(2):
                yield from client.get(key)
        yield from client.flush_repairs()
        seen["stats"] = client.stats()
        yield from client.shutdown()

    drive(system, service, [(0, program)])
    stats = seen["stats"]
    # The queue bound really dropped records, and the spread reads
    # caught every resulting stale answer and repaired it.
    assert sum(service.repl_drops.values()) > 0
    assert stats["stale_detected"] > 0
    assert stats["repairs"] == stats["stale_detected"]
    # After repair both replicas hold the final round's bytes.
    for key in KEYS:
        for node in service.replicas_for(key):
            assert service.stores[node].data[key] == final_value(key)


def test_session_mode_reads_your_writes_over_stale_replicas():
    system, service = boot_lossy()
    seen = {}

    def program(proc):
        client = KVClient(service, proc, transport="srpc",
                          read_spread=True, consistency="session")
        yield from client.connect()
        yield from write_burst(client)
        wrong = 0
        for key in KEYS:
            for _ in range(2):
                status, value = yield from client.get(key)
                if status != ST_OK or bytes(value) != final_value(key):
                    wrong += 1
        seen["wrong"] = wrong
        seen["stats"] = client.stats()
        yield from client.shutdown()

    drive(system, service, [(0, program)])
    # Replication still dropped records, but the pin means this client
    # never observed them: every read returned its own last write.
    assert sum(service.repl_drops.values()) > 0
    assert seen["wrong"] == 0
    assert seen["stats"]["stale_detected"] == 0


def test_quorum_mode_serves_zero_stale_reads():
    system, service = boot_lossy()
    seen = {}

    def program(proc):
        client = KVClient(service, proc, transport="srpc",
                          consistency="quorum")
        yield from client.connect()
        yield from write_burst(client)
        wrong = 0
        for key in KEYS:
            status, value = yield from client.get(key)
            if status != ST_OK or bytes(value) != final_value(key):
                wrong += 1
        seen["wrong"] = wrong
        seen["stats"] = client.stats()
        yield from client.shutdown()

    drive(system, service, [(0, program)])
    stats = seen["stats"]
    assert seen["wrong"] == 0
    assert stats["quorum_writes"] == 2 * len(KEYS)
    assert stats["quorum_reads"] == len(KEYS)


def test_quorum_delete_wins_and_misses_everywhere():
    system, service = boot_lossy()
    seen = {}

    def program(proc):
        client = KVClient(service, proc, transport="srpc",
                          consistency="quorum")
        yield from client.connect()
        assert (yield from client.put("gone", b"soon")) == ST_OK
        assert (yield from client.delete("gone")) == ST_OK
        status, value = yield from client.get("gone")
        seen["after"] = (status, value)
        yield from client.shutdown()

    drive(system, service, [(0, program)])
    assert seen["after"] == (ST_MISS, None)
    # The tombstone's dot reached the write quorum: no replica still
    # serves the deleted bytes.
    for node in service.replicas_for("gone"):
        assert "gone" not in service.stores[node].data


def test_unknown_consistency_mode_is_rejected():
    system = make_system()
    service = KVService(system, replicas=2, versioned=True)
    service.start(srpc_handlers=1)

    def program(proc):
        with pytest.raises(ValueError):
            KVClient(service, proc, transport="srpc",
                     consistency="linearizable")
        # A well-formed client still works, and retires the handlers.
        client = KVClient(service, proc, transport="srpc")
        yield from client.connect()
        yield from client.shutdown()

    drive(system, service, [(0, program)])
