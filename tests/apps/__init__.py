"""Tests for the in-simulation application layer (repro.apps)."""
