"""Service-level replica-correctness tests (docs/REPLICATION.md).

Three layers of the anti-entropy story, each end to end on a booted
service:

* a bounded replication queue under a write burst drops records
  *visibly* — counted per origin and surfaced through the metrics
  registry — and really does leave replicas divergent (the silent-loss
  bug this subsystem replaced);
* the Merkle anti-entropy sweeper heals exactly that divergence: after
  a drained run every replica pair agrees byte for byte and both twin
  trees show equal roots;
* the torture sweep: a replica crash injected mid-burst on twenty
  different seeds (different key sets, victims, crash windows) must
  always end converged — equal pair digests, equal store contents,
  zero divergent keys in the sweeper's last round.
"""

import random

from repro.apps.kv import KVClient, KVService, ST_OK
from repro.sim.faults import Fault, FaultPlan, FaultKind, FaultSite
from repro.testbed import make_system


def boot(fault_plan=None, **kv_kwargs):
    system = make_system(fault_plan=fault_plan)
    service = KVService(system, **kv_kwargs)
    service.start(srpc_handlers=1)
    return system, service


def drive(system, service, programs, timeout=30_000_000.0):
    handles = [system.spawn(node, program, name="kv-repl-%d" % i)
               for i, (node, program) in enumerate(programs)]
    system.run_processes(handles, timeout=timeout)
    service.shutdown()
    system.run_processes(service.handles, timeout=timeout)
    return [h.value for h in handles]


def make_burst(service, writes):
    """A client program performing ``writes`` (key, value) puts."""

    def program(proc):
        client = KVClient(service, proc, transport="srpc")
        yield from client.connect()
        for key, value in writes:
            status = yield from client.put(key, value)
            assert status == ST_OK
        yield from client.shutdown()

    return program


def divergent_keys(service, keys):
    """Keys whose replicas disagree on the stored bytes."""
    out = []
    for key in keys:
        values = {bytes(service.stores[n].data.get(key) or b"")
                  for n in service.replicas_for(key)}
        if len(values) > 1:
            out.append(key)
    return out


def twin_roots_agree(service):
    """Every pair tree matches its twin on the peer node."""
    return all(service.merkle[a][b].root() == service.merkle[b][a].root()
               for a in service.merkle for b in service.merkle[a])


BURST = [("k%02d" % (i % 20), b"v%02d" % i) for i in range(40)]
BURST_KEYS = sorted({k for k, _ in BURST})


def test_bounded_queue_overflow_drops_visibly_and_diverges():
    """A full replication queue loses records, but never silently:
    the drop is counted per origin and exported as a registry row."""
    system, service = boot(replicas=2, versioned=True, repl_queue_cap=1)
    drive(system, service, [(0, make_burst(service, BURST))])

    drops = sum(service.repl_drops.values())
    assert drops > 0
    # The loss is real: at least one key's replicas now disagree.
    assert divergent_keys(service, BURST_KEYS)
    # And it is visible in the machine metrics registry.
    rows = {row["name"]: row for row in system.machine.metrics.snapshot()}
    assert rows["kv-repl-drops"]["count"] == drops
    assert any(name.startswith("kv-repl-q-") for name in rows)


def test_antientropy_repairs_queue_overflow_drops():
    """The same burst with the sweeper armed ends converged: every
    dropped record is re-shipped and the pair digests agree."""
    system, service = boot(replicas=2, versioned=True, repl_queue_cap=1,
                           antientropy=True, antientropy_interval_us=500.0)
    drive(system, service, [(0, make_burst(service, BURST))])

    assert sum(service.repl_drops.values()) > 0
    ae = service.ae_stats
    assert ae.rounds > 0
    assert ae.repaired > 0
    assert ae.divergent_last == 0
    assert divergent_keys(service, BURST_KEYS) == []
    assert twin_roots_agree(service)
    assert ae.converged_at is not None
    rows = {row["name"]: row for row in system.machine.metrics.snapshot()}
    assert rows["kv-antientropy"]["kind"] == "antientropy"


def test_replica_crash_torture_converges_on_every_seed():
    """Twenty seeded replica-crash schedules, all of which must heal.

    Each seed draws its own key set, write order, victim node, crash
    time, and outage length; the victim's apply loop discards incoming
    replication records for the window (counted, not raised).  After
    the drained run the sweeper must report zero divergence and the
    stores must agree byte for byte — on every seed.
    """
    total_crash_drops = 0
    for seed in range(1, 21):
        rng = random.Random(seed)
        keys = ["t%d/k%02d" % (seed, i) for i in range(rng.randint(12, 24))]
        writes = [(rng.choice(keys), b"s%d-%03d" % (seed, i))
                  for i in range(40)]
        plan = FaultPlan([Fault(
            time=rng.uniform(100.0, 1500.0),
            site=FaultSite.KV_REPLICA,
            kind=FaultKind.CRASH,
            params={"node": rng.randrange(4),
                    "duration_us": rng.uniform(500.0, 4000.0)})])
        system, service = boot(fault_plan=plan, replicas=2, versioned=True,
                               antientropy=True,
                               antientropy_interval_us=500.0)
        drive(system, service, [(0, make_burst(service, writes))])

        total_crash_drops += service.repl_crash_drops
        ae = service.ae_stats
        assert ae.rounds > 0, "seed %d: sweeper never ran" % seed
        assert ae.divergent_last == 0, \
            "seed %d: ended divergent" % seed
        assert divergent_keys(service, sorted({k for k, _ in writes})) \
            == [], "seed %d: stores disagree" % seed
        assert twin_roots_agree(service), \
            "seed %d: pair digests disagree" % seed
        assert ae.sweep_failures == 0, \
            "seed %d: sweep died to faults" % seed
    # The sweep as a whole must actually have exercised the fault:
    # most windows land inside the burst and discard records.
    assert total_crash_drops > 0
