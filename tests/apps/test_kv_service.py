"""End-to-end tests of the sharded KV service: both transports,
replication fan-out over NX, failover under an armed fault plan."""

import pytest

from repro.apps.kv import KVClient, KVService, ST_ERROR, ST_MISS, ST_OK
from repro.sim.faults import FaultPlan
from repro.testbed import make_system


def boot(srpc_handlers=1, socket_handlers=0, fault_plan=None, **kv_kwargs):
    system = make_system(fault_plan=fault_plan)
    service = KVService(system, **kv_kwargs)
    service.start(srpc_handlers=srpc_handlers,
                  socket_handlers=socket_handlers)
    return system, service


def drive(system, service, programs, timeout=30_000_000.0):
    handles = [system.spawn(node, program, name="kv-test-%d" % i)
               for i, (node, program) in enumerate(programs)]
    system.run_processes(handles, timeout=timeout)
    service.shutdown()
    system.run_processes(service.handles, timeout=timeout)
    return [h.value for h in handles]


def test_srpc_put_get_delete_roundtrip():
    system, service = boot()
    seen = {}

    def client_program(proc):
        client = KVClient(service, proc, transport="srpc")
        yield from client.connect()
        status = yield from client.put("alpha", b"value-alpha")
        seen["put"] = status
        status, value = yield from client.get("alpha")
        seen["get"] = (status, bytes(value))
        status, value = yield from client.get("nope")
        seen["miss"] = status
        status = yield from client.delete("alpha")
        seen["delete"] = status
        status, _ = yield from client.get("alpha")
        seen["get_after_delete"] = status
        yield from client.shutdown()

    drive(system, service, [(0, client_program)])
    assert seen["put"] == ST_OK
    assert seen["get"] == (ST_OK, b"value-alpha")
    assert seen["miss"] == ST_MISS
    assert seen["delete"] == ST_OK
    assert seen["get_after_delete"] == ST_MISS


def test_socket_transport_and_scan():
    system, service = boot(srpc_handlers=0, socket_handlers=1)
    service.preload({"pre/%03d" % i: b"v%03d" % i for i in range(12)})
    seen = {}

    def client_program(proc):
        client = KVClient(service, proc, transport="sockets",
                          want_sockets=True)
        yield from client.connect()
        status, value = yield from client.get("pre/004")
        seen["get"] = (status, bytes(value))
        status = yield from client.put("pre/new", b"fresh")
        seen["put"] = status
        status, records = yield from client.scan("pre/", 6)
        seen["scan"] = (status, [k for k, _ in records])
        yield from client.shutdown()

    drive(system, service, [(1, client_program)])
    assert seen["get"] == (ST_OK, b"v004")
    assert seen["put"] == ST_OK
    status, keys = seen["scan"]
    assert status == ST_OK
    # Scatter-gather across replicas must dedupe: sorted, no repeats.
    assert keys == sorted(set(keys)) and len(keys) == 6
    assert keys[0] == "pre/000"


def test_replication_reaches_replicas_and_reduce_totals():
    system, service = boot(replicas=2)

    def client_program(proc):
        client = KVClient(service, proc, transport="srpc")
        yield from client.connect()
        for i in range(6):
            status = yield from client.put("rep/%d" % i, b"payload-%d" % i)
            assert status == ST_OK
        yield from client.shutdown()

    drive(system, service, [(0, client_program)])
    # Every write landed on its full replica set...
    for i in range(6):
        key = "rep/%d" % i
        for node in service.replicas_for(key):
            assert service.stores[node].data[key] == b"payload-%d" % i
    # ...and the shutdown reduce agreed with the per-store counters.
    applied = sum(s.repl_applied for s in service.stores.values())
    assert service.repl_applied_total == applied == 6
    assert service.repl_send_failures == 0
    assert service.map_mismatches == []


def test_concurrent_clients_each_get_a_handler():
    system, service = boot(srpc_handlers=2)
    results = []

    def make_client(cid):
        def client_program(proc):
            client = KVClient(service, proc, transport="srpc", client_id=cid)
            yield from client.connect()
            status = yield from client.put("c%d" % cid, b"x" * (cid + 1))
            results.append(status)
            yield from client.shutdown()

        return client_program

    drive(system, service, [(0, make_client(0)), (2, make_client(1))])
    assert results == [ST_OK, ST_OK]


def test_faulted_run_completes_with_failover():
    """Under an armed fault plan the client's replica walk must finish
    every request — degraded (errors allowed), never hung."""
    plan = FaultPlan.from_seed(11, horizon_us=2000.0, count=10)
    system, service = boot(fault_plan=plan)
    tally = {"done": 0, "errors": 0}

    def client_program(proc):
        client = KVClient(service, proc, transport="srpc")
        yield from client.connect()
        for i in range(12):
            key = "f/%d" % i
            if i % 3 == 0:
                status = yield from client.put(key, b"v%d" % i)
            else:
                status, _ = yield from client.get(key)
            tally["done"] += 1
            if status == ST_ERROR:
                tally["errors"] += 1
        yield from client.shutdown()
        return client.stats()

    stats = drive(system, service, [(0, client_program)],
                  timeout=120_000_000.0)[0]
    assert tally["done"] == 12
    assert system.faults.stats()["fired"] > 0
    # The reduce is skipped under faults (a rank may have died) — the
    # service must record that rather than a bogus total.
    assert service.repl_applied_total is None
    assert stats["failovers"] == tally["errors"] or stats["failovers"] >= 0


def test_service_rejects_sparse_node_sets():
    system = make_system()
    with pytest.raises(ValueError):
        KVService(system, nodes=[0, 2])
