"""Tests for consistent hashing: stability, balance, replica placement."""

from repro.apps.kv.hashing import HashRing, stable_hash


def test_stable_hash_is_interpreter_independent():
    """Hardcoded reference values: the md5-based hash must never move
    between Python releases or processes (unlike builtin hash())."""
    assert stable_hash(b"") == 338333539836370388
    assert stable_hash(b"k000042") == 11520637366607584202
    assert stable_hash(b"shrimp") == 10530301376132449332


def test_ring_placement_is_deterministic():
    a = HashRing([0, 1, 2, 3])
    b = HashRing([0, 1, 2, 3])
    for i in range(200):
        key = "key-%d" % i
        assert a.primary(key) == b.primary(key)
        assert a.replicas(key, 2) == b.replicas(key, 2)


def test_replicas_are_distinct_and_primary_first():
    ring = HashRing([0, 1, 2, 3])
    for i in range(100):
        key = "k%06d" % i
        reps = ring.replicas(key, 3)
        assert len(reps) == len(set(reps)) == 3
        assert reps[0] == ring.primary(key)


def test_replica_count_clamped_to_ring_size():
    ring = HashRing([0, 1])
    reps = ring.replicas("anything", 5)
    assert sorted(reps) == [0, 1]


def test_load_is_roughly_balanced():
    ring = HashRing([0, 1, 2, 3], vnodes=64)
    counts = ring.load_map(["k%06d" % i for i in range(2000)])
    assert set(counts) == {0, 1, 2, 3}
    for node, count in counts.items():
        # vnode hashing is not perfect, but no node should be starved
        # or own the majority of a 2000-key space.
        assert 200 < count < 1000, (node, count)


def test_single_node_ring_owns_everything():
    ring = HashRing([7], vnodes=16)
    assert ring.primary("x") == 7
    assert ring.replicas("x", 2) == [7]
