"""Integration: the 16-node expansion the paper's conclusion plans.

'We also plan to expand the system to 16 nodes.'  The model scales by
configuration; these tests check the communication layers behave on the
4x4 mesh and that distance costs what the mesh geometry says it should.
"""

import pytest

from repro.hardware.config import MachineConfig
from repro.libs.nx import ANY_TYPE, VARIANTS, nx_world
from repro.testbed import Rendezvous, make_system
from repro.vmmc import attach

PAGE = 4096


def test_vmmc_latency_grows_with_hop_count():
    """On the 4x4 mesh, corner-to-corner (6 hops) costs more than
    neighbour-to-neighbour (1 hop), by roughly the per-hop latency."""
    def one_way(node_a, node_b):
        system = make_system(MachineConfig.sixteen_node())
        rdv = Rendezvous(system)
        timing = {}

        def receiver(proc):
            ep = attach(system, proc)
            buf = yield from ep.export_new(PAGE)
            rdv.put("x", (proc.node.node_id, buf.export_id))
            yield from proc.poll(buf.vaddr, 4, lambda b: b == b"ping")
            timing["end"] = proc.sim.now

        def sender(proc):
            ep = attach(system, proc)
            node, xid = yield rdv.get("x")
            imported = yield from ep.import_buffer(node, xid)
            src = ep.alloc_buffer(PAGE)
            yield from proc.write(src, b"ping")
            timing["start"] = proc.sim.now
            yield from ep.send(imported, src, 4)

        r = system.spawn(node_b, receiver)
        s = system.spawn(node_a, sender)
        system.run_processes([r, s])
        hops = system.machine.mesh.hops(node_a, node_b)
        return timing["end"] - timing["start"], hops

    near, near_hops = one_way(0, 1)     # adjacent
    far, far_hops = one_way(0, 15)      # opposite corner
    assert near_hops == 1 and far_hops == 6
    assert far > near
    config = MachineConfig.sixteen_node()
    extra = far - near
    expected = (far_hops - near_hops) * config.router_hop_latency
    assert extra == pytest.approx(expected, rel=0.5)


def test_nx_all_to_root_on_sixteen_nodes():
    """Fifteen ranks send to rank 0; everything arrives, correctly typed."""
    system = make_system(MachineConfig.sixteen_node())

    def root(nx):
        dst = nx.proc.space.mmap(PAGE)
        seen = {}
        for _ in range(15):
            yield from nx.crecv(ANY_TYPE, dst, PAGE)
            seen[nx.infonode()] = (nx.infotype(), nx.proc.peek(dst, 2))
        return seen

    def leaf(nx):
        src = nx.proc.space.mmap(PAGE)
        nx.proc.poke(src, bytes([nx.mynode(), 0xAB]))
        yield from nx.csend(nx.mynode() * 10, src, 2, to=0)

    programs = [root] + [leaf] * 15
    handles = nx_world(system, programs, variant=VARIANTS["AU-1copy"])
    system.run_processes(handles)
    seen = handles[0].value
    assert sorted(seen) == list(range(1, 16))
    for rank, (mtype, payload) in seen.items():
        assert mtype == rank * 10
        assert payload == bytes([rank, 0xAB])


def test_nx_ring_pass_sixteen_nodes():
    """A token circulates the full ring once; order and integrity hold."""
    system = make_system(MachineConfig.sixteen_node())

    def rank(nx):
        me, size = nx.mynode(), nx.numnodes()
        buf = nx.proc.space.mmap(PAGE)
        if me == 0:
            nx.proc.poke(buf, b"\x01")
            yield from nx.csend(1, buf, 1, to=1)
            yield from nx.crecv(1, buf, PAGE)
            return nx.proc.peek(buf, 1)[0]
        yield from nx.crecv(1, buf, PAGE)
        value = nx.proc.peek(buf, 1)[0]
        nx.proc.poke(buf, bytes([value + 1]))
        yield from nx.csend(1, buf, 1, to=(me + 1) % size)
        return value

    handles = nx_world(system, [rank] * 16, variant=VARIANTS["DU-1copy"])
    system.run_processes(handles)
    values = [h.value for h in handles]
    # Rank k saw the token as k; rank 0 got it back incremented 15 times.
    assert values[0] == 16
    assert values[1:] == list(range(1, 16))
