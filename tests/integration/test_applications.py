"""Application-level integration: small parallel programs over NX.

The paper's conclusion: 'We plan to study the performance of real
applications in the near future.'  These are that study's functional
half — complete parallel algorithms whose correctness exercises typed
messaging, collectives, and large transfers together.
"""

import random
import struct

from repro.libs.nx import VARIANTS, nx_world
from repro.libs.nx.globals import gcol, gdsum, gihigh
from repro.testbed import make_system

PAGE = 4096


def pack_doubles(values):
    return struct.pack("<%dd" % len(values), *values)


def unpack_doubles(raw, n):
    return list(struct.unpack("<%dd" % n, raw[: 8 * n]))


def test_block_matrix_vector_multiply():
    """y = A·x with A row-partitioned over 4 ranks; x broadcast via
    gcol, partial results gathered back."""
    n = 16
    rng = random.Random(3)
    matrix = [[rng.uniform(-1, 1) for _ in range(n)] for _ in range(n)]
    vector = [rng.uniform(-1, 1) for _ in range(n)]
    expected = [sum(matrix[i][j] * vector[j] for j in range(n)) for i in range(n)]
    rows_per = n // 4

    def program(nx):
        me = nx.mynode()
        proc = nx.proc
        # Everyone contributes its slice of x; gcol rebuilds the whole x.
        xbuf = proc.space.mmap(PAGE)
        my_x = vector[me * (n // 4) : (me + 1) * (n // 4)]
        proc.poke(xbuf, pack_doubles(my_x))
        whole = yield from gcol(nx, xbuf, 8 * (n // 4))
        x = unpack_doubles(whole, n)
        # Local rows.
        my_rows = matrix[me * rows_per : (me + 1) * rows_per]
        partial = [sum(row[j] * x[j] for j in range(n)) for row in my_rows]
        ybuf = proc.space.mmap(PAGE)
        proc.poke(ybuf, pack_doubles(partial))
        gathered = yield from gcol(nx, ybuf, 8 * rows_per)
        return unpack_doubles(gathered, n)

    system = make_system()
    handles = nx_world(system, [program] * 4, variant=VARIANTS["AU-1copy"])
    system.run_processes(handles)
    for handle in handles:
        got = handle.value
        assert all(abs(a - b) < 1e-9 for a, b in zip(got, expected))


def test_odd_even_transposition_sort():
    """Distributed sort: each rank holds a block; neighbours exchange
    and split for numnodes rounds.  Classic multicomputer kernel."""
    per_rank = 12
    rng = random.Random(9)
    blocks = [[rng.randrange(10000) for _ in range(per_rank)] for _ in range(4)]
    flat_sorted = sorted(v for block in blocks for v in block)

    def program(nx):
        me, size = nx.mynode(), nx.numnodes()
        proc = nx.proc
        mine = sorted(blocks[me])
        send_buf = proc.space.mmap(PAGE)
        recv_buf = proc.space.mmap(PAGE)
        nbytes = 8 * per_rank

        def exchange(peer, keep_low, mtype):
            # Type encodes the round: a fast pair's next-round message
            # must not match a slow rank's current-round receive (crecv
            # selects by type, not source).
            proc.poke(send_buf, struct.pack("<%dq" % per_rank, *mine))
            if me < peer:
                yield from nx.csend(mtype, send_buf, nbytes, to=peer)
                yield from nx.crecv(mtype, recv_buf, PAGE)
            else:
                yield from nx.crecv(mtype, recv_buf, PAGE)
                yield from nx.csend(mtype, send_buf, nbytes, to=peer)
            theirs = list(struct.unpack("<%dq" % per_rank, proc.peek(recv_buf, nbytes)))
            merged = sorted(mine + theirs)
            return merged[:per_rank] if keep_low else merged[per_rank:]

        for round_number in range(size):
            if round_number % 2 == 0:
                partner = me + 1 if me % 2 == 0 else me - 1
            else:
                partner = me + 1 if me % 2 == 1 else me - 1
            if 0 <= partner < size:
                mine = yield from exchange(partner, keep_low=(me < partner),
                                           mtype=100 + round_number)
        return mine

    system = make_system()
    handles = nx_world(system, [program] * 4, variant=VARIANTS["DU-1copy"])
    system.run_processes(handles)
    result = [v for handle in handles for v in handle.value]
    assert result == flat_sorted


def test_monte_carlo_pi_with_global_sum():
    """Embarrassingly parallel + one reduction: each rank samples, a
    gdsum combines, every rank gets the same estimate."""
    samples_per_rank = 2000

    def program(nx):
        rng = random.Random(100 + nx.mynode())
        hits = sum(
            1
            for _ in range(samples_per_rank)
            if rng.random() ** 2 + rng.random() ** 2 <= 1.0
        )
        totals = yield from gdsum(nx, [float(hits), float(samples_per_rank)])
        return 4.0 * totals[0] / totals[1]

    system = make_system()
    handles = nx_world(system, [program] * 4, variant=VARIANTS["AU-1copy"])
    system.run_processes(handles)
    estimates = [h.value for h in handles]
    assert len(set(estimates)) == 1          # everyone agrees
    assert abs(estimates[0] - 3.14159) < 0.1  # and it's roughly pi


def test_global_max_search():
    """Each rank scans a slice for the max of a function; gihigh picks
    the winner everywhere."""
    def f(x):
        return -(x - 777) * (x - 777)

    def program(nx):
        me, size = nx.mynode(), nx.numnodes()
        lo = me * 1000 // size
        hi = (me + 1) * 1000 // size
        local_best = max(f(x) for x in range(lo, hi))
        best = yield from gihigh(nx, [local_best])
        return best[0]

    system = make_system()
    handles = nx_world(system, [program] * 4, variant=VARIANTS["AU-1copy"])
    system.run_processes(handles)
    assert all(h.value == f(777) for h in handles)
