"""Section 6's quantitative claims, verified against the model.

The discussion section makes measurable statements about how the
libraries behave — packets per message, interrupt counts, burst
behaviour.  These tests pin them.
"""

import pytest

from repro.libs.nx import VARIANTS, nx_world
from repro.libs.sockets import SOCKET_VARIANTS, SocketLib
from repro.testbed import make_system

PAGE = 4096


def test_nx_message_is_two_data_transfers_and_no_interrupt():
    """'Transmitting a user message requires several data transfers
    (two for sockets and NX)... Typically, our libraries can avoid
    interrupts altogether.'  One small NX message = the payload packet
    plus the descriptor packet, and zero interrupts."""
    system = make_system()

    def sender(nx):
        src = nx.proc.space.mmap(PAGE)
        yield from nx.gsync()
        yield nx.proc.sim.timeout(100.0)  # let barrier traffic fully flush
        before = nx.proc.node.nic.packetizer.packets_formed
        yield from nx.csend(1, src, 64, to=1)
        yield nx.proc.sim.timeout(50.0)  # let the combining timer flush
        return nx.proc.node.nic.packetizer.packets_formed - before

    def receiver(nx):
        dst = nx.proc.space.mmap(PAGE)
        yield from nx.gsync()
        yield from nx.crecv(1, dst, PAGE)

    handles = nx_world(system, [sender, receiver], variant=VARIANTS["AU-1copy"])
    system.run_processes(handles)
    assert handles[0].value == 2  # payload + descriptor
    # Zero notification interrupts anywhere.
    for proc_signals in (0, 1):
        pass
    for node in system.machine.nodes:
        assert node.nic.stats()["receive_faults"] == 0


def test_socket_message_is_two_transfers():
    """One socket send = the record packet(s) plus the produced-counter
    packet."""
    system = make_system()
    counts = {}

    def server(proc):
        lib = SocketLib(system, proc, variant=SOCKET_VARIANTS["AU-2copy"])
        sock = yield from lib.listen(5).accept()
        buf = proc.space.mmap(PAGE)
        yield from sock.recv_exactly(buf, 64)

    def client(proc):
        lib = SocketLib(system, proc, variant=SOCKET_VARIANTS["AU-2copy"])
        sock = yield from lib.connect(1, 5)
        src = proc.space.mmap(PAGE)
        before = proc.node.nic.packetizer.packets_formed
        yield from sock.send(src, 64)
        yield proc.sim.timeout(50.0)
        counts["packets"] = proc.node.nic.packetizer.packets_formed - before

    s = system.spawn(1, server)
    c = system.spawn(0, client)
    system.run_processes([s, c])
    # Header+payload combine into one stream; the counter is separate.
    assert counts["packets"] == 2


def test_sender_bursts_without_receiver_action():
    """'A sender can transmit several messages without any action from
    the receiver' — up to the packet-buffer count, no credits needed."""
    system = make_system()
    slots = 8

    def sender(nx):
        src = nx.proc.space.mmap(PAGE)
        start = nx.proc.sim.now
        for i in range(slots):  # exactly the credit supply
            yield from nx.csend(1, src, 32, to=1)
        return nx.proc.sim.now - start

    def receiver(nx):
        # Sleep through the whole burst, then drain.
        yield from nx.proc.compute(5000.0)
        dst = nx.proc.space.mmap(PAGE)
        for _ in range(slots):
            yield from nx.crecv(1, dst, PAGE)

    handles = nx_world(system, [sender, receiver],
                       variant=VARIANTS["AU-1copy"], slots=slots)
    system.run_processes(handles)
    # The whole burst completed while the receiver slept (well before
    # its 5000 us wake-up): no receiver action was needed.
    assert handles[0].value < 1000.0


def test_burst_drain_needs_less_than_one_control_transfer_per_message():
    """'When this happens [burst processing], there is less than one
    control transfer per message' — the receiver's credits are the
    control transfers; batch consumption writes one credit per message
    but the sender reads them lazily, and no buffer-request interrupt
    fires."""
    system = make_system()

    def sender(nx):
        src = nx.proc.space.mmap(PAGE)
        for i in range(4):
            yield from nx.csend(1, src, 32, to=1)
        yield from nx.crecv(2, src, PAGE)  # wait for the ack
        return nx.connections[1].buffer_requests_seen

    def receiver(nx):
        yield from nx.proc.compute(2000.0)
        dst = nx.proc.space.mmap(PAGE)
        for _ in range(4):
            yield from nx.crecv(1, dst, PAGE)
        yield from nx.csend(2, dst, 4, to=0)
        return nx.connections[0].buffer_requests_seen

    handles = nx_world(system, [sender, receiver], variant=VARIANTS["AU-1copy"])
    system.run_processes(handles)
    assert handles[0].value == 0
    assert handles[1].value == 0


def test_pingpong_generates_zero_interrupts():
    """A full NX ping-pong run: no notifications, no faults, anywhere."""
    system = make_system()

    def make(initiator):
        def program(nx):
            src = nx.proc.space.mmap(PAGE)
            dst = nx.proc.space.mmap(PAGE)
            for _ in range(10):
                if initiator:
                    yield from nx.csend(1, src, 256, to=1)
                    yield from nx.crecv(1, dst, PAGE)
                else:
                    yield from nx.crecv(1, dst, PAGE)
                    yield from nx.csend(1, src, 256, to=0)
            return nx.proc.signals.delivered_count + len(nx.proc.signals.pending)

        return program

    handles = nx_world(system, [make(True), make(False)],
                       variant=VARIANTS["DU-1copy"])
    system.run_processes(handles)
    assert [h.value for h in handles] == [0, 0]
