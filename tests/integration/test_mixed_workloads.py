"""Integration: different libraries sharing one machine at once.

The prototype ran all of these libraries over the same NICs, daemons,
and backplane; these tests check they coexist — mappings don't collide,
per-pair ordering survives cross-traffic, and every byte arrives intact.
"""

import pytest

from repro.libs.nx import VARIANTS, NXProcess
from repro.libs.rpc import VrpcServer, clnt_create
from repro.libs.sockets import SOCKET_VARIANTS, SocketLib
from repro.testbed import Rendezvous, make_system
from repro.vmmc import attach

PAGE = 4096


def test_nx_and_sockets_share_the_machine():
    """NX between nodes 0-1 and a socket stream between nodes 2-3,
    running concurrently over the same mesh."""
    system = make_system()
    rdv = Rendezvous(system)
    results = {}

    def nx_rank(rank, peer):
        def program(proc):
            nx = NXProcess(system, proc, rank, 2, rdv, VARIANTS["AU-1copy"])
            yield from nx.init()
            src = proc.space.mmap(PAGE)
            dst = proc.space.mmap(PAGE)
            proc.poke(src, b"nx-%d" % rank + b"!" * 60)
            for _ in range(10):
                if rank == 0:
                    yield from nx.csend(1, src, 64, to=peer)
                    yield from nx.crecv(1, dst, PAGE)
                else:
                    yield from nx.crecv(1, dst, PAGE)
                    yield from nx.csend(1, src, 64, to=peer)
            results["nx-%d" % rank] = proc.peek(dst, 5)

        return program

    def socket_server(proc):
        lib = SocketLib(system, proc, variant=SOCKET_VARIANTS["DU-1copy"])
        sock = yield from lib.listen(7).accept()
        buf = proc.space.mmap(PAGE)
        total = 0
        while True:
            got = yield from sock.recv(buf, PAGE)
            if got == 0:
                break
            total += got
        results["socket-bytes"] = total

    def socket_client(proc):
        lib = SocketLib(system, proc, variant=SOCKET_VARIANTS["DU-1copy"])
        sock = yield from lib.connect(3, 7)
        src = proc.space.mmap(PAGE)
        for _ in range(20):
            yield from sock.send(src, 1500)
        yield from sock.close()

    handles = [
        system.spawn(0, nx_rank(0, 1)),
        system.spawn(1, nx_rank(1, 0)),
        system.spawn(3, socket_server),
        system.spawn(2, socket_client),
    ]
    system.run_processes(handles)
    assert results["nx-0"] == b"nx-1!"
    assert results["nx-1"] == b"nx-0!"
    assert results["socket-bytes"] == 20 * 1500


def test_rpc_server_shares_node_with_nx_rank():
    """Node 1 hosts both an NX rank and a VRPC server (two processes on
    one node, two sets of mappings through one NIC)."""
    system = make_system()
    rdv = Rendezvous(system)
    results = {}
    PROG = 0x777

    def nx_rank(rank, peer):
        def program(proc):
            nx = NXProcess(system, proc, rank, 2, rdv, VARIANTS["DU-1copy"])
            yield from nx.init()
            src = proc.space.mmap(PAGE)
            dst = proc.space.mmap(PAGE)
            proc.poke(src, bytes([rank]) * 32)
            for _ in range(5):
                if rank == 0:
                    yield from nx.csend(9, src, 32, to=peer)
                    yield from nx.crecv(9, dst, PAGE)
                else:
                    yield from nx.crecv(9, dst, PAGE)
                    yield from nx.csend(9, src, 32, to=peer)
            results["nx-%d" % rank] = proc.peek(dst, 1)

        return program

    def rpc_server(proc):
        srv = VrpcServer(system, proc, PROG, 1)
        srv.register(1, lambda n: n * 3,
                     decode_args=lambda dec: dec.unpack_int(),
                     encode_result=lambda enc, v: enc.pack_int(v))
        yield from srv.accept_binding()
        yield from srv.svc_run(max_calls=5)

    def rpc_client(proc):
        handle = yield from clnt_create(system, proc, 1, PROG, 1)
        values = []
        for n in range(5):
            v = yield from handle.call(
                1, n,
                encode_args=lambda enc, v: enc.pack_int(v),
                decode_result=lambda dec: dec.unpack_int(),
            )
            values.append(v)
        results["rpc"] = values

    handles = [
        system.spawn(0, nx_rank(0, 1)),
        system.spawn(1, nx_rank(1, 0)),
        system.spawn(1, rpc_server),   # second process on node 1
        system.spawn(2, rpc_client),
    ]
    system.run_processes(handles)
    assert results["rpc"] == [0, 3, 6, 9, 12]
    assert results["nx-0"] == bytes([1])
    assert results["nx-1"] == bytes([0])


def test_many_mappings_on_one_nic():
    """One process exports/imports dozens of buffers; ids and OPT proxy
    regions must never collide."""
    system = make_system()
    rdv = Rendezvous(system)

    def exporter(proc):
        ep = attach(system, proc)
        ids = []
        for i in range(24):
            buf = yield from ep.export_new(PAGE)
            ids.append(buf.export_id)
        rdv.put("ids", (proc.node.node_id, ids))
        assert len(set(ids)) == 24

    def importer(proc):
        ep = attach(system, proc)
        node, ids = yield rdv.get("ids")
        imports = []
        for export_id in ids:
            imported = yield from ep.import_buffer(node, export_id)
            imports.append(imported)
        bases = [imp.opt_base for imp in imports]
        assert len(set(bases)) == 24
        # Send to each one; each must land in its own buffer.
        src = ep.alloc_buffer(PAGE)
        for index, imported in enumerate(imports):
            proc.poke(src, bytes([index + 1]) * 8)
            yield from ep.send(imported, src, 8)
        return len(imports)

    e = system.spawn(1, exporter)
    i = system.spawn(0, importer)
    system.run_processes([e, i])
    assert i.value == 24


def test_all_four_nodes_talk_pairwise_simultaneously():
    """Six socket connections — every node pair — all streaming at once."""
    system = make_system()
    pairs = [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]
    received = {}

    handles = []
    for port, (a, b) in enumerate(pairs, start=100):
        def server(proc, port=port, a=a, b=b):
            lib = SocketLib(system, proc)
            sock = yield from lib.listen(port).accept()
            buf = proc.space.mmap(PAGE)
            got = yield from sock.recv_exactly(buf, 2048)
            received[(a, b)] = proc.peek(buf, 8)

        def client(proc, port=port, a=a, b=b):
            lib = SocketLib(system, proc)
            sock = yield from lib.connect(b, port)
            src = proc.space.mmap(PAGE)
            proc.poke(src, bytes([a * 16 + b]) * 8)
            yield from sock.send(src, 2048)
            yield from sock.close()

        handles.append(system.spawn(b, server))
        handles.append(system.spawn(a, client))
    system.run_processes(handles)
    for a, b in pairs:
        assert received[(a, b)] == bytes([a * 16 + b]) * 8
