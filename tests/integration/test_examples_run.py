"""Every shipped example must run clean — examples are API contracts."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parents[2] / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs_clean(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), "examples must narrate what they do"


def test_all_expected_examples_present():
    names = {p.name for p in EXAMPLES}
    assert {
        "quickstart.py",
        "nx_stencil.py",
        "rpc_keyvalue.py",
        "sockets_streaming.py",
        "shrimp_rpc_demo.py",
        "shared_memory.py",
    } <= names
