"""Integration: the protection story end to end.

VMMC's safety argument: a trusted third party establishes mappings, the
MMU bounds what a sender can read, and the IPT bounds what incoming
transfers can write.  These tests drive actual violations through the
full stack and check containment.
"""

import pytest

from repro.kernel import MappingError, ProtectionFault
from repro.testbed import Rendezvous, make_system
from repro.vmmc import attach

PAGE = 4096


def test_stale_sender_after_unexport_cannot_write():
    """The receiver unexports; a packet sent through a forged/stale path
    freezes the receive datapath, the kernel discards it, and the old
    buffer memory is never touched."""
    system = make_system()
    rdv = Rendezvous(system)

    def receiver(proc):
        ep = attach(system, proc)
        buf = yield from ep.export_new(PAGE)
        rdv.put("x", (proc.node.node_id, buf.export_id, buf.vaddr))
        yield rdv.get("imported")
        yield from ep.unexport(buf)
        rdv.put("unexported", True)
        # Wait long enough for any stale packet to have been handled.
        yield proc.sim.timeout(3000.0)
        return proc.peek(buf.vaddr, 8)

    def sender(proc):
        ep = attach(system, proc)
        node, xid, _vaddr = yield rdv.get("x")
        imported = yield from ep.import_buffer(node, xid)
        rdv.put("imported", True)
        yield rdv.get("unexported")
        # The import-side OPT entries still exist (no revocation message
        # raced back yet): the send initiates, the packet reaches the
        # receiver, and the IPT check stops it cold.
        src = ep.alloc_buffer(PAGE)
        yield from proc.write(src, b"ATTACK!!")
        yield from ep.send(imported, src, 8)
        yield proc.sim.timeout(2000.0)

    r = system.spawn(1, receiver)
    s = system.spawn(0, sender)
    system.run_processes([r, s])
    assert r.value == b"\x00" * 8  # nothing landed
    stats = system.machine.node(1).nic.stats()
    assert stats["receive_faults"] >= 1
    assert system.machine.node(1).nic.incoming.packets_discarded >= 1
    assert len(system.kernels[1].faults) >= 1


def test_receive_path_recovers_after_fault():
    """Traffic for a *valid* mapping still flows after a stale packet
    froze and was discarded — the freeze is not a wedge."""
    system = make_system()
    rdv = Rendezvous(system)

    def receiver(proc):
        ep = attach(system, proc)
        doomed = yield from ep.export_new(PAGE)
        good = yield from ep.export_new(PAGE)
        rdv.put("x", (proc.node.node_id, doomed.export_id, good.export_id))
        yield rdv.get("ready")
        yield from ep.unexport(doomed)
        rdv.put("unexported", True)
        data = yield from proc.poll(good.vaddr, 8, lambda b: b == b"stillok!")
        return data

    def sender(proc):
        ep = attach(system, proc)
        node, doomed_id, good_id = yield rdv.get("x")
        imp_doomed = yield from ep.import_buffer(node, doomed_id)
        imp_good = yield from ep.import_buffer(node, good_id)
        rdv.put("ready", True)
        yield rdv.get("unexported")
        src = ep.alloc_buffer(PAGE)
        yield from proc.write(src, b"badpacket")
        yield from ep.send(imp_doomed, src, 8)        # will fault+discard
        yield from proc.write(src, b"stillok!")
        yield from ep.send(imp_good, src, 8)          # must still arrive

    r = system.spawn(1, receiver)
    s = system.spawn(0, sender)
    system.run_processes([r, s])
    assert r.value == b"stillok!"


def test_import_cannot_widen_beyond_export():
    """Sends are bounds-checked against the imported buffer size; the
    bytes after the exported region stay untouched."""
    system = make_system()
    rdv = Rendezvous(system)

    def receiver(proc):
        ep = attach(system, proc)
        region = ep.alloc_buffer(2 * PAGE)
        buf = yield from ep.export(region, PAGE)      # export only page 1
        rdv.put("x", (proc.node.node_id, buf.export_id, region))
        yield proc.sim.timeout(4000.0)
        return proc.peek(region + PAGE, 8)            # the unexported page

    def sender(proc):
        ep = attach(system, proc)
        node, xid, _region = yield rdv.get("x")
        imported = yield from ep.import_buffer(node, xid)
        src = ep.alloc_buffer(2 * PAGE)
        with pytest.raises(ValueError):
            # Past the end of the import: refused at the API.
            yield from ep.send(imported, src, 8, offset=PAGE)
        with pytest.raises(ValueError):
            yield from ep.send(imported, src, 2 * PAGE)

    r = system.spawn(1, receiver)
    s = system.spawn(0, sender)
    system.run_processes([r, s])
    assert r.value == b"\x00" * 8


def test_sender_cannot_read_unmapped_source():
    """The MMU stops a deliberate update whose source range is bogus."""
    system = make_system()
    rdv = Rendezvous(system)

    def receiver(proc):
        ep = attach(system, proc)
        buf = yield from ep.export_new(PAGE)
        rdv.put("x", (proc.node.node_id, buf.export_id))

    def sender(proc):
        ep = attach(system, proc)
        node, xid = yield rdv.get("x")
        imported = yield from ep.import_buffer(node, xid)
        with pytest.raises(ProtectionFault):
            yield from ep.send(imported, 0x4000, 64)  # never mapped

    r = system.spawn(1, receiver)
    s = system.spawn(0, sender)
    system.run_processes([r, s])


def test_export_permissions_enforced_across_the_network():
    system = make_system()
    rdv = Rendezvous(system)

    def receiver(proc):
        ep = attach(system, proc)
        vaddr = ep.alloc_buffer(PAGE)
        buf = yield from ep.export(vaddr, PAGE, allow_nodes={2})
        rdv.put("x", (proc.node.node_id, buf.export_id))

    def denied(proc):
        ep = attach(system, proc)
        node, xid = yield rdv.get("x")
        with pytest.raises(MappingError):
            yield from ep.import_buffer(node, xid)
        return "denied"

    def allowed(proc):
        ep = attach(system, proc)
        node, xid = yield rdv.get("x")
        imported = yield from ep.import_buffer(node, xid)
        return imported.nbytes

    r = system.spawn(1, receiver)
    d = system.spawn(0, denied)
    a = system.spawn(2, allowed)
    system.run_processes([r, d, a])
    assert d.value == "denied"
    assert a.value == PAGE
