"""Randomized (seeded, deterministic) stress workloads across libraries."""

import random
import struct

from repro.libs.nx import ANY_TYPE, VARIANTS, nx_world
from repro.libs.sockets import SOCKET_VARIANTS, SocketLib
from repro.testbed import make_system

PAGE = 4096


def test_nx_random_sizes_and_types_integrity():
    """200 messages of random size (spanning both protocols), random
    type, interleaved small/large; receiver checks every byte."""
    rng = random.Random(1996)
    plan = [
        (rng.choice([1, 2, 3]), rng.randint(1, 6000), rng.randint(0, 255))
        for _ in range(60)
    ]
    system = make_system()

    def sender(nx):
        src = nx.proc.space.mmap(2 * PAGE)
        for mtype, size, fill in plan:
            nx.proc.poke(src, bytes((fill + i) % 256 for i in range(size)))
            yield from nx.csend(mtype, src, size, to=1)

    def receiver(nx):
        dst = nx.proc.space.mmap(2 * PAGE)
        failures = []
        for index, (mtype, size, fill) in enumerate(plan):
            got = yield from nx.crecv(ANY_TYPE, dst, 2 * PAGE)
            if got != size or nx.infotype() != mtype:
                failures.append(index)
                continue
            expected = bytes((fill + i) % 256 for i in range(size))
            if nx.proc.peek(dst, size) != expected:
                failures.append(index)
        return failures

    handles = nx_world(system, [sender, receiver], variant=VARIANTS["AU-1copy"])
    system.run_processes(handles)
    assert handles[1].value == []


def test_nx_bidirectional_random_traffic():
    """Both ranks send and receive interleaved, seeded schedules."""
    rng = random.Random(42)
    per_rank_plan = {
        rank: [(rng.randint(1, 2000), rng.randint(0, 255)) for _ in range(25)]
        for rank in (0, 1)
    }
    system = make_system()

    def make(rank):
        peer = 1 - rank

        def program(nx):
            src = nx.proc.space.mmap(PAGE)
            dst = nx.proc.space.mmap(PAGE)
            bad = 0
            mine = per_rank_plan[rank]
            theirs = per_rank_plan[peer]
            for (send_size, send_fill), (recv_size, recv_fill) in zip(mine, theirs):
                nx.proc.poke(src, bytes((send_fill + i) % 256
                                        for i in range(send_size)))
                if rank == 0:
                    yield from nx.csend(5, src, send_size, to=peer)
                    got = yield from nx.crecv(5, dst, PAGE)
                else:
                    got = yield from nx.crecv(5, dst, PAGE)
                    yield from nx.csend(5, src, send_size, to=peer)
                expected = bytes((recv_fill + i) % 256 for i in range(recv_size))
                if got != recv_size or nx.proc.peek(dst, got) != expected:
                    bad += 1
            return bad

        return program

    handles = nx_world(system, [make(0), make(1)], variant=VARIANTS["DU-1copy"])
    system.run_processes(handles)
    assert [h.value for h in handles] == [0, 0]


def test_socket_random_chunk_stream():
    """A byte stream written in random chunk sizes must read back as the
    identical stream regardless of how recv chunks it."""
    rng = random.Random(7)
    total = 50_000
    stream = bytes(rng.randrange(256) for _ in range(total))
    write_sizes = []
    remaining = total
    while remaining:
        step = min(remaining, rng.randint(1, 3000))
        write_sizes.append(step)
        remaining -= step
    system = make_system()
    out = {}

    def server(proc):
        lib = SocketLib(system, proc, variant=SOCKET_VARIANTS["DU-1copy"])
        sock = yield from lib.listen(5).accept()
        buf = proc.space.mmap(2 * PAGE)
        received = bytearray()
        local_rng = random.Random(8)
        while True:
            want = local_rng.randint(1, 2 * PAGE)
            got = yield from sock.recv(buf, want)
            if got == 0:
                break
            received += proc.peek(buf, got)
        out["stream"] = bytes(received)

    def client(proc):
        lib = SocketLib(system, proc, variant=SOCKET_VARIANTS["DU-1copy"])
        sock = yield from lib.connect(1, 5)
        src = proc.space.mmap(2 * PAGE)
        offset = 0
        for size in write_sizes:
            proc.poke(src, stream[offset : offset + size])
            yield from sock.send(src, size)
            offset += size
        yield from sock.close()

    s = system.spawn(1, server)
    c = system.spawn(0, client)
    system.run_processes([s, c])
    assert out["stream"] == stream


def test_sixteen_node_all_to_all():
    """Every rank sends to every other rank simultaneously (240
    messages); each payload carries its (src, dst) identity and every
    rank verifies all fifteen arrivals."""
    from repro.hardware.config import MachineConfig
    from repro.libs.nx import ANY_TYPE

    system = make_system(MachineConfig.sixteen_node())
    n = 16

    def rank(nx):
        me = nx.mynode()
        src = nx.proc.space.mmap(PAGE)
        dst = nx.proc.space.mmap(PAGE)
        for peer in range(n):
            if peer == me:
                continue
            nx.proc.poke(src, bytes([me, peer]) * 8)
            yield from nx.csend(1000 + me, src, 16, to=peer)
        bad = 0
        seen = set()
        for _ in range(n - 1):
            yield from nx.crecv(ANY_TYPE, dst, PAGE)
            sender = nx.infotype() - 1000
            seen.add(sender)
            if nx.proc.peek(dst, 16) != bytes([sender, me]) * 8:
                bad += 1
        return bad, len(seen)

    handles = nx_world(system, [rank] * n, variant=VARIANTS["AU-1copy"])
    system.run_processes(handles)
    for handle in handles:
        bad, distinct = handle.value
        assert bad == 0
        assert distinct == n - 1


def test_deterministic_replay():
    """Two identical runs produce byte-identical timing — the simulator
    is deterministic, which every calibration number relies on."""
    def run():
        from repro.bench import nx_pingpong

        return nx_pingpong("AU-1copy", 256, iterations=5)

    assert run() == run()
