"""Acceptance tests for overload control (docs/OVERLOAD.md).

The committed ``BENCH_capacity.json`` is an overload A/B sweep: both
sides model contended node CPUs, only the B side arms admission
control, retry budgets, and backpressure.  The fast tests here pin the
acceptance criteria against that artifact; the live tests re-run the
engine and check the invariants the JSON cannot carry — conservation
of requests at every load point, and that the sweep is reproducible
from its own config block.
"""

import json
import os

import pytest

from repro.bench.capacity import paired_capacity_sweep
from repro.workload import WorkloadSpec
from repro.workload.engine import run_workload

BENCH_PATH = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir,
                          "BENCH_capacity.json")


def bench_payload():
    with open(BENCH_PATH) as fh:
        return json.load(fh)


def spec_from_config(config):
    config = dict(config)
    config["value_sizes"] = tuple(
        (int(size), float(weight)) for size, weight in config["value_sizes"])
    return WorkloadSpec(**config)


def points_by_load(sweep):
    return {pt["offered_load"]: pt for pt in sweep["points"]}


class TestCommittedBench:
    """The acceptance criteria, pinned against BENCH_capacity.json."""

    def test_artifact_is_an_overload_pair(self):
        payload = bench_payload()
        assert payload["mode"] == "ab"
        assert payload["overload"] is True
        assert payload["config"]["admission"] is True
        assert payload["config"]["slo_latency_us"] > 0.0

    def test_goodput_survives_twice_the_knee(self):
        """At 2x the knee's offered load the controlled side keeps
        >= 90% of knee goodput while the uncontrolled side collapses."""
        payload = bench_payload()
        knee = payload["mitigated"]["knee_load"]
        assert knee is not None
        controlled = points_by_load(payload["mitigated"])
        baseline = points_by_load(payload["baseline"])
        twice = 2.0 * knee
        assert twice in controlled, "sweep must include 2x the knee"
        knee_goodput = controlled[knee]["goodput"]
        assert knee_goodput > 0.0
        assert controlled[twice]["goodput"] >= 0.90 * knee_goodput
        # The whole point of the pair: same load, no controls, collapse.
        assert baseline[twice]["goodput"] < 0.33 * knee_goodput

    def test_accepted_p99_stays_inside_the_slo_at_twice_the_knee(self):
        payload = bench_payload()
        slo = payload["config"]["slo_latency_us"]
        knee = payload["mitigated"]["knee_load"]
        controlled = points_by_load(payload["mitigated"])
        assert controlled[2.0 * knee]["p99_us"] <= slo
        # ...where the uncontrolled tail is far beyond it.
        baseline = points_by_load(payload["baseline"])
        assert baseline[2.0 * knee]["p99_us"] > 3.0 * slo

    def test_controls_engage_past_the_knee(self):
        """The survival is bought with explicit rejections, not magic:
        the controlled side sheds past the knee, the baseline never
        does (it has no admission layer), and neither side errors."""
        payload = bench_payload()
        knee = payload["mitigated"]["knee_load"]
        for pt in payload["mitigated"]["points"]:
            assert pt["errors"] == 0
            if pt["offered_load"] > knee:
                assert pt["rejected"] > 0
        for pt in payload["baseline"]["points"]:
            assert pt["rejected"] == 0
            assert pt["errors"] == 0


class TestConservation:
    """accepted + rejected + errors == offered, at every load point."""

    @pytest.mark.parametrize("load", [30_000, 60_000, 90_000])
    def test_every_request_is_accounted_for(self, load):
        spec = WorkloadSpec(
            seed=7, requests=300, concurrency=8, load=load,
            cpu_slots=1, cpu_op_us=50.0, slo_latency_us=1000.0,
            admission=True, admit_queue=8, admit_deadline_us=400.0,
            retry_budget=1, retry_base_us=50.0, backpressure=True)
        rep = run_workload(spec)
        assert rep.completed + rep.errors + rep.rejected == spec.requests
        assert "[OK]" in "\n".join(rep.overload_lines)
        if load >= 90_000:
            assert rep.rejected > 0, "admission must engage at 2x capacity"

    def test_rejections_never_leak_into_errors(self):
        """A shed request is a typed rejection, not an ST_ERROR: deep
        overload produces rejects while the error count stays zero."""
        spec = WorkloadSpec(
            seed=3, requests=300, concurrency=8, load=150_000,
            cpu_slots=1, cpu_op_us=50.0, slo_latency_us=1000.0,
            admission=True, admit_queue=4, admit_deadline_us=200.0,
            retry_budget=0)
        rep = run_workload(spec)
        assert rep.rejected > 0
        assert rep.errors == 0
        assert rep.completed + rep.rejected == spec.requests


@pytest.mark.slow
def test_committed_bench_reproduces_from_its_own_config():
    """make capacity-overload-json is deterministic: re-running the
    sweep from the committed config block reproduces the committed
    points exactly (same sim, same seed, same floats)."""
    payload = bench_payload()
    spec = spec_from_config(payload["config"])
    result = paired_capacity_sweep(payload["loads"], spec, overload=True,
                                   cpu_slots=spec.cpu_slots,
                                   cpu_op_us=spec.cpu_op_us,
                                   admit_queue=spec.admit_queue,
                                   admit_deadline_us=spec.admit_deadline_us,
                                   retry_budget=spec.retry_budget,
                                   retry_base_us=spec.retry_base_us,
                                   backpressure=spec.backpressure,
                                   slo_latency_us=spec.slo_latency_us)
    fresh = result.to_payload()
    assert fresh["baseline"] == payload["baseline"]
    assert fresh["mitigated"] == payload["mitigated"]
    assert "overload verdict" in result.report()
