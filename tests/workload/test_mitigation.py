"""Hot-key mitigation layer: client cache, read-spreading, batching,
and the pipelined submit/collect path of the KV client.

The correctness bar (docs/WORKLOADS.md): mitigations may change *when*
a value is read and *which replica* serves it, but never *what* a
client observes for its own writes — a client that wrote a key must
not subsequently read an older value from its cache, and pipelined
writes to the same key must apply in submission order.
"""

import pytest

from repro.apps.kv import KVClient, KVService, ST_MISS, ST_OK
from repro.testbed import make_system
from repro.workload import WorkloadSpec, run_workload


def boot(srpc_handlers=1, **kv_kwargs):
    system = make_system()
    service = KVService(system, **kv_kwargs)
    service.start(srpc_handlers=srpc_handlers)
    return system, service


def drive(system, service, programs, timeout=30_000_000.0):
    handles = [system.spawn(node, program, name="mitig-test-%d" % i)
               for i, (node, program) in enumerate(programs)]
    system.run_processes(handles, timeout=timeout)
    service.shutdown()
    system.run_processes(service.handles, timeout=timeout)


def mitigated_spec(**overrides):
    base = dict(seed=1, transport="srpc", arrival="open", load=6000.0,
                concurrency=4, requests=40, keys=50, read_fraction=0.8,
                pipeline_window=4, batch_keys=4, cache_keys=32,
                cache_ttl_us=5000.0, read_spread=True)
    base.update(overrides)
    return WorkloadSpec(**base)


# ------------------------------------------------------- client layer


def test_cache_never_serves_stale_after_own_write():
    """Write-invalidate before the wire: a client that put a new value
    must never read its older cached one, however hot the key."""
    system, service = boot()
    seen = {}

    def program(proc):
        client = KVClient(service, proc, transport="srpc",
                          cache_keys=16, cache_ttl_us=1e9)
        yield from client.connect()
        yield from client.put("hot", b"v1")
        status, value = yield from client.get("hot")   # populates cache
        seen["first"] = (status, bytes(value))
        status, value = yield from client.get("hot")   # cache hit
        seen["hit"] = (status, bytes(value))
        yield from client.put("hot", b"v2")            # must invalidate
        status, value = yield from client.get("hot")
        seen["after_write"] = (status, bytes(value))
        yield from client.delete("hot")                # must invalidate
        status, _ = yield from client.get("hot")
        seen["after_delete"] = status
        seen["hits"] = client.cache_hits
        yield from client.shutdown()

    drive(system, service, [(0, program)])
    assert seen["first"] == (ST_OK, b"v1")
    assert seen["hit"] == (ST_OK, b"v1")
    assert seen["after_write"] == (ST_OK, b"v2")
    assert seen["after_delete"] == ST_MISS
    assert seen["hits"] >= 1


def test_cache_ttl_expires_entries():
    system, service = boot()
    seen = {}

    def program(proc):
        client = KVClient(service, proc, transport="srpc",
                          cache_keys=16, cache_ttl_us=50.0)
        yield from client.connect()
        yield from client.put("k", b"v")
        yield from client.get("k")                     # populate
        yield proc.sim.timeout(1000.0)                 # let the TTL lapse
        lookups_before = client.cache_lookups
        hits_before = client.cache_hits
        yield from client.get("k")
        seen["lookups"] = client.cache_lookups - lookups_before
        seen["hits"] = client.cache_hits - hits_before
        yield from client.shutdown()

    drive(system, service, [(0, program)])
    assert seen["lookups"] == 1
    assert seen["hits"] == 0


def test_read_spread_rotates_over_replicas():
    system, service = boot(replicas=2)
    # Preload rather than put: replication fan-out is asynchronous, so
    # a spread read right after a put could catch a replica that has
    # not applied it yet.  Preload lands on every replica up front.
    service.preload({"hot": b"v"})
    seen = {}

    def program(proc):
        client = KVClient(service, proc, transport="srpc",
                          read_spread=True)
        yield from client.connect()
        for _ in range(6):
            status, value = yield from client.get("hot")
            assert (status, bytes(value)) == (ST_OK, b"v")
        seen["spread"] = client.spread_reads
        yield from client.shutdown()

    drive(system, service, [(0, program)])
    # Round-robin over 2 replicas: half the reads land off-primary.
    assert seen["spread"] == 3


def test_pipelined_writes_same_key_apply_in_order():
    system, service = boot(srpc_window=4)
    seen = {}

    def program(proc):
        client = KVClient(service, proc, transport="srpc")
        yield from client.connect()
        handles = []
        for i in range(3):
            h = yield from client.put_begin("seq", b"v%d" % i)
            handles.append(h)
        for h in handles:
            status, _ = yield from client.collect(h)
            assert status == ST_OK
        status, value = yield from client.get("seq")
        seen["final"] = (status, bytes(value))
        yield from client.shutdown()

    drive(system, service, [(0, program)])
    assert seen["final"] == (ST_OK, b"v2")


def test_pipelined_read_after_write_sees_own_write():
    """With read-spreading on, a GET submitted while the same client's
    write to that key is still in flight must pin to the written node
    (the binding FIFO orders them) — never race to a replica that has
    not applied the write yet."""
    system, service = boot(srpc_window=4, replicas=2)
    seen = {}

    def program(proc):
        client = KVClient(service, proc, transport="srpc",
                          read_spread=True, cache_keys=8)
        yield from client.connect()
        yield from client.put("raw", b"OLD")
        hw = yield from client.put_begin("raw", b"NEW")
        hr = yield from client.get_begin("raw")
        status, _ = yield from client.collect(hw)
        assert status == ST_OK
        status, value = yield from client.collect(hr)
        seen["read"] = (status, bytes(value))
        yield from client.shutdown()

    drive(system, service, [(0, program)])
    assert seen["read"] == (ST_OK, b"NEW")


def test_multi_get_batches_and_matches_per_key_gets():
    system, service = boot(batch=True)
    service.preload({"b%02d" % i: b"val-%02d" % i for i in range(10)})
    seen = {}

    def program(proc):
        client = KVClient(service, proc, transport="srpc")
        yield from client.connect()
        keys = ["b%02d" % i for i in range(10)] + ["absent"]
        results = yield from client.multi_get(keys)
        seen["results"] = [(s, bytes(v) if v is not None else None)
                           for s, v in results]
        seen["batch_calls"] = client.batch_calls
        seen["batched_keys"] = client.batched_keys
        yield from client.shutdown()

    drive(system, service, [(0, program)])
    expected = [(ST_OK, b"val-%02d" % i) for i in range(10)]
    expected.append((ST_MISS, None))
    assert seen["results"] == expected
    assert seen["batch_calls"] >= 2   # 11 keys span shards and chunks
    assert seen["batched_keys"] == 11


# ------------------------------------------------------- engine layer


def test_mitigated_workload_completes_without_errors():
    report = run_workload(mitigated_spec())
    assert report.completed == 40
    assert report.errors == 0
    assert report.corruptions == 0


def test_mitigated_workload_is_deterministic():
    first = run_workload(mitigated_spec()).report()
    second = run_workload(mitigated_spec()).report()
    assert first == second


def test_mitigation_annotations_only_when_enabled():
    mitigated = run_workload(mitigated_spec()).report()
    plain = run_workload(mitigated_spec(
        pipeline_window=1, batch_keys=1, cache_keys=0,
        cache_ttl_us=0.0, read_spread=False)).report()
    assert "pipeline=4 batch=4 cache=32" in mitigated
    assert "mitigation:" in mitigated
    assert "kv-mitigation" in mitigated
    assert "pipeline=" not in plain
    assert "mitigation" not in plain


def test_spec_rejects_mitigation_on_sockets():
    with pytest.raises(ValueError):
        WorkloadSpec(transport="sockets", pipeline_window=4).validate()
    with pytest.raises(ValueError):
        WorkloadSpec(transport="sockets", batch_keys=4).validate()


def test_spec_rejects_out_of_range_knobs():
    with pytest.raises(ValueError):
        WorkloadSpec(pipeline_window=0).validate()
    with pytest.raises(ValueError):
        WorkloadSpec(pipeline_window=65).validate()
    with pytest.raises(ValueError):
        WorkloadSpec(batch_keys=0).validate()
    with pytest.raises(ValueError):
        WorkloadSpec(cache_keys=-1).validate()
    with pytest.raises(ValueError):
        WorkloadSpec(cache_ttl_us=-1.0).validate()
