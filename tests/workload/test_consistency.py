"""Workload-level consistency tests (docs/REPLICATION.md).

The acceptance property of the replica-correctness subsystem, measured
where it matters — whole workload runs with the engine's global
staleness oracle armed:

* eventual consistency with read spreading serves a *nonzero* stale
  fraction (replication is asynchronous; a spread read can land on a
  replica the fan-out has not reached yet);
* quorum mode on the *same* run serves exactly zero stale reads
  (R + W > N: every read quorum intersects the last write's ack set);
* a capped replication queue drops records under load, and the
  anti-entropy sweeper converges the run anyway — the report's
  ``repl drops:``/``convergence:`` lines and the divergence series;
* the causal tree of a read-repaired request is golden-pinned: the
  repair span hangs off the detecting GET and runs *after* it, off the
  request's latency path.
"""

import pathlib
from dataclasses import replace

import pytest

from repro.workload import WorkloadSpec, run_workload

GOLDENS = pathlib.Path(__file__).parent / "goldens"

BASE = WorkloadSpec(seed=7, transport="srpc", arrival="open",
                    load=40000.0, concurrency=4, requests=120,
                    keys=40, read_fraction=0.7, staleness=True)


def _golden(name):
    return (GOLDENS / ("%s.txt" % name)).read_text()


def test_eventual_with_spreading_serves_stale_reads():
    report = run_workload(replace(BASE, read_spread=True))
    assert report.staleness is not None
    assert report.staleness["reads"] > 0
    assert report.staleness["stale"] > 0
    text = report.report()
    assert "staleness: reads=%d stale=%d" % (
        report.staleness["reads"], report.staleness["stale"]) in text


def test_quorum_serves_zero_stale_reads_where_eventual_does_not():
    """The paired acceptance check (EXPERIMENTS.md): same seed, same
    arrivals, same keys — only the consistency mode differs."""
    eventual = run_workload(replace(BASE, read_spread=True))
    quorum = run_workload(replace(BASE, consistency="quorum",
                                  read_repair=True))
    assert eventual.staleness["stale"] > 0
    assert quorum.staleness["stale"] == 0
    # Both oracles graded the same read mix.
    assert quorum.staleness["reads"] == eventual.staleness["reads"]


def test_session_mode_never_observes_stale_own_writes():
    report = run_workload(replace(BASE, read_spread=True,
                                  consistency="session"))
    # Workers only read keys; the oracle grades every read against the
    # newest acked write, and session pinning keeps each worker on the
    # acking replica for keys it wrote.  Read-only keys can still be
    # served stale by other replicas, so the rate only has to *drop*.
    spread = run_workload(replace(BASE, read_spread=True))
    assert report.staleness["stale"] <= spread.staleness["stale"]


def test_antientropy_converges_a_lossy_run():
    report = run_workload(replace(BASE, read_spread=True,
                                  repl_queue_cap=2, antientropy=True,
                                  antientropy_interval_us=1000.0))
    conv = report.convergence
    assert conv is not None
    assert conv["rounds"] > 0
    assert conv["divergent_last"] == 0
    assert conv["converged_at_us"] is not None
    assert conv["sweep_failures"] == 0
    # The divergence series ends at zero — the convergence-over-time
    # record the CI artifact ships.
    assert conv["series"], "sweeper recorded no rounds"
    assert conv["series"][-1]["divergent"] == 0
    text = report.report()
    assert "repl drops: queue_full=" in text
    assert "convergence: rounds=%d" % conv["rounds"] in text
    # The replication queues, the drop counter, and the sweeper all
    # surface as metrics rows in the report's utilization table.
    assert "kv-repl-q-n0" in text
    assert "kv-repl-drops" in text
    assert "kv-antientropy" in text


REPAIR_TREE_SPEC = replace(BASE, requests=60, read_spread=True,
                           read_repair=True, trace=True)


def test_repair_tree_hangs_repair_off_the_detecting_get():
    """The causal tree of a repaired request is golden-pinned: the
    ``kv.repair`` span is a leaf, joined to the GET that detected the
    stale replica, and *starts after the GET finished* — repair rides
    the worker's idle gap, never the request's latency path."""
    from repro.obs import assemble_traces, format_tree

    report = run_workload(REPAIR_TREE_SPEC)
    trees = assemble_traces(report.spans)
    repaired = [tree for _tid, tree in sorted(trees.items())
                if any(s.category == "kv.repair" for s in tree.spans)]
    assert repaired, "run produced no read repair"
    for tree in repaired:
        gets = [s for s in tree.spans if s.category == "kv.client"]
        for span in tree.spans:
            if span.category != "kv.repair":
                continue
            assert not tree.children.get(span.sid), \
                "repair span has children"
            assert all(span.start >= g.end for g in gets), \
                "repair ran on the latency path"
    assert format_tree(repaired[0]) + "\n" == _golden("repair_tree")


@pytest.mark.parametrize("kwargs,hint", [
    (dict(consistency="strong"), "unknown consistency"),
    (dict(quorum_r=1), "quorum mode only"),
    (dict(consistency="quorum", quorum_r=1, quorum_w=1),
     "quorum intersection"),
    (dict(consistency="quorum", quorum_r=3), "quorum sizes"),
    (dict(consistency="session", pipeline_window=4), "plain request"),
    (dict(consistency="session", cache_keys=8), "cache"),
    (dict(consistency="session", onesided_reads=True), "one-sided"),
    (dict(consistency="session", transport="sockets",
          read_fraction=0.5), "srpc"),
    (dict(antientropy_interval_us=0.0), "must be positive"),
    (dict(repl_queue_cap=-1), ">= 0"),
])
def test_inconsistent_consistency_specs_are_rejected(kwargs, hint):
    with pytest.raises(ValueError, match=hint):
        replace(BASE, **kwargs).validate()
