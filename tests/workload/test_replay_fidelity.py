"""Record & replay fidelity: a frozen stream reproduces its source run.

The contract (docs/WORKLOADS.md, "Record & replay"): recording is a
pure re-derivation of the engine's sampler draws, saving round-trips
floats exactly, and replaying the artifact produces a byte-identical
report — so any report difference between two replays of one stream is
attributable to the serving config alone.
"""

import dataclasses

from repro.workload import (
    RecordedStream,
    WorkloadSpec,
    diurnal,
    flash_crowd,
    load_stream,
    record_stream,
    run_workload,
    save_stream,
    skew_shift,
)

import pytest


def test_open_replay_report_byte_identical(tmp_path):
    """Live sampling vs recorded replay: same report, byte for byte."""
    spec = WorkloadSpec(seed=9, arrival="open", load=25000.0,
                        concurrency=4, requests=80, keys=60)
    live = run_workload(spec).report()
    path = str(tmp_path / "stream.json")
    save_stream(record_stream(spec), path)
    replayed = run_workload(spec, stream=load_stream(path)).report()
    assert replayed == live


def test_closed_replay_report_byte_identical(tmp_path):
    """The closed loop replays per-worker sequences byte-identically."""
    spec = WorkloadSpec(seed=5, arrival="closed", concurrency=3,
                        requests=45, keys=40, think_us=10.0)
    live = run_workload(spec).report()
    path = str(tmp_path / "stream.json")
    save_stream(record_stream(spec), path)
    replayed = run_workload(spec, stream=load_stream(path)).report()
    assert replayed == live


def test_stream_round_trips_exactly(tmp_path):
    """save/load preserves every gap float and request tuple."""
    stream = record_stream(WorkloadSpec(seed=2, requests=120))
    path = str(tmp_path / "s.json")
    save_stream(stream, path)
    loaded = load_stream(path)
    assert loaded.arrival == stream.arrival
    assert loaded.requests == stream.requests
    assert loaded.meta == stream.meta


def test_replay_is_exactly_paired_across_configs(tmp_path):
    """An A/B replay offers bit-identical traffic to both sides.

    Replaying one stream against two transports must dispatch the same
    request multiset (the service op counters agree); only timing-side
    metrics may differ.
    """
    spec = WorkloadSpec(seed=7, arrival="open", load=20000.0,
                        concurrency=4, requests=60, keys=50)
    stream = record_stream(spec)
    report_a = run_workload(spec, stream=stream)
    report_b = run_workload(
        dataclasses.replace(spec, onesided_reads=True), stream=stream)
    total = report_a.completed + report_a.errors
    assert total == report_b.completed + report_b.errors == 60


def test_stream_spec_mismatches_are_rejected():
    """Arrival-shape and size mismatches fail loudly, not silently."""
    spec = WorkloadSpec(seed=1, requests=30, concurrency=2)
    stream = record_stream(spec)
    with pytest.raises(ValueError):
        run_workload(dataclasses.replace(spec, requests=31), stream=stream)
    with pytest.raises(ValueError):
        run_workload(dataclasses.replace(spec, arrival="closed",
                                         requests=30), stream=stream)
    closed = record_stream(dataclasses.replace(spec, arrival="closed"))
    with pytest.raises(ValueError):
        run_workload(dataclasses.replace(spec, arrival="closed",
                                         concurrency=3), stream=closed)


def test_bad_schema_rejected(tmp_path):
    """A wrong schema tag is an error, not a silent misparse."""
    path = tmp_path / "bad.json"
    path.write_text('{"schema": "something/else", "arrival": "open"}')
    with pytest.raises(ValueError):
        load_stream(str(path))


def test_flash_crowd_compresses_only_the_window():
    """Gaps inside the surge window shrink by the factor; others don't."""
    spec = WorkloadSpec(seed=3, requests=200, load=10000.0)
    base = record_stream(spec)
    crowd = flash_crowd(base, start_us=3000.0, duration_us=4000.0,
                        factor=4.0)
    at = 0.0
    changed = unchanged = 0
    for (g0, *r0), (g1, *r1) in zip(base.requests, crowd.requests):
        at += g0
        assert r0 == r1  # ops/keys/sizes untouched
        if 3000.0 <= at < 7000.0:
            assert g1 == g0 / 4.0
            changed += 1
        else:
            assert g1 == g0
            unchanged += 1
    assert changed > 0 and unchanged > 0
    assert crowd.meta["scenarios"][0]["kind"] == "flash_crowd"


def test_diurnal_modulates_gaps_and_preserves_requests():
    """The sinusoid reshapes gaps only, and stays within (1±A) bounds."""
    base = record_stream(WorkloadSpec(seed=3, requests=150, load=10000.0))
    shaped = diurnal(base, period_us=5000.0, amplitude=0.5)
    for (g0, *r0), (g1, *r1) in zip(base.requests, shaped.requests):
        assert r0 == r1
        assert g0 / 1.5 <= g1 <= g0 / 0.5
    assert any(g1 != g0 for (g0, *_), (g1, *_)
               in zip(base.requests, shaped.requests))


def test_skew_shift_rekeys_only_past_the_cut():
    """Keys after the cut come from the new distribution; gaps/ops hold."""
    base = record_stream(WorkloadSpec(seed=3, requests=200, keys=100))
    shifted = skew_shift(base, at_request=100, key_distribution="uniform")
    for index, ((g0, op0, k0, s0, l0), (g1, op1, k1, s1, l1)) in enumerate(
            zip(base.requests, shifted.requests)):
        assert (g1, op1, s1, l1) == (g0, op0, s0, l0)
        if index < 100:
            assert k1 == k0
    tail_changed = sum(
        1 for (_, op, k0, _, _), (_, _, k1, _, _)
        in zip(base.requests[100:], shifted.requests[100:])
        if op in ("get", "put") and k1 != k0)
    assert tail_changed > 0


def test_scenarios_reject_closed_streams():
    """Gap-shaping transforms need arrival gaps to shape."""
    closed = record_stream(WorkloadSpec(seed=1, arrival="closed",
                                        requests=20, concurrency=2))
    with pytest.raises(ValueError):
        flash_crowd(closed, 0.0, 100.0, 2.0)
    with pytest.raises(ValueError):
        diurnal(closed, 100.0, 0.5)
    with pytest.raises(ValueError):
        skew_shift(closed, 10)


def test_shaped_replay_runs_end_to_end():
    """A flash-crowd stream drives a full run (surge shows in the tail)."""
    spec = WorkloadSpec(seed=11, requests=150, load=20000.0, concurrency=4)
    base = record_stream(spec)
    crowd = flash_crowd(base, start_us=1000.0, duration_us=3000.0,
                        factor=6.0)
    calm = run_workload(spec, stream=base)
    surged = run_workload(spec, stream=crowd)
    assert surged.completed + surged.errors == 150
    # The surge packs the same requests into less time overall.
    assert surged.duration_us < calm.duration_us


def test_stream_len_counts_both_shapes():
    """__len__ covers open entries and closed per-worker sequences."""
    assert len(record_stream(WorkloadSpec(seed=1, requests=33))) == 33
    assert len(record_stream(WorkloadSpec(
        seed=1, arrival="closed", requests=33, concurrency=4))) == 33
    assert len(RecordedStream("open")) == 0
