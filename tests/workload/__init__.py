"""Tests for the deterministic workload engine (repro.workload)."""
