"""Zero-regression goldens: with every mitigation knob at its default
(window=1, batch off, cache off, spread off) the workload engine must
reproduce its pre-pipelining reports byte for byte.

The goldens were captured from the engine before the mitigation layer
existed, so any timing drift, layout change, or report-format change
in the default path shows up here as a diff — not as a silent
recalibration.  If a change is *intended* to shift the default path,
regenerate the goldens with the snippet in each file's spec line and
say so in the commit.
"""

import pathlib

from repro.workload import WorkloadSpec, run_workload

GOLDENS = pathlib.Path(__file__).parent / "goldens"

SPECS = {
    "open_srpc_seed1": WorkloadSpec(
        seed=1, transport="srpc", arrival="open", load=6000.0,
        concurrency=4, requests=40, keys=50, read_fraction=0.80),
    "closed_mixed_seed3": WorkloadSpec(
        seed=3, transport="srpc", arrival="closed",
        concurrency=4, requests=40, keys=50,
        read_fraction=0.70, scan_fraction=0.10),
}


def _golden(name):
    return (GOLDENS / ("%s.txt" % name)).read_text()


def test_open_loop_srpc_report_is_byte_identical():
    text = run_workload(SPECS["open_srpc_seed1"]).report()
    assert text + "\n" == _golden("open_srpc_seed1")


def test_closed_loop_mixed_report_is_byte_identical():
    text = run_workload(SPECS["closed_mixed_seed3"]).report()
    assert text + "\n" == _golden("closed_mixed_seed3")


def test_explicit_default_knobs_match_golden_too():
    """Passing the mitigation defaults explicitly is the same engine
    configuration as not mentioning them at all."""
    from dataclasses import replace
    spec = replace(SPECS["open_srpc_seed1"], pipeline_window=1,
                   batch_keys=1, cache_keys=0, cache_ttl_us=0.0,
                   read_spread=False, onesided_reads=False)
    text = run_workload(spec).report()
    assert text + "\n" == _golden("open_srpc_seed1")
