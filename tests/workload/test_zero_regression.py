"""Zero-regression goldens: with every mitigation knob at its default
(window=1, batch off, cache off, spread off) the workload engine must
reproduce its pre-pipelining reports byte for byte.

The goldens were captured from the engine before the mitigation layer
existed, so any timing drift, layout change, or report-format change
in the default path shows up here as a diff — not as a silent
recalibration.  If a change is *intended* to shift the default path,
regenerate the goldens with the snippet in each file's spec line and
say so in the commit.
"""

import pathlib

from repro.workload import WorkloadSpec, run_workload

GOLDENS = pathlib.Path(__file__).parent / "goldens"

SPECS = {
    "open_srpc_seed1": WorkloadSpec(
        seed=1, transport="srpc", arrival="open", load=6000.0,
        concurrency=4, requests=40, keys=50, read_fraction=0.80),
    "closed_mixed_seed3": WorkloadSpec(
        seed=3, transport="srpc", arrival="closed",
        concurrency=4, requests=40, keys=50,
        read_fraction=0.70, scan_fraction=0.10),
}


def _golden(name):
    return (GOLDENS / ("%s.txt" % name)).read_text()


def test_open_loop_srpc_report_is_byte_identical():
    text = run_workload(SPECS["open_srpc_seed1"]).report()
    assert text + "\n" == _golden("open_srpc_seed1")


def test_closed_loop_mixed_report_is_byte_identical():
    text = run_workload(SPECS["closed_mixed_seed3"]).report()
    assert text + "\n" == _golden("closed_mixed_seed3")


def test_explicit_default_knobs_match_golden_too():
    """Passing the mitigation, overload, and consistency defaults
    explicitly is the same engine configuration as not mentioning them
    at all."""
    from dataclasses import replace
    spec = replace(SPECS["open_srpc_seed1"], pipeline_window=1,
                   batch_keys=1, cache_keys=0, cache_ttl_us=0.0,
                   read_spread=False, onesided_reads=False,
                   cpu_slots=0, cpu_op_us=10.0, admission=False,
                   admit_queue=32, admit_deadline_us=0.0,
                   retry_budget=0, retry_base_us=100.0, retry_jitter=0.5,
                   backpressure=False, slo_latency_us=0.0,
                   consistency="eventual", quorum_r=0, quorum_w=0,
                   read_repair=False, staleness=False, antientropy=False,
                   antientropy_interval_us=2000.0, repl_queue_cap=0)
    text = run_workload(spec).report()
    assert text + "\n" == _golden("open_srpc_seed1")


SHED_TREE_SPEC = WorkloadSpec(
    seed=5, transport="srpc", arrival="open", load=250_000.0,
    concurrency=8, requests=40, keys=50, read_fraction=0.8,
    cpu_slots=1, cpu_op_us=150.0, admission=True,
    admit_queue=1, admit_deadline_us=50.0, retry_budget=0, trace=True)


def test_shed_request_tree_ends_at_the_reject_span():
    """The causal tree of a shed request is golden-pinned: it ends at
    ``kv.server.reject`` and contains NO handler span — admission
    refused the work before any shard code ran (docs/OVERLOAD.md)."""
    from repro.obs import assemble_traces, format_tree

    report = run_workload(SHED_TREE_SPEC)
    trees = assemble_traces(report.spans)
    shed = [tree for _tid, tree in sorted(trees.items())
            if any(s.category == "kv.server.reject" for s in tree.spans)]
    assert shed, "overloaded run produced no shed request"
    for tree in shed:
        assert not any(s.category == "kv.server" for s in tree.spans), \
            "tree %d ran a handler after being shed" % tree.tid
    assert format_tree(shed[0]) + "\n" == _golden("shed_tree")
