"""Tests for the capacity sweep: knee detection on synthetic points,
and (slow) a real sweep showing the saturation signature."""

import pytest

from repro.bench.capacity import (
    CapacityPoint,
    capacity_sweep,
    find_knee,
)
from repro.workload import WorkloadSpec


def point(offered, throughput, p50, p99, errors=0):
    return CapacityPoint(offered_load=offered, throughput=throughput,
                         p50_us=p50, p99_us=p99, errors=errors)


class TestFindKnee:
    """Knee detection over synthetic sweep points."""

    def test_no_points_no_knee(self):
        assert find_knee([]) is None

    def test_healthy_sweep_has_no_knee(self):
        points = [point(load, load * 0.99, 40.0, 80.0)
                  for load in (1000, 2000, 4000)]
        assert find_knee(points) is None

    def test_tail_divergence_marks_the_knee(self):
        points = [
            point(10_000, 9_900, 40.0, 80.0),
            point(20_000, 19_800, 45.0, 95.0),
            point(40_000, 39_000, 60.0, 400.0),   # p99 blows past 3x baseline
            point(80_000, 35_000, 300.0, 2000.0),  # output falls past the peak
        ]
        assert find_knee(points) == 40_000

    def test_knee_is_the_output_maximum_not_first_saturation(self):
        """A non-monotonic collapse: the tail first diverges at 40k, but
        throughput keeps climbing to 60k before falling off a cliff.
        The knee worth reporting is the output peak, not the first
        saturated point."""
        points = [
            point(10_000, 9_900, 40.0, 80.0),
            point(20_000, 19_800, 45.0, 95.0),
            point(40_000, 39_500, 60.0, 400.0),   # tail diverges here...
            point(60_000, 52_000, 120.0, 900.0),  # ...but output still grows
            point(80_000, 11_000, 500.0, 5000.0),  # collapse
        ]
        assert find_knee(points) == 60_000

    def test_goodput_outranks_throughput_for_the_knee(self):
        """When goodput was measured, the knee is its maximum: retries
        can push raw throughput up at a load where almost nothing
        finishes inside the SLO."""
        points = [
            CapacityPoint(offered_load=10_000, throughput=9_900,
                          p50_us=40.0, p99_us=80.0, errors=0,
                          goodput=9_800),
            CapacityPoint(offered_load=40_000, throughput=39_000,
                          p50_us=60.0, p99_us=400.0, errors=0,
                          goodput=36_000),
            CapacityPoint(offered_load=80_000, throughput=41_000,
                          p50_us=300.0, p99_us=2000.0, errors=0,
                          goodput=4_000),
        ]
        assert find_knee(points) == 40_000

    def test_knee_tie_prefers_the_lower_load(self):
        points = [
            point(10_000, 9_900, 40.0, 80.0),
            point(40_000, 39_000, 60.0, 400.0),
            point(80_000, 39_000, 300.0, 2000.0),  # same output, worse tail
        ]
        assert find_knee(points) == 40_000

    def test_throughput_shortfall_marks_the_knee(self):
        points = [
            point(10_000, 9_900, 40.0, 80.0),
            point(20_000, 19_800, 45.0, 90.0),
            point(40_000, 22_000, 50.0, 100.0),   # achieved << offered
        ]
        assert find_knee(points) == 40_000

    def test_unsorted_input_is_sorted_first(self):
        points = [
            point(40_000, 39_000, 60.0, 400.0),
            point(10_000, 9_900, 40.0, 80.0),
        ]
        assert find_knee(points) == 40_000

    def test_factor_is_tunable(self):
        points = [
            point(1_000, 990, 40.0, 80.0),
            point(2_000, 1_980, 45.0, 170.0),
        ]
        assert find_knee(points, tail_factor=2.0) == 2_000
        assert find_knee(points, tail_factor=3.0) is None


def test_sweep_requires_open_loop():
    with pytest.raises(ValueError):
        capacity_sweep([1000.0], WorkloadSpec(arrival="closed"))


@pytest.mark.slow
def test_real_sweep_shows_the_saturation_knee():
    """The acceptance-criteria sweep: past the knee, achieved throughput
    plateaus while p99 diverges."""
    spec = WorkloadSpec(seed=1, transport="srpc", arrival="open",
                        concurrency=4, requests=120, keys=60)
    result = capacity_sweep([10_000, 40_000, 80_000, 160_000, 320_000], spec)
    assert result.knee_load is not None
    ordered = sorted(result.points, key=lambda pt: pt.offered_load)
    first, last = ordered[0], ordered[-1]
    assert last.p99_us > 3.0 * first.p99_us          # tail diverged
    assert last.throughput < 0.5 * last.offered_load  # throughput plateaued
    assert "saturation knee" in result.report()
