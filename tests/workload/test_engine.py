"""End-to-end tests of the workload engine: determinism, tail shape,
fault tolerance.  Runs are deliberately small — the capacity-scale runs
live behind the ``slow`` marker in ``test_capacity.py``."""

import pytest

from repro.sim.faults import FaultPlan
from repro.workload import WorkloadSpec, run_workload


def small_spec(**overrides):
    base = dict(seed=1, transport="srpc", arrival="closed",
                concurrency=4, requests=40, keys=50, read_fraction=0.8)
    base.update(overrides)
    return WorkloadSpec(**base)


@pytest.mark.parametrize("transport", ["srpc", "sockets"])
def test_closed_loop_completes_and_has_a_tail(transport):
    report = run_workload(small_spec(transport=transport))
    assert report.completed == 40
    assert report.errors == 0
    assert report.corruptions == 0
    assert report.percentile(99.0) >= report.percentile(50.0) > 0.0
    assert report.throughput_ops_s > 0.0


def test_open_loop_completes_all_requests():
    report = run_workload(small_spec(arrival="open", load=5000.0))
    assert report.completed == 40
    assert report.offered_load == 5000.0
    # Sub-saturation open loop should roughly achieve what was offered.
    assert report.throughput_ops_s > 0.5 * report.offered_load


def test_same_seed_produces_byte_identical_report():
    spec = small_spec(arrival="open", load=6000.0, scan_fraction=0.05)
    first = run_workload(spec).report()
    second = run_workload(spec).report()
    assert first == second


def test_different_seed_produces_different_traffic():
    first = run_workload(small_spec(seed=1, arrival="open", load=6000.0))
    second = run_workload(small_spec(seed=2, arrival="open", load=6000.0))
    assert first.report() != second.report()


def test_scan_mix_rides_sockets_beside_srpc():
    report = run_workload(small_spec(read_fraction=0.6, scan_fraction=0.2))
    assert report.completed == 40
    assert report.per_op["scan"].count > 0
    assert report.corruptions == 0


def test_get_values_pass_integrity_check():
    report = run_workload(small_spec(read_fraction=1.0))
    assert report.misses == 0  # keyspace is fully preloaded
    assert report.corruptions == 0


def test_report_text_contains_the_advertised_sections():
    text = run_workload(small_spec()).report()
    assert "p99 us" in text and "OVERALL" in text
    assert "utilization" in text
    assert "service:" in text


def test_faulted_workload_finishes_degraded_not_hung():
    plan = FaultPlan.from_seed(3, horizon_us=3000.0, count=8)
    report = run_workload(small_spec(seed=5, requests=30), fault_plan=plan)
    assert report.completed + report.errors == 30
    assert report.fault_lines  # the report shows what fired


def test_spec_validation_rejects_bad_shapes():
    with pytest.raises(ValueError):
        WorkloadSpec(transport="carrier-pigeon").validate()
    with pytest.raises(ValueError):
        WorkloadSpec(nodes=5).validate()
    with pytest.raises(ValueError):
        WorkloadSpec(arrival="open", load=0.0).validate()
    with pytest.raises(ValueError):
        WorkloadSpec(read_fraction=0.9, scan_fraction=0.2).validate()
