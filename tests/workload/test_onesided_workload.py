"""The one-sided bypass knob at workload level: counters, traces, budget.

The serving-stack acceptance criteria for docs/ONESIDED.md: a bypass
GET's causal tree must contain no server-handler span (the read is
served by the target NIC alone), the trace's stage budget must close,
and the hit/fallback counters must conserve GETs.
"""

from dataclasses import replace

from repro.obs import assemble_traces, explain_trace
from repro.workload import WorkloadSpec, run_workload

SPEC = WorkloadSpec(seed=1, arrival="open", load=30000.0, concurrency=4,
                    requests=200, keys=64, read_fraction=0.9,
                    onesided_reads=True)


def test_onesided_run_is_clean_and_counters_conserve():
    report = run_workload(SPEC)
    assert report.completed == 200
    assert report.errors == 0
    assert report.corruptions == 0
    text = report.report()
    assert "onesided=1" in text
    line = next(l for l in text.splitlines() if "onesided_hits" in l)
    hits = int(line.split("onesided_hits=")[1].split()[0])
    fallbacks = int(line.split("onesided_fallbacks=")[1].split()[0])
    assert hits + fallbacks == report.per_op["get"].count
    assert hits > 0


def test_bypass_get_tree_has_no_server_span_and_budget_closes():
    report = run_workload(replace(SPEC, requests=80, read_fraction=1.0,
                                  trace=True))
    trees = assemble_traces(report.spans or [])
    bypass = []
    for tree in trees.values():
        cats = {span.category for span in tree.spans}
        if "vmmc.read" in cats and "srpc.call" not in cats:
            bypass.append((tree, cats))
    assert bypass, "no bypass GET got traced"
    for tree, cats in bypass:
        # Server bypass means exactly that: no RPC serve, no KV handler,
        # no server-side CPU span anywhere in the request's causal tree.
        assert "srpc.serve" not in cats
        assert "kv.serve" not in cats
        assert "nic.remote_read" in cats
    tree, _cats = bypass[0]
    result = explain_trace(tree, report.spans)
    assert result.budget_error <= 0.01


def test_onesided_disabled_exports_nothing():
    """With the knob off the service must not export regions or spawn
    writer hooks — the zero-regression goldens depend on it."""
    report = run_workload(replace(SPEC, onesided_reads=False))
    assert report.completed == 200
    assert "onesided=1" not in report.report()
