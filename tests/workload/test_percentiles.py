"""Tests for the shared percentile toolkit (repro.analysis)."""

import random

import pytest

from repro.analysis import LatencyHistogram, TAIL_PERCENTILES, percentile
from repro.sim.trace import Series


class TestExactPercentile:
    """The exact finite-sample percentile function."""

    def test_single_sample(self):
        assert percentile([42.0], 0.0) == 42.0
        assert percentile([42.0], 50.0) == 42.0
        assert percentile([42.0], 100.0) == 42.0

    def test_endpoints_are_min_and_max(self):
        xs = [5.0, 1.0, 9.0, 3.0]
        assert percentile(xs, 0.0) == 1.0
        assert percentile(xs, 100.0) == 9.0

    def test_median_interpolates_between_middle_samples(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 50.0) == 2.5

    def test_linear_interpolation_matches_hand_computation(self):
        # rank = 0.9 * (5 - 1) = 3.6 -> 4 + 0.6 * (5 - 4)
        assert percentile([1.0, 2.0, 3.0, 4.0, 5.0], 90.0) == pytest.approx(4.6)

    def test_input_order_is_irrelevant(self):
        xs = [7.0, 1.0, 4.0, 9.0, 2.0]
        assert percentile(xs, 75.0) == percentile(sorted(xs), 75.0)

    def test_rejects_empty_and_out_of_range(self):
        with pytest.raises(ValueError):
            percentile([], 50.0)
        with pytest.raises(ValueError):
            percentile([1.0], 101.0)
        with pytest.raises(ValueError):
            percentile([1.0], -0.1)


class TestLatencyHistogram:
    """The streaming geometric-bucket histogram."""

    def test_percentiles_within_growth_bound_of_exact(self):
        rng = random.Random(5)
        hist = LatencyHistogram("t")
        samples = [rng.random() * 1000.0 + 0.5 for _ in range(5000)]
        hist.extend(samples)
        for p in TAIL_PERCENTILES:
            exact = percentile(samples, p)
            approx = hist.percentile(p)
            # one bucket of slack in each direction around the exact value
            assert exact / hist._growth <= approx <= exact * hist._growth

    def test_min_max_mean_are_exact(self):
        hist = LatencyHistogram("t")
        hist.extend([3.0, 1.0, 2.0])
        assert hist.min == 1.0 and hist.max == 3.0
        assert hist.mean == pytest.approx(2.0)
        assert hist.percentile(0.0) == 1.0
        assert hist.percentile(100.0) == 3.0

    def test_merge_equals_recording_everything_in_one(self):
        a, b, both = (LatencyHistogram(n) for n in "ab1")
        xs = [0.5, 1.5, 80.0, 2.25]
        ys = [12.0, 0.0, 7.5]
        a.extend(xs)
        b.extend(ys)
        both.extend(xs + ys)
        a.merge(b)
        assert a.count == both.count
        assert a.min == both.min and a.max == both.max
        for p in TAIL_PERCENTILES:
            assert a.percentile(p) == both.percentile(p)

    def test_merge_rejects_mismatched_geometry(self):
        a = LatencyHistogram("a")
        b = LatencyHistogram("b", growth=1.5)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_empty_histogram_raises(self):
        hist = LatencyHistogram("empty")
        with pytest.raises(ValueError):
            hist.percentile(50.0)
        with pytest.raises(ValueError):
            hist.mean

    def test_rejects_negative_samples(self):
        with pytest.raises(ValueError):
            LatencyHistogram("t").record(-1.0)

    def test_tiny_values_land_in_resolution_bucket(self):
        hist = LatencyHistogram("t", resolution=0.01)
        hist.extend([0.0, 0.001, 0.01])
        assert hist.percentile(99.0) <= 0.01

    def test_summary_mentions_count_and_percentiles(self):
        hist = LatencyHistogram("ops")
        hist.extend(float(i) for i in range(1, 101))
        text = hist.summary()
        assert "ops" in text and "100" in text


def test_series_percentile_uses_shared_definition():
    """sim.trace.Series defers to the same exact percentile code."""
    series = Series("lat")
    for value in [4.0, 1.0, 3.0, 2.0]:
        series.add(value)
    assert series.percentile(50.0) == percentile([1.0, 2.0, 3.0, 4.0], 50.0)
    empty = Series("none")
    with pytest.raises(ValueError):
        empty.percentile(50.0)
