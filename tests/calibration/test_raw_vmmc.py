"""Calibration tests: the raw VMMC layer against the paper's numbers.

These assert the Figure 3 / Section 3.4 headline measurements within
tolerance.  If a hardware-model change breaks one of these, the fix is
to re-tune MachineConfig — see DESIGN.md section 5 — not to relax the
tolerance.
"""

import pytest

from repro.bench.pingpong import STRATEGIES, one_word_latency, vmmc_pingpong
from repro.hardware import CacheMode


def within(value, target, tolerance):
    return target * (1 - tolerance) <= value <= target * (1 + tolerance)


class TestOneWordLatency:
    def test_au_write_through_4_75us(self):
        latency = one_word_latency(automatic=True, cache_mode=CacheMode.WRITE_THROUGH)
        assert within(latency, 4.75, 0.05), latency

    def test_au_uncached_3_7us(self):
        latency = one_word_latency(automatic=True, cache_mode=CacheMode.UNCACHED)
        assert within(latency, 3.7, 0.05), latency

    def test_du_7_6us(self):
        latency = one_word_latency(automatic=False, cache_mode=CacheMode.WRITE_THROUGH)
        assert within(latency, 7.6, 0.05), latency

    def test_au_beats_du_for_one_word(self):
        au = one_word_latency(automatic=True)
        du = one_word_latency(automatic=False)
        assert au < du


class TestFigure3Bandwidth:
    """Asymptotic bandwidths and orderings of the four raw strategies."""

    @pytest.fixture(scope="class")
    def at_10k(self):
        return {
            name: vmmc_pingpong(STRATEGIES[name], 10240, iterations=5)
            for name in ("AU-1copy", "AU-2copy", "DU-0copy", "DU-1copy")
        }

    def test_du_0copy_approaches_23_mb_s(self, at_10k):
        bw = at_10k["DU-0copy"].bandwidth_mb_s
        assert 20.0 < bw < 24.0, bw

    def test_du_0copy_is_fastest_for_large_messages(self, at_10k):
        best = at_10k["DU-0copy"].bandwidth_mb_s
        for name in ("AU-1copy", "AU-2copy", "DU-1copy"):
            assert best > at_10k[name].bandwidth_mb_s

    def test_au_1copy_limited_by_copy_near_20_mb_s(self, at_10k):
        bw = at_10k["AU-1copy"].bandwidth_mb_s
        assert 16.0 < bw < 21.0, bw

    def test_extra_copies_cost_bandwidth(self, at_10k):
        assert at_10k["AU-1copy"].bandwidth_mb_s > at_10k["AU-2copy"].bandwidth_mb_s
        assert at_10k["DU-0copy"].bandwidth_mb_s > at_10k["DU-1copy"].bandwidth_mb_s

    def test_au_outperforms_du_for_small_messages(self):
        """'For smaller messages, automatic update outperformed
        deliberate update because of its low start-up cost.'"""
        au = vmmc_pingpong(STRATEGIES["AU-1copy"], 64, iterations=10)
        du = vmmc_pingpong(STRATEGIES["DU-0copy"], 64, iterations=10)
        assert au.one_way_latency_us < du.one_way_latency_us

    def test_du_overtakes_au_for_large_messages(self):
        """'For larger messages, deliberate update delivered bandwidth
        slightly higher than automatic update.'"""
        au = vmmc_pingpong(STRATEGIES["AU-1copy"], 10240, iterations=5)
        du = vmmc_pingpong(STRATEGIES["DU-0copy"], 10240, iterations=5)
        assert du.bandwidth_mb_s > au.bandwidth_mb_s


class TestMonotonicity:
    def test_latency_increases_with_size(self):
        sizes = (64, 512, 4096)
        for name in ("AU-1copy", "DU-0copy"):
            latencies = [
                vmmc_pingpong(STRATEGIES[name], s, iterations=5).one_way_latency_us
                for s in sizes
            ]
            assert latencies == sorted(latencies)

    def test_bandwidth_increases_with_size(self):
        sizes = (64, 1024, 10240)
        for name in ("AU-1copy", "DU-0copy"):
            bandwidths = [
                vmmc_pingpong(STRATEGIES[name], s, iterations=5).bandwidth_mb_s
                for s in sizes
            ]
            assert bandwidths == sorted(bandwidths)
