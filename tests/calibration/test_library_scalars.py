"""Calibration pins for the library-level scalar claims.

Companion to test_raw_vmmc.py: these hold the per-library overheads in
the neighbourhoods the paper reports, so a change to protocol code that
silently fattens a fast path fails here rather than drifting.
"""

import pytest

from repro.bench import (
    STRATEGIES,
    nx_pingpong,
    socket_pingpong,
    srpc_inout_rtt,
    vmmc_pingpong,
    vrpc_pingpong,
)


class TestNX:
    def test_small_message_overhead_near_6us(self):
        """'For small messages with automatic update, we incur a latency
        cost of just over 6 us above the hardware limit.'"""
        nx = nx_pingpong("AU-1copy", 8, iterations=8)
        raw = vmmc_pingpong(STRATEGIES["AU-1copy"], 8, iterations=8).one_way_latency_us
        assert 5.0 < nx - raw < 9.5, nx - raw

    def test_large_messages_approach_raw_limit(self):
        """'For large messages, performance asymptotically approaches
        the raw hardware limit.'"""
        nx = nx_pingpong("AU-1copy", 10240, iterations=5)
        raw = vmmc_pingpong(STRATEGIES["DU-0copy"], 10240,
                            iterations=5).one_way_latency_us
        assert nx < 1.25 * raw


class TestSockets:
    def test_small_message_overhead_near_13us(self):
        """'For small messages, we incur a latency of 13 us above the
        hardware limit.'"""
        sock = socket_pingpong("AU-2copy", 4, iterations=8)
        raw = vmmc_pingpong(STRATEGIES["AU-1copy"], 4, iterations=8).one_way_latency_us
        assert 10.0 < sock - raw < 16.5, sock - raw

    def test_overhead_split_roughly_equally(self):
        """'...divided roughly equally between the sender and receiver'
        — encoded as equal send/recv soft costs in the configuration."""
        from repro.hardware.config import SoftwareCosts

        costs = SoftwareCosts()
        assert costs.socket_send_overhead == costs.socket_recv_overhead


class TestRpc:
    def test_vrpc_null_rtt_near_29us(self):
        rtt = vrpc_pingpong(0, automatic=True)
        assert 27.0 < rtt < 33.0, rtt

    def test_srpc_null_inout_beats_vrpc_by_over_2x(self):
        compatible = vrpc_pingpong(0, automatic=True)
        non_compatible = srpc_inout_rtt(0)
        assert compatible / non_compatible > 2.2

    def test_srpc_large_inout_factor_near_2(self):
        compatible = vrpc_pingpong(1000, automatic=True)
        non_compatible = srpc_inout_rtt(1000)
        assert 1.7 < compatible / non_compatible < 3.2

    def test_du_variant_slower_than_au_for_null(self):
        assert vrpc_pingpong(0, automatic=False) > vrpc_pingpong(0, automatic=True)
