"""The analytic latency model must agree with the simulator.

If someone re-tunes MachineConfig, either both move together (fine) or
these tests catch the divergence between the documented decomposition
and what the event-driven model actually does.
"""

import pytest

from repro.analysis import au_word_budget, du_word_budget
from repro.bench.pingpong import one_word_latency
from repro.hardware.config import CacheMode, MachineConfig


def test_au_budget_matches_simulation_write_through():
    budget = au_word_budget(cache_mode=CacheMode.WRITE_THROUGH)
    simulated = one_word_latency(automatic=True, cache_mode=CacheMode.WRITE_THROUGH)
    assert budget.total == pytest.approx(simulated, rel=0.10)


def test_au_budget_matches_simulation_uncached():
    budget = au_word_budget(cache_mode=CacheMode.UNCACHED)
    simulated = one_word_latency(automatic=True, cache_mode=CacheMode.UNCACHED)
    assert budget.total == pytest.approx(simulated, rel=0.10)


def test_du_budget_matches_simulation():
    budget = du_word_budget()
    simulated = one_word_latency(automatic=False, cache_mode=CacheMode.WRITE_THROUGH)
    assert budget.total == pytest.approx(simulated, rel=0.10)


def test_budgets_name_every_paper_stage():
    report = au_word_budget().report()
    for phrase in ("snoop", "incoming DMA", "poll", "router"):
        assert phrase in report
    report = du_word_budget().report()
    for phrase in ("PIO", "DMA read", "EISA"):
        assert phrase in report


def test_du_exceeds_au_analytically():
    """The 7.6 vs 4.75 gap is structural: initiation PIO + DMA read."""
    assert du_word_budget().total > au_word_budget().total + 2.0


def test_incoming_dma_is_the_biggest_hardware_stage():
    """The paper attributes receive cost to the EISA-side DMA engine;
    in the budget the incoming DMA setup dominates the network stages."""
    budget = au_word_budget()
    by_name = {s.name: s.microseconds for s in budget.stages}
    network_stages = [v for k, v in by_name.items()
                      if k not in ("sender store (write-through)",
                                   "receiver poll detect")]
    assert by_name["incoming DMA setup"] == max(network_stages)


def test_budget_scales_with_hops():
    near = au_word_budget(hops=1).total
    far = au_word_budget(hops=6).total
    config = MachineConfig.shrimp_prototype()
    assert far - near == pytest.approx(5 * config.router_hop_latency)
