"""Tests for the SHRIMP daemons: export/import brokering across nodes."""

import pytest

from repro.hardware import CacheMode
from repro.kernel import MappingError, ShrimpSystem
from repro.sim import spawn

PAGE = 4096


@pytest.fixture
def system():
    return ShrimpSystem()


def test_export_enables_receive_pages(system):
    def program(proc):
        vaddr = proc.space.mmap(2 * PAGE, cache_mode=CacheMode.WRITE_THROUGH)
        record = yield from system.daemons[0].export(proc, vaddr, 2 * PAGE)
        return record

    handle = system.spawn(0, program)
    system.run_processes([handle])
    record = handle.value
    assert record.export_id >= 1
    ipt = system.machine.node(0).nic.ipt
    for frame in record.frames:
        assert ipt.is_enabled(frame)
    assert ipt.entry(record.frames[0]).owner is record


def test_export_requires_page_alignment(system):
    def program(proc):
        vaddr = proc.space.mmap(PAGE)
        try:
            yield from system.daemons[0].export(proc, vaddr + 4, PAGE)
        except MappingError:
            return "aligned-check"

    handle = system.spawn(0, program)
    system.run_processes([handle])
    assert handle.value == "aligned-check"


def test_import_across_nodes_returns_remote_frames(system):
    state = {}

    def exporter(proc):
        vaddr = proc.space.mmap(PAGE)
        record = yield from system.daemons[1].export(proc, vaddr, PAGE)
        state["record"] = record

    def importer(proc):
        while "record" not in state:
            yield proc.sim.timeout(10.0)
        imported = yield from system.daemons[0].import_buffer(
            proc, 1, state["record"].export_id
        )
        return imported

    ex = system.spawn(1, exporter)
    im = system.spawn(0, importer)
    system.run_processes([ex, im])
    imported = im.value
    assert imported.remote_node == 1
    assert imported.remote_frames == state["record"].frames
    assert imported.opt_base >= system.config.memory_pages
    assert state["record"].import_count == 1


def test_import_unknown_export_fails(system):
    def importer(proc):
        try:
            yield from system.daemons[0].import_buffer(proc, 1, 999)
        except MappingError as exc:
            return str(exc)

    handle = system.spawn(0, importer)
    system.run_processes([handle])
    assert "no export 999" in handle.value


def test_import_permission_denied(system):
    state = {}

    def exporter(proc):
        vaddr = proc.space.mmap(PAGE)
        record = yield from system.daemons[1].export(
            proc, vaddr, PAGE, allow_nodes={2, 3}
        )
        state["record"] = record

    def importer(proc):
        while "record" not in state:
            yield proc.sim.timeout(10.0)
        try:
            yield from system.daemons[0].import_buffer(proc, 1, state["record"].export_id)
        except MappingError as exc:
            return str(exc)

    ex = system.spawn(1, exporter)
    im = system.spawn(0, importer)
    system.run_processes([ex, im])
    assert "may not import" in im.value


def test_same_node_import_fast_path(system):
    def program(proc):
        vaddr = proc.space.mmap(PAGE)
        record = yield from system.daemons[0].export(proc, vaddr, PAGE)
        imported = yield from system.daemons[0].import_buffer(proc, 0, record.export_id)
        return record, imported

    handle = system.spawn(0, program)
    system.run_processes([handle])
    record, imported = handle.value
    assert imported.remote_frames == record.frames
    assert record.import_count == 1


def test_unimport_frees_proxies_and_decrements_refcount(system):
    state = {}

    def exporter(proc):
        vaddr = proc.space.mmap(PAGE)
        record = yield from system.daemons[1].export(proc, vaddr, PAGE)
        state["record"] = record

    def importer(proc):
        while "record" not in state:
            yield proc.sim.timeout(10.0)
        imported = yield from system.daemons[0].import_buffer(
            proc, 1, state["record"].export_id
        )
        yield from system.daemons[0].unimport(proc, imported)
        # Give the unimport notice time to cross the Ethernet.
        yield proc.sim.timeout(2000.0)
        return imported

    ex = system.spawn(1, exporter)
    im = system.spawn(0, importer)
    system.run_processes([ex, im])
    assert not im.value.active
    assert state["record"].import_count == 0
    with pytest.raises(KeyError):
        system.machine.node(0).nic.opt.proxy_entry(im.value.opt_base)


def test_unexport_disables_pages(system):
    def program(proc):
        vaddr = proc.space.mmap(PAGE)
        record = yield from system.daemons[0].export(proc, vaddr, PAGE)
        yield from system.daemons[0].unexport(proc, record)
        return record

    handle = system.spawn(0, program)
    system.run_processes([handle])
    record = handle.value
    assert not record.active
    assert not system.machine.node(0).nic.ipt.is_enabled(record.frames[0])
    assert record.export_id not in system.daemons[0].exports


def test_bind_automatic_installs_opt_entries(system):
    state = {}

    def exporter(proc):
        vaddr = proc.space.mmap(PAGE)
        record = yield from system.daemons[1].export(proc, vaddr, PAGE)
        state["record"] = record

    def binder(proc):
        while "record" not in state:
            yield proc.sim.timeout(10.0)
        imported = yield from system.daemons[0].import_buffer(
            proc, 1, state["record"].export_id
        )
        local = proc.space.mmap(PAGE, cache_mode=CacheMode.WRITE_THROUGH)
        binding = yield from system.daemons[0].bind_automatic(proc, local, imported)
        return proc, binding

    ex = system.spawn(1, exporter)
    b = system.spawn(0, binder)
    system.run_processes([ex, b])
    proc, binding = b.value
    opt = system.machine.node(0).nic.opt
    frame = binding.local_frames[0]
    entry = opt.lookup(frame)
    assert entry is not None
    assert entry.dst_node == 1
    assert entry.dst_page == state["record"].frames[0]


def test_unbind_automatic_removes_entries(system):
    def program(proc):
        vaddr = proc.space.mmap(PAGE)
        record = yield from system.daemons[0].export(proc, vaddr, PAGE)
        imported = yield from system.daemons[0].import_buffer(proc, 0, record.export_id)
        local = proc.space.mmap(PAGE)
        binding = yield from system.daemons[0].bind_automatic(proc, local, imported)
        yield from system.daemons[0].unbind_automatic(proc, binding)
        return binding

    handle = system.spawn(0, program)
    system.run_processes([handle])
    binding = handle.value
    assert not binding.active
    assert system.machine.node(0).nic.opt.lookup(binding.local_frames[0]) is None


def test_bind_offset_must_be_page_aligned(system):
    def program(proc):
        vaddr = proc.space.mmap(2 * PAGE)
        record = yield from system.daemons[0].export(proc, vaddr, 2 * PAGE)
        imported = yield from system.daemons[0].import_buffer(proc, 0, record.export_id)
        local = proc.space.mmap(PAGE)
        try:
            yield from system.daemons[0].bind_automatic(
                proc, local, imported, nbytes=PAGE, offset=100
            )
        except MappingError:
            return "rejected"

    handle = system.spawn(0, program)
    system.run_processes([handle])
    assert handle.value == "rejected"
