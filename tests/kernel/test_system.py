"""Tests for ShrimpSystem process management and failure handling."""

import pytest

from repro.kernel import ShrimpSystem
from repro.testbed import make_system


def test_spawn_names_processes():
    system = make_system()

    def my_program(proc):
        return proc.name
        yield  # pragma: no cover

    handle = system.spawn(2, my_program)
    system.run_processes([handle])
    assert "my_program" in handle.value


def test_run_processes_returns_after_completion():
    system = make_system()

    def quick(proc):
        yield proc.sim.timeout(10.0)
        return "ok"

    handle = system.spawn(0, quick)
    system.run_processes([handle])
    assert handle.value == "ok"
    assert system.sim.now == pytest.approx(10.0)


def test_run_processes_propagates_process_exceptions():
    system = make_system()

    def broken(proc):
        yield proc.sim.timeout(1.0)
        raise RuntimeError("application bug")

    def innocent(proc):
        yield proc.sim.timeout(100.0)

    b = system.spawn(0, broken)
    i = system.spawn(1, innocent)
    with pytest.raises(RuntimeError, match="application bug"):
        system.run_processes([b, i])


def test_run_processes_timeout_raises_with_names():
    system = make_system()

    def forever(proc):
        while True:
            yield proc.sim.timeout(1000.0)

    handle = system.spawn(0, forever, name="spinner")
    with pytest.raises(RuntimeError, match="spinner"):
        system.run_processes([handle], timeout=5000.0)


def test_processes_on_all_nodes():
    system = make_system()
    seen = []

    def program(proc):
        seen.append(proc.node.node_id)
        return None
        yield  # pragma: no cover

    handles = [system.spawn(n, program) for n in range(4)]
    system.run_processes(handles)
    assert sorted(seen) == [0, 1, 2, 3]


def test_system_boots_daemons_and_kernels():
    system = make_system()
    assert len(system.kernels) == 4
    assert len(system.daemons) == 4
    for node, kernel in zip(system.machine.nodes, system.kernels):
        assert kernel.node is node
        # The daemon installed the notification dispatch hook.
        assert node.nic.notify_handler is not None
        # The kernel installed the fault handler.
        assert node.nic.fault_handler is not None


def test_sixteen_node_system():
    from repro.hardware.config import MachineConfig

    system = ShrimpSystem(MachineConfig.sixteen_node())
    assert len(system.kernels) == 16

    def program(proc):
        return proc.node.node_id
        yield  # pragma: no cover

    handle = system.spawn(15, program)
    system.run_processes([handle])
    assert handle.value == 15
