"""Unit tests for UserProcess memory operations and polling."""

import pytest

from repro.hardware import CacheMode
from repro.kernel import ProtectionFault, ShrimpSystem

PAGE = 4096


def run_program(program, node=0):
    system = ShrimpSystem()
    proc_handle = system.spawn(node, program)
    system.run_processes([proc_handle])
    return proc_handle.value


def test_write_then_read_roundtrip():
    def program(proc):
        vaddr = proc.space.mmap(PAGE)
        yield from proc.write(vaddr + 8, b"kernel bytes")
        data = yield from proc.read(vaddr + 8, 12)
        return data

    assert run_program(program) == b"kernel bytes"


def test_write_charges_time():
    def program(proc):
        vaddr = proc.space.mmap(PAGE, cache_mode=CacheMode.WRITE_THROUGH)
        before = proc.sim.now
        yield from proc.write(vaddr, bytes(1000))
        return proc.sim.now - before

    elapsed = run_program(program)
    assert elapsed > 1000 * 0.03  # more than the cheapest per-byte rate


def test_read_of_unmapped_raises_protection_fault():
    def program(proc):
        try:
            yield from proc.read(0x10, 4)
        except ProtectionFault:
            return "faulted"
        return "no fault"

    assert run_program(program) == "faulted"


def test_copy_moves_bytes_and_charges_both_sides():
    def program(proc):
        src = proc.space.mmap(PAGE)
        dst = proc.space.mmap(PAGE)
        proc.poke(src, b"copy me around")
        before = proc.sim.now
        yield from proc.copy(src, dst, 14)
        elapsed = proc.sim.now - before
        return proc.peek(dst, 14), elapsed

    data, elapsed = run_program(program)
    assert data == b"copy me around"
    assert elapsed > 0


def test_write_spanning_scattered_pages():
    def program(proc):
        vaddr = proc.space.mmap(2 * PAGE)  # frames may be scattered
        payload = bytes(range(200)) * 30  # 6000 bytes, crosses the page
        yield from proc.write(vaddr + PAGE - 100, payload[: PAGE])
        data = yield from proc.read(vaddr + PAGE - 100, PAGE)
        return data == payload[:PAGE]

    assert run_program(program)


def test_poll_returns_when_flag_set_by_another_process():
    """Two processes on one node: one polls a shared physical page the
    other writes (stand-in for an incoming DMA write)."""
    system = ShrimpSystem()
    kernel = system.kernels[0]
    writer_proc = kernel.create_process("writer")
    flag_vaddr = writer_proc.space.mmap(PAGE, cache_mode=CacheMode.WRITE_THROUGH)

    times = {}

    def poller(proc):
        # Map the same frame into the poller's space.
        frame = writer_proc.space.frames_of(flag_vaddr, PAGE)[0]
        from repro.kernel.vm import PTE
        vaddr = 64 * PAGE
        proc.space.page_table[64] = PTE(frame=frame, cache_mode=CacheMode.WRITE_THROUGH)
        data = yield from proc.poll_flag(vaddr, b"\x01\x00\x00\x00")
        times["woke"] = proc.sim.now
        return data

    def writer(proc):
        yield from proc.compute(50.0)
        yield from proc.write(flag_vaddr, b"\x01\x00\x00\x00")
        times["wrote"] = proc.sim.now

    from repro.sim import spawn
    poll_handle = spawn(system.sim, poller(kernel.create_process("poller")))
    spawn(system.sim, writer(writer_proc))
    system.run_processes([poll_handle])
    assert poll_handle.value == b"\x01\x00\x00\x00"
    assert times["woke"] >= times["wrote"]
    # Wakeup is watch-driven: within a check cost of the write, not a spin.
    assert times["woke"] - times["wrote"] < 2.0


def test_poll_deadline_returns_none():
    def program(proc):
        vaddr = proc.space.mmap(PAGE)
        result = yield from proc.poll_flag(
            vaddr, b"\xff\xff\xff\xff", deadline=proc.sim.now + 100.0
        )
        return result, proc.sim.now

    result, now = run_program(program)
    assert result is None
    assert now >= 100.0


def test_poll_immediate_success_costs_one_check():
    def program(proc):
        vaddr = proc.space.mmap(PAGE)
        proc.poke(vaddr, b"\x2a\x00\x00\x00")
        before = proc.poll_checks
        data = yield from proc.poll_flag(vaddr, b"\x2a\x00\x00\x00")
        return proc.poll_checks - before, data

    checks, data = run_program(program)
    assert checks == 1
    assert data == b"\x2a\x00\x00\x00"


def test_peek_poke_are_untimed():
    def program(proc):
        vaddr = proc.space.mmap(PAGE)
        before = proc.sim.now
        proc.poke(vaddr, b"abc")
        data = proc.peek(vaddr, 3)
        return data, proc.sim.now - before
        yield  # pragma: no cover

    data, elapsed = run_program(program)
    assert data == b"abc"
    assert elapsed == 0.0


def test_processes_get_distinct_pids():
    system = ShrimpSystem()
    a = system.kernels[0].create_process()
    b = system.kernels[0].create_process()
    assert a.pid != b.pid
