"""Tests for the SHRIMP-specific syscall surface."""

import pytest

from repro.hardware.config import CacheMode
from repro.kernel import MappingError
from repro.testbed import make_system
from repro.vmmc import attach

PAGE = 4096


def run(system, program, node=0):
    handle = system.spawn(node, program)
    system.run_processes([handle])
    return handle.value


def test_sys_pin_and_cache_mode():
    system = make_system()

    def program(proc):
        kernel = system.kernels[0]
        vaddr = proc.space.mmap(PAGE, cache_mode=CacheMode.WRITE_BACK)
        t0 = proc.sim.now
        yield from kernel.sys_pin(proc, vaddr, PAGE)
        t1 = proc.sim.now
        yield from kernel.sys_set_cache_mode(proc, vaddr, PAGE, CacheMode.UNCACHED)
        return (
            t1 - t0,
            proc.space.page_table[vaddr // PAGE].pinned,
            proc.space.cache_mode_of(vaddr),
        )

    elapsed, pinned, mode = run(system, program)
    assert elapsed >= system.config.costs.syscall_overhead
    assert pinned
    assert mode is CacheMode.UNCACHED


def test_sys_enable_disable_receive():
    system = make_system()

    def program(proc):
        kernel = system.kernels[0]
        vaddr = proc.space.mmap(PAGE)
        frames = proc.space.frames_of(vaddr, PAGE)
        yield from kernel.sys_enable_receive(proc, frames, interrupt=True,
                                             owner="cookie")
        ipt = proc.node.nic.ipt
        enabled = ipt.is_enabled(frames[0]) and ipt.wants_interrupt(frames[0])
        owner = ipt.entry(frames[0]).owner
        yield from kernel.sys_disable_receive(proc, frames)
        disabled = not ipt.is_enabled(frames[0])
        return enabled, owner, disabled

    assert run(system, program) == (True, "cookie", True)


def test_sigblock_unblock_syscalls():
    system = make_system()

    def program(proc):
        kernel = system.kernels[0]
        yield from kernel.sys_sigblock(proc)
        blocked = proc.signals.blocked
        yield from kernel.sys_sigunblock(proc)
        return blocked, proc.signals.blocked

    assert run(system, program) == (True, False)


def test_import_from_nonexistent_node_rejected():
    system = make_system()

    def program(proc):
        ep = attach(system, proc)
        with pytest.raises(MappingError):
            yield from ep.import_buffer(99, 1)
        return "rejected"

    assert run(system, program) == "rejected"


def test_nx_world_rejects_too_many_ranks():
    from repro.libs.nx import VARIANTS, nx_world

    system = make_system()
    with pytest.raises(ValueError):
        nx_world(system, [lambda nx: None] * 9, variant=VARIANTS["AU-1copy"])
