"""Unit tests for address spaces, page tables, and the MMU model."""

import pytest

from repro.hardware import CacheMode, MachineConfig
from repro.hardware.memory import FrameAllocator
from repro.kernel.vm import AddressSpace, ProtectionFault

PAGE = 4096


@pytest.fixture
def space():
    config = MachineConfig.shrimp_prototype()
    return AddressSpace(config, FrameAllocator(config))


def test_mmap_returns_page_aligned_nonzero_vaddr(space):
    vaddr = space.mmap(100)
    assert vaddr % PAGE == 0
    assert vaddr >= AddressSpace.BASE_PAGE * PAGE


def test_mmap_rounds_up_to_pages(space):
    vaddr = space.mmap(PAGE + 1)
    assert space.is_mapped(vaddr, 2 * PAGE)
    assert not space.is_mapped(vaddr + 2 * PAGE)


def test_mmap_rejects_nonpositive(space):
    with pytest.raises(ValueError):
        space.mmap(0)


def test_translate_within_one_page(space):
    vaddr = space.mmap(PAGE)
    segments = space.translate(vaddr + 16, 64)
    assert len(segments) == 1
    paddr, length = segments[0]
    assert length == 64
    assert paddr % PAGE == 16


def test_translate_contiguous_frames_merge(space):
    vaddr = space.mmap(4 * PAGE, contiguous=True)
    segments = space.translate(vaddr, 4 * PAGE)
    assert len(segments) == 1
    assert segments[0][1] == 4 * PAGE


def test_translate_scattered_frames_split(space):
    # Interleave two allocations so frames are non-adjacent.
    a = space.mmap(PAGE)
    space.mmap(PAGE)
    c = space.mmap(PAGE)
    # Remap trick is unnecessary: just translate across a and its next
    # virtual page (owned by the middle allocation) — frames differ but
    # virtual addresses are adjacent, so a 2-page translate must split
    # or merge depending on physical adjacency.  Allocate fresh:
    segments = space.translate(a, PAGE) + space.translate(c, PAGE)
    assert len(segments) == 2


def test_translate_zero_bytes(space):
    vaddr = space.mmap(PAGE)
    assert space.translate(vaddr, 0) == []


def test_translate_unmapped_raises(space):
    with pytest.raises(ProtectionFault):
        space.translate(0, 4)


def test_translate_negative_raises(space):
    vaddr = space.mmap(PAGE)
    with pytest.raises(ValueError):
        space.translate(vaddr, -1)


def test_write_protection(space):
    vaddr = space.mmap(PAGE)
    space.protect(vaddr, PAGE, readable=True, writable=False)
    space.translate(vaddr, 4, write=False)
    with pytest.raises(ProtectionFault):
        space.translate(vaddr, 4, write=True)


def test_read_protection(space):
    vaddr = space.mmap(PAGE)
    space.protect(vaddr, PAGE, readable=False, writable=True)
    with pytest.raises(ProtectionFault):
        space.translate(vaddr, 4, write=False)


def test_unmap_releases_frames(space):
    vaddr = space.mmap(2 * PAGE)
    in_use = space.frames.frames_in_use
    space.unmap(vaddr, 2 * PAGE)
    assert space.frames.frames_in_use == in_use - 2
    assert not space.is_mapped(vaddr)
    with pytest.raises(ProtectionFault):
        space.unmap(vaddr, PAGE)


def test_cache_mode_per_page(space):
    vaddr = space.mmap(2 * PAGE, cache_mode=CacheMode.WRITE_BACK)
    space.set_cache_mode(vaddr + PAGE, PAGE, CacheMode.WRITE_THROUGH)
    assert space.cache_mode_of(vaddr) is CacheMode.WRITE_BACK
    assert space.cache_mode_of(vaddr + PAGE) is CacheMode.WRITE_THROUGH


def test_frames_of_lists_backing_frames(space):
    vaddr = space.mmap(3 * PAGE, contiguous=True)
    frames = space.frames_of(vaddr, 3 * PAGE)
    assert frames == [frames[0], frames[0] + 1, frames[0] + 2]


def test_pinned_flag(space):
    vaddr = space.mmap(PAGE)
    space.set_pinned(vaddr, PAGE, True)
    assert space.page_table[vaddr // PAGE].pinned


def test_two_spaces_get_disjoint_frames():
    config = MachineConfig.shrimp_prototype()
    allocator = FrameAllocator(config)
    a = AddressSpace(config, allocator)
    b = AddressSpace(config, allocator)
    va = a.mmap(PAGE)
    vb = b.mmap(PAGE)
    assert a.frames_of(va, PAGE) != b.frames_of(vb, PAGE)
