"""Unit tests for the signal/notification substrate."""

import pytest

from repro.kernel.signals import Signal, SignalState
from repro.sim import Simulator, spawn


def test_post_and_drain():
    state = SignalState(Simulator())
    state.post(Signal("a", 1))
    state.post(Signal("b", 2))
    drained = state.drain()
    assert [s.kind for s in drained] == ["a", "b"]
    assert state.drain() == []
    assert state.delivered_count == 2


def test_blocked_signals_queue_instead_of_delivering():
    """Unlike plain UNIX signals, notifications queue when blocked."""
    state = SignalState(Simulator())
    state.block()
    state.post(Signal("x"))
    state.post(Signal("y"))
    assert state.drain() == []
    state.unblock()
    assert [s.kind for s in state.drain()] == ["x", "y"]


def test_not_accepting_discards():
    state = SignalState(Simulator())
    state.accepting = False
    assert not state.post(Signal("dropped"))
    assert state.discarded_count == 1
    state.accepting = True
    assert state.post(Signal("kept"))


def test_wait_fires_immediately_if_pending():
    sim = Simulator()
    state = SignalState(sim)
    state.post(Signal("early"))
    event = state.wait()
    assert event.triggered


def test_wait_wakes_on_post():
    sim = Simulator()
    state = SignalState(sim)
    woke = []

    def waiter():
        yield state.wait()
        woke.append(sim.now)
        return [s.kind for s in state.drain()]

    proc = spawn(sim, waiter())
    sim.schedule_call(25.0, state.post, Signal("late"))
    sim.run()
    assert woke == [25.0]
    assert proc.value == ["late"]


def test_wait_while_blocked_until_unblock():
    """A suspended process does not wake while signals are blocked."""
    sim = Simulator()
    state = SignalState(sim)
    state.block()
    woke = []

    def waiter():
        yield state.wait()
        woke.append(sim.now)

    spawn(sim, waiter())
    sim.schedule_call(10.0, state.post, Signal("queued"))
    sim.schedule_call(50.0, state.unblock)
    sim.run()
    assert woke == [50.0]


def test_second_concurrent_waiter_rejected():
    sim = Simulator()
    state = SignalState(sim)
    state.wait()
    with pytest.raises(RuntimeError):
        state.wait()
