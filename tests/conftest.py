"""Session-wide fixtures: post-run invariant auditing.

Every system built through :func:`repro.testbed.make_system` during a
test is audited after the test body finishes — mesh packet/byte
conservation (routed == delivered + dropped + in-flight), non-negative
resource busy/wait time (with serial channels/engines bounded by the
elapsed clock), sane queue statistics for every registered Store, and
span balance (every tracer ``begin`` got an ``end``).  Service-level
components opt in by registering their queues with the machine metrics
registry — the KV service's replication queues and the workload
engine's dispatch queue do — so mesh conservation and span balance are
re-checked under full serving workloads, not just microbenchmarks.
The audit reads counters the hardware keeps anyway, so it costs
nothing and catches accounting bugs in *every* integration test, not
only the dedicated sweeps under ``tests/faults/``.
"""

import pytest

from repro import testbed


@pytest.fixture(autouse=True)
def audit_sim_invariants():
    """Audit every make_system() system after the test body runs."""
    created = []
    previous = testbed._audit_registry
    testbed._audit_registry = created
    try:
        yield
    finally:
        testbed._audit_registry = previous
    problems = []
    for system in created:
        problems.extend(testbed.audit_invariants(system))
    assert not problems, "invariant audit failed:\n" + "\n".join(problems)
