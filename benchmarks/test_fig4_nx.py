"""Figure 4: NX latency and bandwidth, five variants.

Shape claims checked:

* the left-hand-graph tradeoff: for small messages the single-DU
  '2copy' variant beats the two-DU '1copy' variant, and the ordering
  flips as size grows ('the cost of copying begins to exceed the cost
  of the extra send');
* AU variants have the lowest small-message latency;
* the forced-zero-copy curve (DU-0copy) loses badly for small messages
  (the scout round trip) — why NX switches protocols;
* the protocol-switch 'bump' at the packet-buffer size, above which all
  variants converge to the zero-copy protocol and asymptotically
  approach the raw hardware limit.
"""

from conftest import run_once

from repro.bench import figure4_nx


def test_fig4_nx(benchmark, save_report):
    result = run_once(benchmark, figure4_nx)

    au1 = result.series_named("AU-1copy")
    au2 = result.series_named("AU-2copy")
    du0 = result.series_named("DU-0copy")
    du1 = result.series_named("DU-1copy")
    du2 = result.series_named("DU-2copy")

    # Copy-vs-extra-send tradeoff with a crossover.
    assert du2.latency_at(8) < du1.latency_at(8)
    assert du1.latency_at(1024) < du2.latency_at(1024)

    # AU cheapest start-up; forced zero-copy worst for small messages.
    assert au1.latency_at(8) < du1.latency_at(8)
    assert du0.latency_at(8) > au1.latency_at(8)

    # Above the packet-buffer size all variants run the same zero-copy
    # protocol: curves converge...
    for series in (au2, du0, du1, du2):
        assert abs(series.latency_at(10240) - au1.latency_at(10240)) < 1.0
    # ...and approach the raw hardware limit (DU-0copy ~22.7 MB/s raw).
    assert au1.bandwidth_at(10240) > 19.0

    # The bump: right above the switch, latency improves on AU-2copy
    # (one-copy-per-side marshaling stops paying off).
    assert au2.latency_at(2052) < au2.latency_at(2048)

    benchmark.extra_info["au1_8b_latency_us"] = round(au1.latency_at(8), 2)
    benchmark.extra_info["large_bw_mb_s"] = round(au1.bandwidth_at(10240), 2)
    save_report("figure4.txt", result.report())
