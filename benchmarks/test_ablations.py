"""Ablation benchmarks for the design decisions DESIGN.md calls out.

Each ablation isolates one mechanism the paper credits for performance
and measures the system with it turned off / replaced:

* AU write-combining (OPT combining bit) — off means one packet per
  word, as the hardware would behave;
* polling vs blocking receive — the Section 6 discussion ('polling is
  the right choice in the common case'); blocking pays the
  signal-based notification cost;
* the word-alignment restriction — an unaligned send buffer forces the
  sockets library's two-copy fallback;
* software multicast — binomial tree vs naive sequential sends (the
  removed hardware multicast's replacement);
* the EISA bottleneck — DU-0copy bandwidth scales with the EISA DMA
  rate, confirming 'limited only by the aggregate DMA bandwidth'.
"""

import struct

from conftest import run_once

from repro.bench import STRATEGIES, socket_pingpong, vmmc_pingpong
from repro.bench.report import format_table
from repro.hardware.config import CacheMode, MachineConfig
from repro.libs.collectives import broadcast, broadcast_naive
from repro.libs.nx import VARIANTS, nx_world
from repro.libs.sockets import SOCKET_VARIANTS, SocketLib
from repro.testbed import Rendezvous, make_system
from repro.vmmc import attach

PAGE = 4096


# ---------------------------------------------------------------------------
# 1. Write combining
# ---------------------------------------------------------------------------

def _au_transfer(combining: bool, nbytes: int = 4096):
    """One-way AU transfer; returns (latency us, packets formed)."""
    system = make_system()
    rdv = Rendezvous(system)
    timing = {}

    def receiver(proc):
        ep = attach(system, proc)
        buf = yield from ep.export_new(2 * PAGE)
        rdv.put("x", (proc.node.node_id, buf.export_id))
        yield from proc.poll(buf.vaddr + nbytes, 4, lambda b: b == b"DONE")
        timing["end"] = proc.sim.now

    def sender(proc):
        ep = attach(system, proc)
        node, xid = yield rdv.get("x")
        imported = yield from ep.import_buffer(node, xid)
        local = ep.alloc_buffer(2 * PAGE)
        yield from ep.bind(local, imported, combining=combining)
        src = proc.space.mmap(2 * PAGE, cache_mode=CacheMode.WRITE_BACK)
        proc.poke(src, bytes(range(256)) * (nbytes // 256) + b"DONE")
        timing["start"] = proc.sim.now
        yield from proc.copy(src, local, nbytes + 4)

    r = system.spawn(1, receiver)
    s = system.spawn(0, sender)
    system.run_processes([r, s])
    packets = system.machine.node(0).nic.packetizer.packets_formed
    return timing["end"] - timing["start"], packets


def test_ablation_write_combining(benchmark, save_report):
    def run():
        return _au_transfer(True), _au_transfer(False)

    (on_lat, on_pkts), (off_lat, off_pkts) = run_once(benchmark, run)
    # Without combining: one packet per word — three orders more packets
    # and badly worse latency.
    assert off_pkts > 20 * on_pkts
    assert off_lat > 3 * on_lat
    benchmark.extra_info["combining_on_us"] = round(on_lat, 1)
    benchmark.extra_info["combining_off_us"] = round(off_lat, 1)
    save_report(
        "ablation_combining.txt",
        "\n".join(format_table([
            ["combining", "latency(us)", "packets"],
            ["on", "%.1f" % on_lat, str(on_pkts)],
            ["off", "%.1f" % off_lat, str(off_pkts)],
        ])),
    )


# ---------------------------------------------------------------------------
# 2. Polling vs blocking
# ---------------------------------------------------------------------------

def _one_word_receive(blocking: bool, fast_notifications: bool = False):
    """One word sender->receiver; receiver polls or blocks.

    Returns receive-side latency (send start to handler/poll return).
    """
    system = make_system()
    rdv = Rendezvous(system)
    timing = {}

    def receiver(proc):
        ep = attach(system, proc, fast_notifications=fast_notifications)
        got = []
        handler = (lambda b, p, s: got.append(s)) if blocking else None
        buf = yield from ep.export_new(PAGE, handler=handler)
        rdv.put("x", (proc.node.node_id, buf.export_id))
        if blocking:
            yield from ep.wait_notification()
        else:
            yield from proc.poll(buf.vaddr, 4, lambda b: b != b"\x00" * 4)
        timing["end"] = proc.sim.now

    def sender(proc):
        ep = attach(system, proc)
        node, xid = yield rdv.get("x")
        imported = yield from ep.import_buffer(node, xid)
        src = ep.alloc_buffer(PAGE)
        yield from proc.write(src, b"ping")
        timing["start"] = proc.sim.now
        yield from ep.send(imported, src, 4, notify=blocking)

    r = system.spawn(1, receiver)
    s = system.spawn(0, sender)
    system.run_processes([r, s])
    return timing["end"] - timing["start"]


def test_ablation_polling_vs_blocking(benchmark, save_report):
    def run():
        return (
            _one_word_receive(blocking=False),
            _one_word_receive(blocking=True),
            _one_word_receive(blocking=True, fast_notifications=True),
        )

    polling, blocking, blocking_fast = run_once(benchmark, run)
    # Polling wins by a wide margin over signal-based notifications...
    assert polling * 5 < blocking
    # ...and the projected active-message-style path recovers most of it.
    assert blocking_fast < blocking / 2
    assert polling < blocking_fast
    benchmark.extra_info["polling_us"] = round(polling, 2)
    benchmark.extra_info["blocking_signal_us"] = round(blocking, 2)
    benchmark.extra_info["blocking_fast_us"] = round(blocking_fast, 2)
    save_report(
        "ablation_polling.txt",
        "\n".join(format_table([
            ["receive mode", "latency(us)"],
            ["polling", "%.2f" % polling],
            ["blocking (signals)", "%.2f" % blocking],
            ["blocking (active-message style)", "%.2f" % blocking_fast],
        ])),
    )


# ---------------------------------------------------------------------------
# 3. Word-alignment restriction
# ---------------------------------------------------------------------------

def _socket_send_latency(aligned: bool, size: int = 4096):
    system = make_system()
    timing = {}

    def server(proc):
        lib = SocketLib(system, proc, variant=SOCKET_VARIANTS["DU-1copy"])
        sock = yield from lib.listen(5).accept()
        buf = proc.space.mmap(2 * PAGE)
        for _ in range(6):
            yield from sock.recv_exactly(buf, size)
            yield from sock.send(buf, 4)

    def client(proc):
        lib = SocketLib(system, proc, variant=SOCKET_VARIANTS["DU-1copy"])
        sock = yield from lib.connect(1, 5)
        region = proc.space.mmap(2 * PAGE)
        src = region if aligned else region + 2
        dst = proc.space.mmap(PAGE)
        proc.poke(src, bytes(size))
        for i in range(6):
            if i == 2:
                timing["start"] = proc.sim.now
            yield from sock.send(src, size)
            yield from sock.recv_exactly(dst, 4)
        timing["end"] = proc.sim.now

    s = system.spawn(1, server)
    c = system.spawn(0, client)
    system.run_processes([s, c])
    return (timing["end"] - timing["start"]) / 4


def test_ablation_alignment_restriction(benchmark, save_report):
    def run():
        return _socket_send_latency(True), _socket_send_latency(False)

    aligned, unaligned = run_once(benchmark, run)
    # The forced two-copy fallback costs a full staging copy per send.
    assert unaligned > aligned * 1.1
    benchmark.extra_info["aligned_us"] = round(aligned, 1)
    benchmark.extra_info["unaligned_us"] = round(unaligned, 1)
    save_report(
        "ablation_alignment.txt",
        "\n".join(format_table([
            ["send buffer", "round trip (us)"],
            ["word-aligned", "%.1f" % aligned],
            ["unaligned (2copy fallback)", "%.1f" % unaligned],
        ])),
    )


# ---------------------------------------------------------------------------
# 4. Software multicast
# ---------------------------------------------------------------------------

def _broadcast_time(tree: bool, nbytes: int = 1024):
    system = make_system(MachineConfig.sixteen_node())
    bcast = broadcast if tree else broadcast_naive
    started, finished = [], []

    def program(nx):
        buf = nx.proc.space.mmap(PAGE)
        if nx.mynode() == 0:
            nx.proc.poke(buf, bytes(nbytes))
        yield from nx.gsync()
        started.append(nx.proc.sim.now)
        yield from bcast(nx, buf, nbytes, root=0)
        finished.append(nx.proc.sim.now)

    handles = nx_world(system, [program] * 16, variant=VARIANTS["AU-1copy"])
    system.run_processes(handles)
    return max(finished) - min(started)


def test_ablation_software_multicast(benchmark, save_report):
    def run():
        return _broadcast_time(tree=True), _broadcast_time(tree=False)

    tree, naive = run_once(benchmark, run)
    # log2(16)=4 rounds vs 15 serialized sends.
    assert tree < naive
    benchmark.extra_info["tree_us"] = round(tree, 1)
    benchmark.extra_info["naive_us"] = round(naive, 1)
    save_report(
        "ablation_multicast.txt",
        "\n".join(format_table([
            ["16-node broadcast (1 KB)", "time (us)"],
            ["binomial tree", "%.1f" % tree],
            ["naive sequential", "%.1f" % naive],
        ])),
    )


# ---------------------------------------------------------------------------
# 5. The EISA bottleneck
# ---------------------------------------------------------------------------

def test_ablation_eisa_bottleneck(benchmark, save_report):
    """DU-0copy bandwidth tracks the EISA DMA rate — the bus, not the
    network or the NIC, caps end-to-end bandwidth."""

    def run():
        base = vmmc_pingpong(STRATEGIES["DU-0copy"], 10240, iterations=5)
        fast = vmmc_pingpong(
            STRATEGIES["DU-0copy"], 10240, iterations=5,
            system=make_system(MachineConfig(eisa_dma_bandwidth=53.0)),  # 2x EISA
        )
        return base.bandwidth_mb_s, fast.bandwidth_mb_s

    base_bw, fast_bw = run_once(benchmark, run)
    assert fast_bw > base_bw * 1.5
    benchmark.extra_info["base_eisa_mb_s"] = round(base_bw, 1)
    benchmark.extra_info["doubled_eisa_mb_s"] = round(fast_bw, 1)
    save_report(
        "ablation_eisa.txt",
        "\n".join(format_table([
            ["EISA DMA rate", "DU-0copy bandwidth (MB/s)"],
            ["26.5 MB/s (prototype)", "%.1f" % base_bw],
            ["53 MB/s (doubled)", "%.1f" % fast_bw],
        ])),
    )
