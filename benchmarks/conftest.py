"""Shared helpers for the figure-regeneration benchmarks.

Each benchmark runs one experiment harness (a deterministic simulation)
under pytest-benchmark, asserts the paper's *shape* claims, records the
headline numbers in ``benchmark.extra_info``, and writes the full text
report to ``benchmarks/results/``.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def save_report():
    """Write an experiment's text report next to the benchmarks."""

    def _save(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / name).write_text(text + "\n")

    return _save


def run_once(benchmark, fn, *args, **kwargs):
    """Run a deterministic simulation harness exactly once under the
    benchmark clock (repetition would measure the same event sequence)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
