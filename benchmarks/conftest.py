"""Shared helpers for the figure-regeneration benchmarks.

Each benchmark runs one experiment harness (a deterministic simulation)
under pytest-benchmark, asserts the paper's *shape* claims, records the
headline numbers in ``benchmark.extra_info``, and writes the full text
report to ``benchmarks/results/``.

Tracing is opt-in: run with ``--dump-traces`` and any benchmark using
the :func:`trace_dump` fixture writes a Chrome ``trace_event`` JSON of
its run into ``benchmarks/results/`` (see docs/OBSERVABILITY.md).
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def pytest_addoption(parser):
    """Register the opt-in ``--dump-traces`` flag."""
    parser.addoption(
        "--dump-traces",
        action="store_true",
        default=False,
        help="write Chrome trace_event JSON for traced benchmarks into "
             "benchmarks/results/",
    )


@pytest.fixture
def save_report():
    """Write an experiment's text report next to the benchmarks."""

    def _save(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / name).write_text(text + "\n")

    return _save


@pytest.fixture
def trace_dump(request):
    """Dump a system's trace to ``benchmarks/results/<name>.json``.

    Returns a callable ``dump(name, system)``; it is a no-op unless the
    session ran with ``--dump-traces`` (tracing costs memory and the
    benchmarks measure simulated time, not wall time, so dumping is
    opt-in).  The target system must have been built with ``trace=True``
    (or its tracer enabled before the run) for spans to be present —
    with a disabled tracer only the always-on log *counts* exist and the
    dump still validates but is nearly empty.
    """
    enabled = request.config.getoption("--dump-traces")

    def _dump(name: str, system) -> "pathlib.Path | None":
        if not enabled:
            return None
        from repro.sim import write_chrome_trace

        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / (name + ".json")
        write_chrome_trace(system.machine.tracer, path)
        return path

    return _dump


def run_once(benchmark, fn, *args, **kwargs):
    """Run a deterministic simulation harness exactly once under the
    benchmark clock (repetition would measure the same event sequence)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
