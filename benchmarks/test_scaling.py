"""Scaling study: the 16-node expansion the paper's conclusion plans.

Measures how the calibrated communication costs behave when the mesh
grows from 2x2 to 4x4:

* point-to-point latency grows only by per-hop routing time (the mesh
  is not the bottleneck — the paper's premise survives scaling);
* tree-based collectives scale logarithmically while naive sequential
  multicast scales linearly.
"""

from conftest import run_once

from repro.bench.report import format_table
from repro.hardware.config import MachineConfig
from repro.libs.collectives import broadcast, broadcast_naive
from repro.libs.nx import VARIANTS, nx_world
from repro.testbed import Rendezvous, make_system
from repro.vmmc import attach

PAGE = 4096


def _one_way(config, node_a, node_b):
    system = make_system(config)
    rdv = Rendezvous(system)
    timing = {}

    def receiver(proc):
        ep = attach(system, proc)
        buf = yield from ep.export_new(PAGE)
        rdv.put("x", (proc.node.node_id, buf.export_id))
        yield from proc.poll(buf.vaddr, 4, lambda b: b == b"ping")
        timing["end"] = proc.sim.now

    def sender(proc):
        ep = attach(system, proc)
        node, xid = yield rdv.get("x")
        imported = yield from ep.import_buffer(node, xid)
        src = ep.alloc_buffer(PAGE)
        yield from proc.write(src, b"ping")
        timing["start"] = proc.sim.now
        yield from ep.send(imported, src, 4)

    r = system.spawn(node_b, receiver)
    s = system.spawn(node_a, sender)
    system.run_processes([r, s])
    hops = system.machine.mesh.hops(node_a, node_b)
    return timing["end"] - timing["start"], hops


def _broadcast_time(config, n, tree, nbytes=1024):
    system = make_system(config)
    bcast = broadcast if tree else broadcast_naive
    started, finished = [], []

    def program(nx):
        buf = nx.proc.space.mmap(PAGE)
        if nx.mynode() == 0:
            nx.proc.poke(buf, bytes(nbytes))
        yield from nx.gsync()
        started.append(nx.proc.sim.now)
        yield from bcast(nx, buf, nbytes, root=0)
        finished.append(nx.proc.sim.now)

    handles = nx_world(system, [program] * n, variant=VARIANTS["AU-1copy"])
    system.run_processes(handles)
    return max(finished) - min(started)


def test_scaling_point_to_point(benchmark, save_report):
    def run():
        four = MachineConfig.shrimp_prototype()
        sixteen = MachineConfig.sixteen_node()
        return {
            "4-node adjacent": _one_way(four, 0, 1),
            "4-node diagonal": _one_way(four, 0, 3),
            "16-node adjacent": _one_way(sixteen, 0, 1),
            "16-node corner-to-corner": _one_way(sixteen, 0, 15),
        }

    results = run_once(benchmark, run)
    config = MachineConfig.sixteen_node()
    # Distance costs only per-hop routing: corner-to-corner (6 hops) is
    # adjacent (1 hop) plus 5 hop latencies, within rounding.
    near, near_hops = results["16-node adjacent"]
    far, far_hops = results["16-node corner-to-corner"]
    assert far_hops - near_hops == 5
    extra = far - near
    assert extra < 6 * config.router_hop_latency
    # Same-geometry measurements agree across machine sizes.
    assert abs(results["4-node adjacent"][0] - near) < 0.5

    rows = [["path", "hops", "one-way latency (us)"]]
    for name, (latency, hops) in results.items():
        rows.append([name, str(hops), "%.2f" % latency])
        benchmark.extra_info[name.replace(" ", "_")] = round(latency, 3)
    save_report("scaling_p2p.txt", "\n".join(format_table(rows)))


def test_scaling_collectives(benchmark, save_report):
    def run():
        out = {}
        for n, config in ((4, MachineConfig.shrimp_prototype()),
                          (16, MachineConfig.sixteen_node())):
            out[n] = {
                "tree": _broadcast_time(config, n, tree=True),
                "naive": _broadcast_time(config, n, tree=False),
            }
        return out

    results = run_once(benchmark, run)
    # Naive multicast cost grows ~linearly with node count; the tree
    # grows much more slowly (log rounds).
    naive_growth = results[16]["naive"] / results[4]["naive"]
    tree_growth = results[16]["tree"] / results[4]["tree"]
    assert naive_growth > 2.5
    assert tree_growth < naive_growth
    assert results[16]["tree"] < results[16]["naive"]

    rows = [["nodes", "tree (us)", "naive (us)"]]
    for n in (4, 16):
        rows.append([str(n), "%.1f" % results[n]["tree"],
                     "%.1f" % results[n]["naive"]])
    benchmark.extra_info["tree_growth"] = round(tree_growth, 2)
    benchmark.extra_info["naive_growth"] = round(naive_growth, 2)
    save_report("scaling_collectives.txt", "\n".join(format_table(rows)))
