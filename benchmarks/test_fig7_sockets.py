"""Figure 7: stream-socket latency and bandwidth, three variants.

Shape claims checked:

* small messages run ~13 us above the raw hardware limit, 'divided
  roughly equally between the sender and receiver';
* AU-2copy has the lowest small-message latency;
* for large messages performance is close to (here: at or above) the
  raw one-copy limit, with DU-1copy fastest and DU-2copy paying for
  its staging copy;
* a zero-copy socket is impossible (protection), so no curve ever
  reaches the DU-0copy raw limit of ~23 MB/s.
"""

from conftest import run_once

from repro.bench import STRATEGIES, figure7_sockets, vmmc_pingpong


def test_fig7_sockets(benchmark, save_report):
    result = run_once(benchmark, figure7_sockets)

    au2 = result.series_named("AU-2copy")
    du1 = result.series_named("DU-1copy")
    du2 = result.series_named("DU-2copy")

    # ~13 us over the raw AU hardware limit for small messages.
    raw = vmmc_pingpong(STRATEGIES["AU-1copy"], 4, iterations=8)
    overhead = au2.latency_at(4) - raw.one_way_latency_us
    assert 10.0 < overhead < 16.0, overhead

    # AU cheapest start-up; staging copy costs at every size.
    assert au2.latency_at(4) < du1.latency_at(4)
    assert du2.latency_at(10240) > du1.latency_at(10240)

    # Large-message ordering and the protection ceiling.
    assert du1.bandwidth_at(10240) > du2.bandwidth_at(10240)
    for series in (au2, du1, du2):
        assert series.bandwidth_at(10240) < 23.0

    benchmark.extra_info["small_overhead_us"] = round(overhead, 2)
    benchmark.extra_info["du1_10k_bw_mb_s"] = round(du1.bandwidth_at(10240), 2)
    save_report("figure7.txt", result.report())
