"""Figure 5: VRPC latency and bandwidth vs argument/result size.

Shape claims checked:

* null-call round trip about 29 us (paper's headline), far faster than
  conventional-network SunRPC;
* AU beats DU for small arguments, as in every library;
* bandwidth grows monotonically with argument size and reaches the
  several-MB/s range at 10 KB arguments.
"""

from conftest import run_once

from repro.bench import figure5_vrpc, vrpc_pingpong


def test_fig5_vrpc(benchmark, save_report):
    result = run_once(benchmark, figure5_vrpc)

    au = result.series_named("AU-1copy")
    du = result.series_named("DU-1copy")

    # Small arguments: automatic update wins.
    assert au.latency_at(4) < du.latency_at(4)

    # Null-ish round trip near the paper's 29 us.
    assert 26.0 < au.latency_at(4) < 34.0

    # Monotone bandwidth, reasonable asymptote.  The metric here is
    # one-way argument bytes over the full round trip; an echo call
    # moves the payload twice, so the duplex rate is double this.
    bandwidths = [p.bandwidth_mb_s for p in sorted(au.points, key=lambda p: p.size)]
    assert bandwidths == sorted(bandwidths)
    assert au.bandwidth_at(10240) > 5.5

    null_rtt = vrpc_pingpong(0, automatic=True)
    assert 26.0 < null_rtt < 33.0
    benchmark.extra_info["null_rtt_us"] = round(null_rtt, 2)
    benchmark.extra_info["au_10k_bw_mb_s"] = round(au.bandwidth_at(10240), 2)
    save_report("figure5.txt", result.report())
