"""Application benchmark: halo-exchange cost of a 4-rank Jacobi stencil.

The functional half lives in ``examples/nx_stencil.py`` and
``tests/integration/test_applications.py``; this harness measures the
communication cost per iteration for each NX variant — the shape every
application-level claim in the paper's follow-up work rests on: small
typed messages are AU-cheap, and library overhead (not the network)
dominates halo exchange.
"""

import struct

from conftest import run_once

from repro.bench.report import format_table
from repro.libs.nx import VARIANTS, nx_world
from repro.testbed import make_system

PAGE = 4096
ITERATIONS = 40
HALO_LEFT, HALO_RIGHT = 101, 102


def _stencil_comm_time(variant_name: str, halo_bytes: int = 8) -> float:
    """Average per-iteration halo-exchange time across 4 ranks."""
    system = make_system()
    spans = []

    def rank(nx):
        me, size = nx.mynode(), nx.numnodes()
        proc = nx.proc
        buf = proc.space.mmap(PAGE)
        halo = proc.space.mmap(PAGE)
        yield from nx.gsync()
        start = proc.sim.now
        for _step in range(ITERATIONS):
            left, right = me - 1, me + 1
            if right < size:
                yield from nx.csend(HALO_RIGHT, buf, halo_bytes, to=right)
            if left >= 0:
                yield from nx.csend(HALO_LEFT, buf, halo_bytes, to=left)
            if left >= 0:
                yield from nx.crecv(HALO_RIGHT, halo, PAGE)
            if right < size:
                yield from nx.crecv(HALO_LEFT, halo, PAGE)
        spans.append(proc.sim.now - start)

    handles = nx_world(system, [rank] * 4, variant=VARIANTS[variant_name])
    system.run_processes(handles)
    return max(spans) / ITERATIONS


def test_application_stencil(benchmark, save_report):
    def run():
        return {
            name: _stencil_comm_time(name)
            for name in ("AU-1copy", "AU-2copy", "DU-1copy", "DU-2copy")
        }

    results = run_once(benchmark, run)
    # Halo cells are tiny: automatic update wins, as Figure 4 predicts.
    assert results["AU-1copy"] < results["DU-1copy"]
    assert results["AU-1copy"] < results["DU-2copy"]
    # An exchange is a handful of small messages: tens of microseconds,
    # not milliseconds — the co-designed path keeps iteration overhead
    # sane even at this tiny grain.
    assert results["AU-1copy"] < 120.0

    rows = [["NX variant", "per-iteration halo exchange (us)"]]
    for name, value in sorted(results.items(), key=lambda kv: kv[1]):
        rows.append([name, "%.1f" % value])
        benchmark.extra_info[name] = round(value, 2)
    save_report("application_stencil.txt", "\n".join(format_table(rows)))
