"""Figure 8: compatible (VRPC) vs non-compatible (SHRIMP RPC) round-trip
time for a null call with a single INOUT argument of varying size.

Shape claims checked:

* the non-compatible system wins at every argument size;
* the gap is largest (factor ~3 in the paper, >2.3 here) for small
  arguments — the SunRPC header VRPC must send every call vs 'just the
  data plus a one-word flag';
* for large transfers the difference is roughly a factor of two —
  the non-compatible system never explicitly sends OUT arguments back
  (a null procedure writes nothing, so nothing returns but the flag).
"""

from conftest import run_once

from repro.bench import figure8_rpc_comparison


def test_fig8_rpc_comparison(benchmark, save_report):
    result = run_once(benchmark, figure8_rpc_comparison)

    compatible = result.series_named("compatible")
    non_compatible = result.series_named("non-compatible")

    sizes = [p.size for p in compatible.points]
    for size in sizes:
        assert non_compatible.latency_at(size) < compatible.latency_at(size)

    small_ratio = compatible.latency_at(1) / non_compatible.latency_at(1)
    large_ratio = compatible.latency_at(1000) / non_compatible.latency_at(1000)
    assert small_ratio > 2.3, small_ratio
    assert large_ratio > 1.8, large_ratio

    benchmark.extra_info["small_ratio"] = round(small_ratio, 2)
    benchmark.extra_info["large_ratio"] = round(large_ratio, 2)
    benchmark.extra_info["srpc_null_rtt_us"] = round(non_compatible.latency_at(1), 2)
    save_report("figure8.txt", result.report())
