"""Sensitivity sweeps: which knob moves which headline result.

Confirms the paper's bottleneck attributions structurally:

* DU-0copy bandwidth tracks the EISA DMA rate and is insensitive to the
  backplane link rate ('limited only by the aggregate DMA bandwidth');
* AU-1copy bandwidth tracks the CPU's copy rate, not the EISA rate;
* one-word AU latency tracks the incoming-DMA setup (the dominant
  stage of the analytic budget) and barely moves with link bandwidth.
"""

from conftest import run_once

from repro.bench.report import format_table
from repro.bench.sweeps import (
    au_1copy_bandwidth,
    au_word_latency,
    du_0copy_bandwidth,
    sweep_config,
)


def test_sensitivity_du_bandwidth(benchmark, save_report):
    def run():
        return {
            "eisa": sweep_config("eisa_dma_bandwidth", [13.25, 26.5, 53.0],
                                 du_0copy_bandwidth),
            "link": sweep_config("link_bandwidth", [87.5, 175.0, 350.0],
                                 du_0copy_bandwidth),
        }

    results = run_once(benchmark, run)
    eisa = [bw for _v, bw in results["eisa"]]
    link = [bw for _v, bw in results["link"]]
    # Halving/doubling EISA roughly halves/doubles the result...
    assert eisa[2] > 1.6 * eisa[1] > 2.5 * eisa[0]
    # ...while the backplane link rate barely matters.
    assert max(link) - min(link) < 0.15 * link[1]

    rows = [["knob", "value (MB/s)", "DU-0copy bw (MB/s)"]]
    for knob, series in results.items():
        for value, bw in series:
            rows.append([knob, "%.1f" % value, "%.2f" % bw])
    benchmark.extra_info["eisa_sensitivity"] = round(eisa[2] / eisa[0], 2)
    save_report("sensitivity_du.txt", "\n".join(format_table(rows)))


def test_sensitivity_au_bandwidth(benchmark, save_report):
    def run():
        return {
            "copy": sweep_config("wt_write_per_byte", [0.019, 0.038, 0.076],
                                 au_1copy_bandwidth),
            "eisa": sweep_config("eisa_dma_bandwidth", [26.5, 53.0],
                                 au_1copy_bandwidth),
        }

    results = run_once(benchmark, run)
    copy = [bw for _v, bw in results["copy"]]
    eisa = [bw for _v, bw in results["eisa"]]
    # AU bandwidth is copy-limited: doubling the per-byte write cost
    # nearly halves it...
    assert copy[1] > 1.5 * copy[2]
    # ...and when the copy gets cheap, the next ceiling (the EISA DMA
    # path, ~24 MB/s) catches it — the bottleneck moves, it never
    # disappears.
    assert copy[0] > copy[1]
    assert copy[0] < 25.0
    # Doubling EISA helps AU only marginally (it wasn't the binding
    # constraint).
    assert eisa[1] - eisa[0] < 0.25 * eisa[0]

    rows = [["knob", "value", "AU-1copy bw (MB/s)"]]
    for knob, series in results.items():
        for value, bw in series:
            rows.append([knob, str(value), "%.2f" % bw])
    save_report("sensitivity_au.txt", "\n".join(format_table(rows)))


def test_sensitivity_word_latency(benchmark, save_report):
    def run():
        return {
            "incoming_dma_setup": sweep_config(
                "incoming_dma_setup", [0.6, 1.2, 2.4], au_word_latency
            ),
            "link_bandwidth": sweep_config(
                "link_bandwidth", [87.5, 175.0, 350.0], au_word_latency
            ),
        }

    results = run_once(benchmark, run)
    dma = [lat for _v, lat in results["incoming_dma_setup"]]
    link = [lat for _v, lat in results["link_bandwidth"]]
    # The DMA-setup deltas pass straight through to the latency...
    assert dma[2] - dma[0] == benchmark.extra_info.setdefault("dma_delta", dma[2] - dma[0])
    assert 1.5 < dma[2] - dma[0] < 2.1   # ~1.8 us of setup delta
    # ...while doubling the link rate saves well under a microsecond.
    assert link[0] - link[2] < 0.3

    rows = [["knob", "value", "AU word latency (us)"]]
    for knob, series in results.items():
        for value, lat in series:
            rows.append([knob, str(value), "%.3f" % lat])
    save_report("sensitivity_latency.txt", "\n".join(format_table(rows)))
