"""Figure 3: latency and bandwidth delivered by the SHRIMP VMMC layer.

Regenerates the four raw transfer-strategy curves (AU-1copy, AU-2copy,
DU-0copy, DU-1copy) and checks the paper's shape claims:

* AU one-word latency 4.75 us (write-through) / 3.7 us (uncached),
  DU 7.6 us;
* AU outperforms DU for small messages (lower start-up cost);
* DU-0copy peaks near 23 MB/s, the EISA DMA limit, and overtakes AU
  for large messages (AU is capped by its sender-side copy).
"""

from conftest import run_once

from repro.bench import figure3_raw_vmmc
from repro.bench.tracing import trace_one_word


def test_fig3_vmmc_raw(benchmark, save_report):
    result = run_once(benchmark, figure3_raw_vmmc)

    au1 = result.series_named("AU-1copy")
    au2 = result.series_named("AU-2copy")
    du0 = result.series_named("DU-0copy")
    du1 = result.series_named("DU-1copy")

    # Small messages: automatic update wins on start-up cost.
    assert au1.latency_at(4) < du0.latency_at(4)
    assert au1.latency_at(64) < du0.latency_at(64)

    # Large messages: DU-0copy is fastest, approaching the EISA limit.
    for other in (au1, au2, du1):
        assert du0.bandwidth_at(10240) > other.bandwidth_at(10240)
    assert 20.0 < du0.bandwidth_at(10240) < 24.0

    # Extra copies cost bandwidth, in order.
    assert au1.bandwidth_at(10240) > au2.bandwidth_at(10240)
    assert du0.bandwidth_at(10240) > du1.bandwidth_at(10240)

    # AU-1copy is capped by the copy rate (~20 MB/s), below DU-0copy.
    assert 15.0 < au1.bandwidth_at(10240) < 21.0

    benchmark.extra_info["du0_peak_mb_s"] = round(du0.bandwidth_at(10240), 2)
    benchmark.extra_info["au1_4b_latency_us"] = round(au1.latency_at(4), 2)
    save_report("figure3.txt", result.report())


def test_fig3_au_word_traced(benchmark, save_report, trace_dump):
    """The one-word AU point, replayed with tracing on: the measured
    per-stage spans must reproduce the analytic latency budget."""
    result = run_once(benchmark, trace_one_word)

    assert result.agreement_error <= 0.01
    benchmark.extra_info["au_word_traced_us"] = round(result.measured.total, 3)
    save_report("figure3-traced-budget.txt", result.report())
    trace_dump("figure3-au-word", result.system)
