"""Every scalar claim in the paper's text, measured in one table.

This is the per-number paper-vs-measured record that EXPERIMENTS.md
summarizes; tight tolerances live in tests/calibration, this harness
prints the side-by-side table.
"""

from conftest import run_once

from repro.bench import headline_scalars
from repro.bench.report import format_table

# (key, paper value, description)
PAPER = [
    ("au_word_wt_us", 4.75, "AU one-word latency, write-through (us)"),
    ("au_word_uncached_us", 3.7, "AU one-word latency, uncached (us)"),
    ("du_word_us", 7.6, "DU one-word latency (us)"),
    ("du_0copy_peak_mb_s", 23.0, "DU-0copy peak bandwidth (MB/s)"),
    ("vrpc_null_rtt_us", 29.0, "VRPC null-call round trip (us)"),
    ("srpc_null_inout_rtt_us", 9.5, "SHRIMP RPC null call round trip (us)"),
]


def test_headline_scalars(benchmark, save_report):
    measured = run_once(benchmark, headline_scalars)

    rows = [["scalar", "paper", "measured", "ratio"]]
    for key, paper_value, description in PAPER:
        value = measured[key]
        rows.append([description, "%.2f" % paper_value, "%.2f" % value,
                     "%.2f" % (value / paper_value)])
        # Broad sanity: within 40% of the paper (tight checks live in
        # tests/calibration where the model pins them closely).
        assert 0.6 < value / paper_value < 1.4, (key, value)

    # Library overheads over the hardware limit (paper: ~6 us NX,
    # ~13 us sockets).
    nx_over = measured["nx_small_au_us"] - measured["raw_small_au_us"]
    rows.append(["NX small-message overhead over raw (us)", "6.0",
                 "%.2f" % nx_over, "%.2f" % (nx_over / 6.0)])
    assert 4.0 < nx_over < 10.0, nx_over

    for key, value in measured.items():
        benchmark.extra_info[key] = round(value, 3)
    save_report("headline_scalars.txt", "\n".join(format_table(rows)))
