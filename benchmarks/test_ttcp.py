"""Section 4.3's ttcp paragraph: one-way socket streaming bandwidth.

Shape claims checked:

* ttcp (with its per-write bookkeeping) is slower than the bare one-way
  microbenchmark at 7 KB messages (paper: 8.6 vs 9.8 MB/s);
* at 70-byte messages ttcp lands near Ethernet's peak bandwidth
  (paper: 1.3 MB/s vs 1.25) — per-message costs dominate;
* absolute 7 KB numbers run higher here than the paper's because the
  simulated receive path pipelines the copy-out with incoming DMA more
  aggressively than the prototype did (recorded in EXPERIMENTS.md).
"""

from conftest import run_once

from repro.bench import ttcp_results
from repro.bench.report import format_table


def test_ttcp(benchmark, save_report):
    results = run_once(benchmark, ttcp_results)

    assert results["ttcp_7k_mb_s"] < results["micro_7k_mb_s"]
    # The bookkeeping gap is real but modest (paper: ~12%).
    gap = 1 - results["ttcp_7k_mb_s"] / results["micro_7k_mb_s"]
    assert 0.03 < gap < 0.30, gap
    # Small messages: in the Ethernet-peak neighbourhood.
    assert 0.9 < results["ttcp_70b_mb_s"] < 1.8

    for key, value in results.items():
        benchmark.extra_info[key] = round(value, 2)
    rows = [["measurement", "paper (MB/s)", "measured (MB/s)"]]
    rows.append(["ttcp @ 7 KB", "8.6", "%.2f" % results["ttcp_7k_mb_s"]])
    rows.append(["microbenchmark @ 7 KB", "9.8", "%.2f" % results["micro_7k_mb_s"]])
    rows.append(["ttcp @ 70 B", "1.3", "%.2f" % results["ttcp_70b_mb_s"]])
    save_report("ttcp.txt", "\n".join(format_table(rows)))
