PYTHON ?= python

.PHONY: install test bench examples reports clean

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/nx_stencil.py
	$(PYTHON) examples/rpc_keyvalue.py
	$(PYTHON) examples/sockets_streaming.py
	$(PYTHON) examples/shrimp_rpc_demo.py
	$(PYTHON) examples/shared_memory.py

reports: bench
	@echo; echo "=== benchmark reports (benchmarks/results/) ==="; echo
	@for f in benchmarks/results/*.txt; do echo "--- $$f"; cat $$f; echo; done

clean:
	rm -rf .pytest_cache .hypothesis benchmarks/results
	find . -name __pycache__ -type d -exec rm -rf {} +
