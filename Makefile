PYTHON ?= python

.PHONY: install test test-fast faults bench examples reports trace-demo workload serve-demo explain-demo capacity-json capacity-ab-json capacity-overload-json capacity-consistency-json onesided-demo overload-demo antientropy-demo antientropy-json bench-sim-json record-replay-demo profile-demo clean

install:
	$(PYTHON) setup.py develop

test:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) -m pytest tests/

test-fast:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) -m pytest tests/ -m "not slow"

faults:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) -m repro faults --seed $${SEED:-0}

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

workload:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) -m repro workload --seed $${SEED:-1} --load $${LOAD:-20000}

serve-demo:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) -m repro serve

explain-demo:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) -m repro explain --seed $${SEED:-1} --requests $${REQUESTS:-80}

capacity-json:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) -m repro capacity --loads $${LOADS:-10000,40000} --requests $${REQUESTS:-120} --json BENCH_capacity.json

# Paired A/B sweep isolating the one-sided server bypass (docs/ONESIDED.md);
# the committed BENCH_capacity.json uses REQUESTS=2000.
capacity-ab-json:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) -m repro capacity --ab --onesided --seed $${SEED:-11} --concurrency $${CONCURRENCY:-16} --requests $${REQUESTS:-2000} --loads $${LOADS:-150000,200000,250000,300000} --json BENCH_capacity.json

# Overload-control A/B (docs/OVERLOAD.md): both sides model contended
# node CPUs, only B arms admission + retry budgets + backpressure.  The
# committed BENCH_capacity.json was produced by this target's defaults.
capacity-overload-json:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) -m repro capacity --overload --seed $${SEED:-11} --concurrency $${CONCURRENCY:-16} --requests $${REQUESTS:-2000} --loads $${LOADS:-20000,40000,60000,80000} --json BENCH_capacity.json

# Consistency A/B (docs/REPLICATION.md): A = eventual + read-spreading
# (nonzero stale-read rate), B = quorum reads/writes + read repair
# (must serve zero stale reads at every load).
capacity-consistency-json:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) -m repro capacity --consistency --seed $${SEED:-11} --requests $${REQUESTS:-400} --keys $${KEYS:-80} --read-fraction $${READ_FRACTION:-0.7} --loads $${LOADS:-20000,40000,80000} --json BENCH_capacity.json

# The runnable example from docs/REPLICATION.md: a capped replication
# queue plus a replica-crash fault create divergence, and the Merkle
# anti-entropy sweeper heals it (the report's convergence: lines).
antientropy-demo:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) -m repro antientropy --seed $${SEED:-1}

# Same run, also writing the machine-readable convergence record
# (divergent-keys-over-time series) for the CI artifact.
antientropy-json:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) -m repro antientropy --seed $${SEED:-1} --json BENCH_antientropy.json

# The runnable examples from docs/ONESIDED.md, at doc-exact arguments.
onesided-demo:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) -m repro workload --onesided --requests 2000 --concurrency 16 --load 200000
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) -m repro explain --onesided --read-fraction 1.0 --requests 80

# The runnable example from docs/OVERLOAD.md, at doc-exact arguments:
# a controlled run at 2x the calibrated knee, showing the rejected:/
# goodput: report lines and the conservation invariant.
overload-demo:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) -m repro workload --seed 11 --requests 2000 --concurrency 16 --load 80000 --cpu-slots 1 --cpu-op-us 50 --slo-latency 1000 --admission --admit-queue 8 --admit-deadline 400 --retry-budget 1 --retry-base 50 --backpressure

# Engine-speed artifact (docs/SIMULATOR.md): raw dispatch events/sec
# plus capacity-workload wall time, with seed-engine baselines and the
# measurement methodology embedded.  QUICK=--quick for a CI smoke pass.
bench-sim-json:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) -m repro.bench.simspeed --json BENCH_sim.json $${QUICK:-}

# The runnable examples from docs/WORKLOADS.md "Record & replay", at
# doc-exact arguments: freeze a stream, replay it verbatim, then a
# paired A/B over the one-sided bypass on the same offered traffic.
record-replay-demo:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) -m repro record --out stream.json --seed 11 --requests 400 --load 40000
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) -m repro replay --stream stream.json
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) -m repro replay --stream stream.json --ab onesided_reads=true

# The runnable examples from docs/OBSERVABILITY.md "Profiles & diffs",
# at doc-exact arguments: a fleet-wide flame profile of one traced run,
# then a recorded stream replayed with the one-sided bypass as the only
# change, stage-attributing the latency delta (closure gate 5%).
profile-demo:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) -m repro profile --seed 11 --requests 120 --load 40000
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) -m repro record --out profile-stream.json --seed 11 --requests 300 --load 60000
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) -m repro diff --stream profile-stream.json --ab onesided_reads=true

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/nx_stencil.py
	$(PYTHON) examples/rpc_keyvalue.py
	$(PYTHON) examples/sockets_streaming.py
	$(PYTHON) examples/shrimp_rpc_demo.py
	$(PYTHON) examples/shared_memory.py

trace-demo:
	mkdir -p benchmarks/results
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) examples/quickstart.py --trace benchmarks/results/quickstart-trace.json
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) -m repro trace --check benchmarks/results/quickstart-trace.json

reports: bench
	@echo; echo "=== benchmark reports (benchmarks/results/) ==="; echo
	@for f in benchmarks/results/*.txt; do echo "--- $$f"; cat $$f; echo; done

clean:
	rm -rf .pytest_cache .hypothesis benchmarks/results
	find . -name __pycache__ -type d -exec rm -rf {} +
